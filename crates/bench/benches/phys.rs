//! Micro-benchmarks for the physics substrate: gain-matrix construction
//! and the SINR tracker's hot paths (transmission start/end with many
//! concurrent receptions — the per-event cost of the whole simulator).

use parn_bench::harness;
use parn_phys::placement::Placement;
use parn_phys::propagation::FreeSpace;
use parn_phys::sinr::SinrTracker;
use parn_phys::{GainMatrix, PowerW};
use parn_sim::Rng;
use std::sync::Arc;

fn tracker(n: usize) -> SinrTracker {
    let pts = Placement::UniformDisk { n, radius: 500.0 }.generate(&mut Rng::new(2));
    let gm = Arc::new(GainMatrix::build(&pts, &FreeSpace::unit()));
    SinrTracker::new(gm, PowerW(1e-13), 1e12)
}

fn main() {
    let mut h = harness("phys");

    let mut group = h.group("gain_matrix_build");
    for &n in &[100usize, 500, 1000] {
        let pts = Placement::UniformDisk { n, radius: 500.0 }.generate(&mut Rng::new(1));
        group.bench(n, || GainMatrix::build(&pts, &FreeSpace::unit()));
    }

    // One start/end pair with `k` concurrent receptions in flight.
    let mut group = h.group("sinr_tx_cycle");
    for &k in &[0usize, 8, 32] {
        let mut t = tracker(200);
        let mut rxs = Vec::new();
        for i in 0..k {
            let tx = t.start_transmission(i, PowerW(1e-3), Some(i + 100));
            rxs.push(t.begin_reception(i + 100, tx, 1e-4));
        }
        group.bench(k, || {
            let tx = t.start_transmission(50, PowerW(1e-3), Some(51));
            t.end_transmission(tx);
        });
    }

    let mut group = h.group("sinr_interference_at");
    for &active in &[10usize, 50, 150] {
        let mut t = tracker(200);
        for i in 0..active {
            t.start_transmission(i, PowerW(1e-3), None);
        }
        group.bench(active, || t.interference_at(199, None));
    }
}
