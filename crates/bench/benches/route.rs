//! Micro-benchmarks for minimum-energy routing: single-source Dijkstra,
//! all-pairs table construction, and the distributed Bellman–Ford
//! convergence that real stations would run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parn_phys::placement::Placement;
use parn_phys::propagation::FreeSpace;
use parn_phys::{Gain, GainMatrix};
use parn_route::{dijkstra, DistributedBellmanFord, EnergyGraph, RouteTable};
use parn_sim::Rng;

fn graph(n: usize) -> EnergyGraph {
    let pts = Placement::UniformDisk {
        n,
        radius: (n as f64 / (std::f64::consts::PI * 0.01)).sqrt(),
    }
    .generate(&mut Rng::new(3));
    let gm = GainMatrix::build(&pts, &FreeSpace::unit());
    // Usable hops out to 2/sqrt(rho) = 200 m at this density.
    EnergyGraph::from_gains(&gm, Gain(1.0 / (200.0f64 * 200.0)))
}

fn single_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra_single_source");
    for &n in &[100usize, 300, 1000] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| dijkstra(g, 0));
        });
    }
    group.finish();
}

fn all_pairs_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_table_centralized");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| RouteTable::centralized(g));
        });
    }
    group.finish();
}

fn distributed_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("bellman_ford_converge");
    group.sample_size(10);
    for &n in &[50usize, 100] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut bf = DistributedBellmanFord::new(g.clone());
                bf.run_async(&mut Rng::new(9), 10 * n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, single_source, all_pairs_table, distributed_convergence);
criterion_main!(benches);
