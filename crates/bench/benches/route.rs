//! Micro-benchmarks for minimum-energy routing: single-source Dijkstra,
//! all-pairs table construction, and the distributed Bellman–Ford
//! convergence that real stations would run.

use parn_bench::harness;
use parn_phys::placement::Placement;
use parn_phys::propagation::FreeSpace;
use parn_phys::{Gain, GainMatrix};
use parn_route::{dijkstra, DistributedBellmanFord, EnergyGraph, RouteTable};
use parn_sim::Rng;

fn graph(n: usize) -> EnergyGraph {
    let pts = Placement::UniformDisk {
        n,
        radius: (n as f64 / (std::f64::consts::PI * 0.01)).sqrt(),
    }
    .generate(&mut Rng::new(3));
    let gm = GainMatrix::build(&pts, &FreeSpace::unit());
    // Usable hops out to 2/sqrt(rho) = 200 m at this density.
    EnergyGraph::from_gains(&gm, Gain(1.0 / (200.0f64 * 200.0)))
}

fn main() {
    let mut h = harness("route");

    let mut group = h.group("dijkstra_single_source");
    for &n in &[100usize, 300, 1000] {
        let g = graph(n);
        group.bench(n, || dijkstra(&g, 0));
    }

    let mut group = h.group("route_table_centralized");
    for &n in &[100usize, 300] {
        let g = graph(n);
        group.bench(n, || RouteTable::centralized(&g));
    }

    let mut group = h.group("bellman_ford_converge");
    for &n in &[50usize, 100] {
        let g = graph(n);
        group.bench(n, || {
            let mut bf = DistributedBellmanFord::new(g.clone());
            bf.run_async(&mut Rng::new(9), 10 * n)
        });
    }
}
