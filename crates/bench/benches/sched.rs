//! Micro-benchmarks for the scheduling substrate: slot hashing, window
//! enumeration, predicted windows through a clock model, and the MAC's
//! quarter-slot placement search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parn_sched::{
    intersect_lists, ClockSample, PredictedSchedule, QuarterSlot, RemoteClockModel,
    SchedParams, SlotKind, StationClock, StationSchedule,
};
use parn_sim::{Duration, Time};
use std::hint::black_box;

fn params() -> SchedParams {
    SchedParams::paper_default()
}

fn slot_hash(c: &mut Criterion) {
    let p = params();
    c.bench_function("slot_kind_hash", |b| {
        let mut idx = 0u64;
        b.iter(|| {
            idx = idx.wrapping_add(1);
            black_box(p.kind_of_slot(idx))
        });
    });
}

fn window_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("windows_enumeration");
    let sched = StationSchedule::new(params(), StationClock::with_offset(12345));
    for &slots in &[20u64, 100, 500] {
        let to = Time::ZERO + Duration::from_millis(10) * slots;
        group.bench_with_input(BenchmarkId::from_parameter(slots), &to, |b, &to| {
            b.iter(|| sched.windows(Time::ZERO, to, SlotKind::Transmit));
        });
    }
    group.finish();
}

fn predicted_windows(c: &mut Criterion) {
    let my_clock = StationClock::ideal();
    let their_clock = StationClock {
        offset: 777_777,
        ppm: 30.0,
    };
    let mut model = RemoteClockModel::from_first_sample(ClockSample {
        mine: my_clock.reading(Time::ZERO),
        theirs: their_clock.reading(Time::ZERO),
    });
    model.add_sample(ClockSample {
        mine: my_clock.reading(Time::from_secs(1)),
        theirs: their_clock.reading(Time::from_secs(1)),
    });
    let pred = PredictedSchedule {
        params: params(),
        my_clock,
        model: &model,
        guard: Duration::from_micros(200),
    };
    c.bench_function("predicted_windows_200_slots", |b| {
        let from = Time::from_secs(10);
        let to = from + Duration::from_secs(2);
        b.iter(|| pred.windows(from, to, SlotKind::Receive));
    });
}

fn mac_placement_search(c: &mut Criterion) {
    // The full inner loop of the MAC: my TX windows ∩ predicted RX
    // windows, then first admissible quarter-slot start.
    let p = params();
    let my_clock = StationClock::with_offset(424_242);
    let mine = StationSchedule::new(p, my_clock);
    let their_clock = StationClock::with_offset(999_999);
    let model = RemoteClockModel::from_first_sample(ClockSample {
        mine: my_clock.reading(Time::ZERO),
        theirs: their_clock.reading(Time::ZERO),
    });
    let pred = PredictedSchedule {
        params: p,
        my_clock,
        model: &model,
        guard: Duration::from_micros(200),
    };
    let qs = QuarterSlot::new(p);
    c.bench_function("mac_placement_search_200_slots", |b| {
        let from = Time::from_secs(3);
        let to = from + Duration::from_secs(2);
        b.iter(|| {
            let tx = mine.windows(from, to, SlotKind::Transmit);
            let rx = pred.windows(from, to, SlotKind::Receive);
            let usable = intersect_lists(&tx, &rx);
            qs.first_admissible(
                &usable,
                from,
                |t| my_clock.reading(t),
                |l| my_clock.time_of_reading(l),
            )
        });
    });
}

criterion_group!(
    benches,
    slot_hash,
    window_enumeration,
    predicted_windows,
    mac_placement_search
);
criterion_main!(benches);
