//! Micro-benchmarks for the scheduling substrate: slot hashing, window
//! enumeration, predicted windows through a clock model, and the MAC's
//! quarter-slot placement search.

use parn_bench::harness;
use parn_sched::{
    intersect_lists, ClockSample, PredictedSchedule, QuarterSlot, RemoteClockModel, SchedParams,
    SlotKind, StationClock, StationSchedule,
};
use parn_sim::{Duration, Time};
use std::hint::black_box;

fn params() -> SchedParams {
    SchedParams::paper_default()
}

fn main() {
    let mut h = harness("sched");

    let p = params();
    let mut idx = 0u64;
    h.group("slot_kind_hash").bench("hot", || {
        idx = idx.wrapping_add(1);
        black_box(p.kind_of_slot(idx))
    });

    let mut group = h.group("windows_enumeration");
    let sched = StationSchedule::new(params(), StationClock::with_offset(12345));
    for &slots in &[20u64, 100, 500] {
        let to = Time::ZERO + Duration::from_millis(10) * slots;
        group.bench(slots, || sched.windows(Time::ZERO, to, SlotKind::Transmit));
    }

    let my_clock = StationClock::ideal();
    let their_clock = StationClock {
        offset: 777_777,
        ppm: 30.0,
    };
    let mut model = RemoteClockModel::from_first_sample(ClockSample {
        mine: my_clock.reading(Time::ZERO),
        theirs: their_clock.reading(Time::ZERO),
    });
    model.add_sample(ClockSample {
        mine: my_clock.reading(Time::from_secs(1)),
        theirs: their_clock.reading(Time::from_secs(1)),
    });
    let pred = PredictedSchedule {
        params: params(),
        my_clock,
        model: &model,
        guard: Duration::from_micros(200),
    };
    h.group("predicted_windows").bench("200_slots", || {
        let from = Time::from_secs(10);
        let to = from + Duration::from_secs(2);
        pred.windows(from, to, SlotKind::Receive)
    });

    // The full inner loop of the MAC: my TX windows ∩ predicted RX
    // windows, then first admissible quarter-slot start.
    let p = params();
    let my_clock = StationClock::with_offset(424_242);
    let mine = StationSchedule::new(p, my_clock);
    let model = RemoteClockModel::from_first_sample(ClockSample {
        mine: my_clock.reading(Time::ZERO),
        theirs: StationClock::with_offset(999_999).reading(Time::ZERO),
    });
    let pred = PredictedSchedule {
        params: p,
        my_clock,
        model: &model,
        guard: Duration::from_micros(200),
    };
    let qs = QuarterSlot::new(p);
    h.group("mac_placement_search").bench("200_slots", || {
        let from = Time::from_secs(3);
        let to = from + Duration::from_secs(2);
        let tx = mine.windows(from, to, SlotKind::Transmit);
        let rx = pred.windows(from, to, SlotKind::Receive);
        let usable = intersect_lists(&tx, &rx);
        qs.first_admissible(
            &usable,
            from,
            |t| my_clock.reading(t),
            |l| my_clock.time_of_reading(l),
        )
    });
}
