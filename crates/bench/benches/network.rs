//! End-to-end simulator benchmarks: scenario construction cost and
//! simulated-seconds-per-wall-second for the full scheme and for the
//! baselines at matched load.

use parn_baseline::{Aloha, BaselineConfig, MacKind, Scenario};
use parn_bench::harness;
use parn_core::{NetConfig, Network};
use parn_sim::Duration;

fn scenario(n: usize) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, 77);
    cfg.traffic.arrivals_per_station_per_sec = 2.0;
    cfg.run_for = Duration::from_secs(3);
    cfg.warmup = Duration::from_secs(1);
    cfg
}

fn main() {
    let mut h = harness("network");

    let mut group = h.group("network_build");
    for &n in &[50usize, 100, 300] {
        group.bench(n, || Network::new(scenario(n)));
    }

    let mut group = h.group("network_run_3s");
    for &n in &[50usize, 100] {
        group.bench(n, || Network::run(scenario(n)));
    }

    let mut group = h.group("baseline_aloha_run_3s");
    for &n in &[50usize, 100] {
        group.bench(n, || {
            let mut cfg = BaselineConfig::matched(n, 77, MacKind::PureAloha);
            cfg.arrivals_per_station_per_sec = 2.0;
            cfg.run_for = Duration::from_secs(3);
            cfg.warmup = Duration::from_secs(1);
            Aloha::run(Scenario::new(cfg))
        });
    }
}
