//! End-to-end simulator benchmarks: scenario construction cost and
//! simulated-seconds-per-wall-second for the full scheme and for the
//! baselines at matched load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parn_baseline::{Aloha, BaselineConfig, MacKind, Scenario};
use parn_core::{NetConfig, Network};
use parn_sim::Duration;

fn scenario(n: usize) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, 77);
    cfg.traffic.arrivals_per_station_per_sec = 2.0;
    cfg.run_for = Duration::from_secs(3);
    cfg.warmup = Duration::from_secs(1);
    cfg
}

fn network_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_build");
    group.sample_size(10);
    for &n in &[50usize, 100, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Network::new(scenario(n)));
        });
    }
    group.finish();
}

fn network_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_run_3s");
    group.sample_size(10);
    for &n in &[50usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Network::run(scenario(n)));
        });
    }
    group.finish();
}

fn baseline_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_aloha_run_3s");
    group.sample_size(10);
    for &n in &[50usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = BaselineConfig::matched(n, 77, MacKind::PureAloha);
                cfg.arrivals_per_station_per_sec = 2.0;
                cfg.run_for = Duration::from_secs(3);
                cfg.warmup = Duration::from_secs(1);
                Aloha::run(Scenario::new(cfg))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, network_build, network_run, baseline_run);
criterion_main!(benches);
