//! Run-artifact writer: `BENCH_<name>.json` JSONL files at the repo root.
//!
//! Every experiment binary and bench target funnels its results through
//! [`Reporter`], which serializes one self-contained JSON object per run —
//! metrics, the full configuration, the counter/timer registry snapshot,
//! and a provenance manifest (binary, git SHA, seed, peak RSS, wall time)
//! — so each PR leaves a machine-readable perf trajectory. The schema is
//! documented field-by-field in `docs/OBSERVABILITY.md`.
//!
//! Artifacts land at the repo root (`BENCH_scale.json`, ...), overridable
//! with the `PARN_BENCH_DIR` environment variable. Multi-process
//! experiments (`exp_scale` runs one subprocess per configuration so peak
//! RSS is per-config) have the driver call [`Reporter::create`] (truncate)
//! and the children [`Reporter::append`] (append a line each).

use parn_sim::json::{obj, Json};
use parn_sim::obs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Artifact schema identifier carried by every line.
pub const SCHEMA: &str = "parn-bench-run/1";

/// Peak resident set size of this process, in kB (Linux `VmHWM`).
/// `None` on platforms without `/proc`.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The commit this binary was run from (`git rev-parse HEAD`), or
/// `"unknown"` outside a git checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(artifact_dir())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Where artifacts are written: `$PARN_BENCH_DIR` when set, else the
/// workspace root (two levels above this crate's manifest).
pub fn artifact_dir() -> PathBuf {
    match std::env::var_os("PARN_BENCH_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Parse a JSONL artifact back into its per-run records — the driver-side
/// inverse of [`Reporter::record`], for modes that compare child runs
/// (e.g. `exp_scale --determinism`).
pub fn read_artifact(path: &std::path::Path) -> Vec<Json> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("parse artifact line: {e:?}")))
        .collect()
}

/// One run's inputs to [`Reporter::record`].
pub struct Run {
    /// Human-readable run label within the experiment
    /// (e.g. `"n=10000 backend=grid-far"`).
    pub label: String,
    /// Full configuration (`NetConfig::to_json()`,
    /// `BaselineConfig::to_json()`, or a hand-built object for parameter
    /// sweeps).
    pub config: Json,
    /// Result metrics (`Metrics::to_json()` or a hand-built object).
    pub metrics: Json,
    /// Wall-clock duration of the run in seconds.
    pub wall_s: f64,
}

/// Stopwatch helper: measure a run and get back `(result, wall_s)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Writes JSONL run records to `BENCH_<name>.json`.
pub struct Reporter {
    name: String,
    path: PathBuf,
}

impl Reporter {
    /// A reporter for `BENCH_<name>.json`, truncating any previous
    /// contents — the normal entry point for an experiment binary.
    pub fn create(name: &str) -> Reporter {
        let r = Reporter::append(name);
        let _ = std::fs::remove_file(&r.path);
        r
    }

    /// A reporter that appends to an existing `BENCH_<name>.json` —
    /// for subprocesses whose driver already called [`Reporter::create`].
    pub fn append(name: &str) -> Reporter {
        Reporter {
            name: name.to_string(),
            path: artifact_dir().join(format!("BENCH_{name}.json")),
        }
    }

    /// Path of the artifact file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Serialize one run as a JSONL line, snapshotting the counter/timer
    /// registry and the provenance manifest at call time.
    ///
    /// Call `parn_sim::obs::reset()` before each run so the counters in the
    /// line are per-run, not accumulated.
    pub fn record(&self, run: &Run) {
        let line = self.render(run);
        if let Some(dir) = self.path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .unwrap_or_else(|e| panic!("open {}: {e}", self.path.display()));
        writeln!(f, "{line}").expect("write artifact line");
    }

    /// Build the JSON line for one run (separated from [`Reporter::record`]
    /// for tests).
    pub fn render(&self, run: &Run) -> String {
        let counters = Json::Obj(
            obs::counters_snapshot()
                .into_iter()
                .map(|(n, v)| (n.to_string(), Json::UInt(v)))
                .collect(),
        );
        let timers = Json::Obj(
            obs::timers_snapshot()
                .into_iter()
                .map(|(n, total_ns, count)| {
                    (
                        n.to_string(),
                        obj([
                            ("total_s", (total_ns as f64 / 1e9).into()),
                            ("count", count.into()),
                        ]),
                    )
                })
                .collect(),
        );
        let binary = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "unknown".to_string());
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let seed = run.config.get("seed").cloned().unwrap_or(Json::Null);
        let provenance = obj([
            ("binary", binary.into()),
            ("git_sha", git_sha().into()),
            ("seed", seed),
            (
                "peak_rss_kb",
                peak_rss_kb().map(Json::UInt).unwrap_or(Json::Null),
            ),
            ("wall_s", run.wall_s.into()),
            ("unix_time", unix_time.into()),
        ]);
        obj([
            ("schema", SCHEMA.into()),
            ("bench", self.name.as_str().into()),
            ("label", run.label.as_str().into()),
            ("provenance", provenance),
            ("config", run.config.clone()),
            ("metrics", run.metrics.clone()),
            ("counters", counters),
            ("timers", timers),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> Run {
        Run {
            label: "unit".into(),
            config: obj([("seed", 7u64.into()), ("n", 10u64.into())]),
            metrics: obj([("delivered", 5u64.into())]),
            wall_s: 0.25,
        }
    }

    #[test]
    fn rendered_line_is_valid_json_with_schema_fields() {
        parn_sim::counter_inc!("test.report.counter", 3);
        let r = Reporter::append("report_unit_test");
        let line = r.render(&sample_run());
        let v = Json::parse(&line).expect("line parses");
        assert_eq!(v.get("schema"), Some(&Json::Str(SCHEMA.into())));
        assert_eq!(v.get("bench"), Some(&Json::Str("report_unit_test".into())));
        assert_eq!(v.get("label"), Some(&Json::Str("unit".into())));
        let prov = v.get("provenance").expect("provenance");
        for field in [
            "binary",
            "git_sha",
            "seed",
            "peak_rss_kb",
            "wall_s",
            "unix_time",
        ] {
            assert!(prov.get(field).is_some(), "missing provenance.{field}");
        }
        assert_eq!(prov.get("seed"), Some(&Json::UInt(7)));
        assert_eq!(v.get("config").unwrap().get("n"), Some(&Json::UInt(10)));
        assert_eq!(
            v.get("metrics").unwrap().get("delivered"),
            Some(&Json::UInt(5))
        );
        let counters = v.get("counters").expect("counters");
        assert!(matches!(counters, Json::Obj(_)));
        assert!(counters.get("test.report.counter").is_some());
        assert!(matches!(v.get("timers"), Some(Json::Obj(_))));
    }

    #[test]
    fn create_truncates_and_record_appends() {
        let dir = std::env::temp_dir().join("parn_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Scope the env override to this test via an explicit path instead:
        // build reporters by hand to avoid racing other tests on env vars.
        let mut r = Reporter::append("tmp_roundtrip");
        r.path = dir.join("BENCH_tmp_roundtrip.json");
        let _ = std::fs::remove_file(&r.path);
        r.record(&sample_run());
        r.record(&sample_run());
        let text = std::fs::read_to_string(&r.path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("each line is standalone JSON");
        }
        let _ = std::fs::remove_file(&r.path);
    }

    #[test]
    fn timed_measures() {
        let (v, wall) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(wall >= 0.0);
    }
}
