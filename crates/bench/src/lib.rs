//! placeholder
