//! Benchmark and experiment harnesses for the workspace.
//!
//! The `benches/` targets use the zero-dependency timing [`harness`]
//! below (the workspace builds hermetically, so no external bench
//! framework). The `src/bin/` experiments regenerate the paper's
//! figures and tables. Both drop machine-readable `BENCH_*.json` run
//! artifacts at the repo root through [`report::Reporter`]
//! (schema: `docs/OBSERVABILITY.md`).

#![warn(missing_docs)]

pub mod report;

use std::time::{Duration, Instant};

/// Entry point for a `harness = false` bench target.
///
/// Honors the `--test` flag cargo passes under `cargo test` (each bench
/// then runs a single iteration as a smoke test) and the
/// `PARN_BENCH_QUICK=1` environment variable. Outside quick mode, results
/// are also written to `BENCH_micro_<target>.json` when the harness is
/// dropped.
pub fn harness(target: &str) -> Harness {
    let quick = std::env::args().any(|a| a == "--test")
        || std::env::var("PARN_BENCH_QUICK").is_ok_and(|v| v == "1");
    // `cargo bench` also passes `--bench` and a filter; accept and use
    // the first non-flag argument as a substring filter.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    println!("# bench target: {target}");
    Harness {
        quick,
        filter,
        target: target.to_string(),
        results: Vec::new(),
        started: Instant::now(),
    }
}

/// A minimal benchmark runner: per-benchmark warmup, auto-scaled
/// iteration counts, and min/mean-of-samples reporting.
pub struct Harness {
    quick: bool,
    filter: Option<String>,
    target: String,
    results: Vec<(String, f64, f64, u64)>, // label, min_s, mean_s, iters
    started: Instant,
}

impl Drop for Harness {
    /// Write the collected results as one `BENCH_micro_<target>.json`
    /// line. Quick mode (smoke runs under `cargo test`) writes nothing —
    /// single unwarmed iterations are not trajectory data.
    fn drop(&mut self) {
        if self.quick || self.results.is_empty() {
            return;
        }
        use parn_sim::json::{obj, Json};
        let metrics = Json::Obj(
            self.results
                .iter()
                .map(|(label, min_s, mean_s, iters)| {
                    (
                        label.clone(),
                        obj([
                            ("min_s", (*min_s).into()),
                            ("mean_s", (*mean_s).into()),
                            ("iters", (*iters).into()),
                        ]),
                    )
                })
                .collect(),
        );
        let reporter = report::Reporter::create(&format!("micro_{}", self.target));
        reporter.record(&report::Run {
            label: self.target.clone(),
            config: obj([(
                "filter",
                self.filter
                    .as_deref()
                    .map(|f| Json::Str(f.into()))
                    .unwrap_or(Json::Null),
            )]),
            metrics,
            wall_s: self.started.elapsed().as_secs_f64(),
        });
    }
}

impl Harness {
    /// Open a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            h: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct Group<'a> {
    h: &'a mut Harness,
    name: String,
}

impl Group<'_> {
    /// Time `f`, printing `group/id: <min> .. <mean> per iter`.
    pub fn bench<R>(&mut self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) {
        let label = format!("{}/{}", self.name, id);
        if let Some(fl) = &self.h.filter {
            if !label.contains(fl.as_str()) {
                return;
            }
        }
        if self.h.quick {
            std::hint::black_box(f());
            println!("{label}: ok (quick mode, 1 iter)");
            return;
        }
        // Warmup: estimate per-iteration cost over ~50 ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Target ~200 ms per sample, 5 samples.
        let iters = ((0.2 / per_iter) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{label}: {} .. {} per iter ({iters} iters x {} samples)",
            fmt_secs(min),
            fmt_secs(mean),
            samples.len()
        );
        self.h.results.push((label, min, mean, iters));
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_scales() {
        assert_eq!(super::fmt_secs(2.0), "2.000 s");
        assert_eq!(super::fmt_secs(2e-3), "2.000 ms");
        assert_eq!(super::fmt_secs(2e-6), "2.000 µs");
        assert_eq!(super::fmt_secs(2e-9), "2.0 ns");
    }
}
