//! E5 — a simulated patch embedded in a metro-scale din.
//!
//! The paper's analysis covers millions of stations; the simulation covers
//! hundreds. This harness bridges them: a constant external interference
//! term stands in for the rest of the metro (the §4 din), swept from
//! nothing up past the link budget. Expected shape: the scheme stays
//! collision-free at every level; once the external din exceeds what the
//! delivered power can clear, losses appear — but as properly-classified
//! **link-budget (Din) losses**, never as collisions, and never silently.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{LossCause, NetConfig, Network};
use parn_phys::PowerW;
use parn_sim::Duration;

fn main() {
    println!("# E5: external metro din sweep (60 stations, 3 pkt/s)\n");
    let delivered = 1e-6;
    let mut cfg0 = NetConfig::paper_default(60, 71);
    let threshold = cfg0.sinr_threshold();
    let budget = delivered / threshold;
    println!("delivered power {delivered:.1e} W, SINR threshold {threshold:.4}");
    println!("=> total interference budget per reception: {budget:.2e} W\n");
    println!(
        "{:>12} {:>14} {:>11} {:>11} {:>10} {:>11}",
        "ext din W", "frac of budget", "hop succ%", "collisions", "din loss", "delivered"
    );
    cfg0.traffic.arrivals_per_station_per_sec = 3.0;
    cfg0.run_for = Duration::from_secs(12);
    cfg0.warmup = Duration::from_secs(2);

    let mut clean_frac: f64 = 0.0;
    let mut first_din_frac = f64::INFINITY;
    let reporter = Reporter::create("metro_din");
    for &ext in &[0.0, 1e-6, 5e-6, 1e-5, 3e-5, 6e-5, 1e-4] {
        let mut cfg = cfg0.clone();
        cfg.external_din = PowerW(ext);
        parn_sim::obs::reset();
        let (m, wall_s) = timed(|| Network::run(cfg.clone()));
        reporter.record(&Run {
            label: format!("external_din_w={ext:.1e}"),
            config: cfg.to_json(),
            metrics: m.to_json(),
            wall_s,
        });
        let din = m.losses.get(&LossCause::Din).copied().unwrap_or(0);
        let frac = ext / budget;
        println!(
            "{:>12.1e} {:>13.2} {:>10.2}% {:>11} {:>10} {:>11}",
            ext,
            frac,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            din,
            m.delivered
        );
        assert_eq!(
            m.collision_losses(),
            0,
            "external din must never look like a collision"
        );
        if din == 0 && m.hop_success_rate() > 0.999 {
            clean_frac = clean_frac.max(frac);
        }
        if din > 0 {
            first_din_frac = first_din_frac.min(frac);
        }
    }
    println!(
        "\nclean up to {clean_frac:.2}x of the interference budget; link-budget\n\
         (Din) losses appear at {first_din_frac:.2}x — the internal traffic's own\n\
         interference plus the margin account for the gap to 1.0."
    );
    assert!(
        clean_frac > 0.1,
        "should tolerate a substantial external din"
    );
    assert!(
        first_din_frac <= 1.5,
        "losses should appear near the budget boundary"
    );
    println!("\nE5 reproduced: OK");
}
