//! A4 — schedule maintenance: idealized oracle vs the realistic
//! piggyback/hello machinery of §7.
//!
//! §7 expects stations to "occasionally rendezvous and exchange clock
//! readings". Two implementations are compared over identical traffic:
//!
//! * **Oracle** — out-of-band periodic exchanges with every tracked
//!   neighbour (free and perfectly reliable);
//! * **Piggyback** — every successful reception carries the sender's
//!   clock reading, plus per-neighbour `Hello` beacons through the normal
//!   MAC, paying real air time and subject to real interference.
//!
//! Expected shape: both stay collision-free; piggyback pays a visible
//! air-time overhead that shrinks as the hello interval grows; overly
//! lazy hellos + high drift eventually show up as schedule violations.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{NetConfig, Network, SyncMode};
use parn_sim::Duration;

fn run(reporter: &Reporter, label: &str, sync: SyncMode, max_ppm: f64) -> parn_core::Metrics {
    let mut cfg = NetConfig::paper_default(60, 51);
    cfg.clock.sync = sync;
    cfg.clock.max_ppm = max_ppm;
    cfg.traffic.arrivals_per_station_per_sec = 2.0;
    cfg.run_for = Duration::from_secs(16);
    cfg.warmup = Duration::from_secs(2);
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: label.to_string(),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    m
}

fn main() {
    println!("# A4: oracle vs piggyback schedule maintenance (60 stations, 100 ppm)\n");
    let reporter = Reporter::create("abl_sync_mode");
    println!(
        "{:<22} {:>10} {:>9} {:>11} {:>12} {:>11}",
        "mode", "delivered", "hellos", "collisions", "violations", "air s"
    );
    let rows: Vec<(String, parn_core::Metrics)> = vec![
        (
            "oracle 5s".into(),
            run(&reporter, "oracle 5s", SyncMode::Oracle, 100.0),
        ),
        (
            "piggyback 1s".into(),
            run(
                &reporter,
                "piggyback 1s",
                SyncMode::Piggyback {
                    hello_interval: Duration::from_secs(1),
                },
                100.0,
            ),
        ),
        (
            "piggyback 3s".into(),
            run(
                &reporter,
                "piggyback 3s",
                SyncMode::Piggyback {
                    hello_interval: Duration::from_secs(3),
                },
                100.0,
            ),
        ),
        (
            "piggyback 8s".into(),
            run(
                &reporter,
                "piggyback 8s",
                SyncMode::Piggyback {
                    hello_interval: Duration::from_secs(8),
                },
                100.0,
            ),
        ),
    ];
    for (name, m) in &rows {
        println!(
            "{:<22} {:>10} {:>9} {:>11} {:>12} {:>11.2}",
            name,
            m.delivered,
            m.hellos_sent,
            m.collision_losses(),
            m.schedule_violations,
            m.tx_airtime.iter().sum::<f64>()
        );
    }
    // Acceptance: oracle and the 1 s piggyback are clean; overhead
    // decreases with the hello interval.
    assert_eq!(rows[0].1.collision_losses(), 0);
    assert_eq!(rows[1].1.collision_losses(), 0, "piggyback 1 s not clean");
    assert_eq!(rows[1].1.schedule_violations, 0);
    let air1 = rows[1].1.tx_airtime.iter().sum::<f64>();
    let air8 = rows[3].1.tx_airtime.iter().sum::<f64>();
    assert!(air1 > air8, "hello overhead should shrink with interval");
    assert!(rows[1].1.hellos_sent > rows[3].1.hellos_sent);
    // Every mode delivers comparably.
    for (name, m) in &rows {
        assert!(
            m.delivered as f64 > 0.9 * rows[0].1.delivered as f64,
            "{name} delivered only {}",
            m.delivered
        );
    }
    println!("\nA4 reproduced: realistic maintenance works and its cost is visible. OK");
}
