//! Table 1 (§7.2) — performance of the scheduling scheme.
//!
//! Reproduces every quantitative claim of §7.2:
//!
//! * the per-slot usable probability toward one neighbour is `p(1−p)`
//!   (0.21 at p = 0.3), measured on real schedule pairs;
//! * the expected wait until transmission is possible is `1/(p(1−p))`
//!   (4.76 slots at p = 0.3), measured against a simulated MAC at
//!   near-zero load and compared with the geometric (Bernoulli) model;
//! * quarter-slot packing keeps ≈ 75% of the usable overlap (≈ 15% of all
//!   time);
//! * a sweep of the receive duty cycle p over full network simulations
//!   locates the throughput optimum near p ≈ 0.3;
//! * with several neighbours and no head-of-line blocking, transmit duty
//!   approaches 50%.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{DestPolicy, NetConfig, Network};
use parn_sched::analysis;
use parn_sched::{QuarterSlot, SchedParams, SlotKind, StationClock, StationSchedule};
use parn_sim::{Duration, Rng, Time};

/// Measured fraction of time one station may send to another (raw overlap
/// and quarter-slot-packed), over a long horizon.
fn measure_pair(params: SchedParams, seed: u64) -> (f64, f64) {
    let mut rng = Rng::new(seed);
    let a = StationSchedule::new(params, StationClock::random(&mut rng, 0.0));
    let b = StationSchedule::new(params, StationClock::random(&mut rng, 0.0));
    let horizon = Time::ZERO + Duration::from_secs(200);
    let a_tx = a.windows(Time::ZERO, horizon, SlotKind::Transmit);
    let b_rx = b.windows(Time::ZERO, horizon, SlotKind::Receive);
    let overlap = parn_sched::intersect_lists(&a_tx, &b_rx);
    let raw: u64 = overlap.iter().map(|w| w.duration().ticks()).sum();

    // Quarter-slot packed: time actually usable for fixed-size packets
    // aligned to a's quarter-points.
    let qs = QuarterSlot::new(params);
    let starts = qs.admissible_starts(
        &overlap,
        |t| a.clock.reading(t),
        |l| a.clock.time_of_reading(l),
        usize::MAX,
    );
    let packed = starts.len() as u64 * qs.packet_len().ticks();
    let total = horizon.since(Time::ZERO).ticks() as f64;
    (raw as f64 / total, packed as f64 / total)
}

fn main() {
    println!("# Sec 7.2 table: pairwise usable time vs receive duty cycle p\n");
    println!(
        "{:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>12}",
        "p", "p(1-p)", "measured", "packed", "pack/raw", "E[wait] slots"
    );
    for &p in &[0.1, 0.2, 0.3, 0.4, 0.5, 0.7] {
        let params = SchedParams::new(Duration::from_millis(10), p, 0xAB);
        let (raw, packed) = measure_pair(params, 42 + (p * 100.0) as u64);
        println!(
            "{:>5} | {:>10.4} {:>10.4} | {:>10.4} {:>10.2} | {:>12.2}",
            p,
            analysis::pairwise_usable_fraction(p),
            raw,
            packed,
            packed / raw,
            analysis::expected_wait_slots(p),
        );
        assert!((raw - analysis::pairwise_usable_fraction(p)).abs() < 0.02);
    }

    // Measured per-hop wait at near-zero load vs the Bernoulli model.
    println!("\n# per-hop MAC wait at near-zero load (single-hop traffic)\n");
    let mut cfg = NetConfig::paper_default(40, 77);
    cfg.traffic.arrivals_per_station_per_sec = 0.2; // essentially no queueing
    cfg.traffic.dest = DestPolicy::Neighbors;
    cfg.run_for = Duration::from_secs(60);
    cfg.warmup = Duration::from_secs(2);
    let reporter = Reporter::create("tab1_schedule_performance");
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: "near-zero-load wait".into(),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    let measured_wait = m.hop_wait_slots.mean().expect("no waits");
    let p50 = m.hop_wait_slots.quantile(0.5).unwrap();
    let p95 = m.hop_wait_slots.quantile(0.95).unwrap();
    println!("  measured mean wait : {measured_wait:.2} slots (p50 {p50:.2}, p95 {p95:.2})");
    println!(
        "  Bernoulli model    : {:.2} slots (geometric, p(1-p) = 0.21)",
        analysis::expected_wait_slots(0.3)
    );
    println!(
        "  geometric p95      : {:.2} slots",
        (0.05f64.ln() / (1.0 - 0.21f64).ln()).ceil()
    );
    assert_eq!(m.collision_losses(), 0);
    // The scheme adds quarter-slot packing overhead; the wait should be
    // the same order as the model (a factor ~[0.7, 2.2] band).
    let model = analysis::expected_wait_slots(0.3);
    assert!(
        measured_wait > 0.7 * model && measured_wait < 2.2 * model,
        "wait {measured_wait} vs model {model}"
    );

    // Duty-cycle sweep: network goodput vs p.
    println!("\n# receive-duty-cycle sweep (30 stations, multihop, heavy load)\n");
    println!(
        "{:>5} | {:>11} {:>11} {:>10} {:>10}",
        "p", "goodput b/s", "tx duty %", "delay ms", "collisions"
    );
    let mut best = (0.0, 0.0);
    for &p in &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
        let mut cfg = NetConfig::paper_default(30, 5);
        cfg.sched.rx_prob = p;
        cfg.traffic.arrivals_per_station_per_sec = 12.0; // saturating
        cfg.run_for = Duration::from_secs(15);
        cfg.warmup = Duration::from_secs(3);
        parn_sim::obs::reset();
        let (m, wall_s) = timed(|| Network::run(cfg.clone()));
        reporter.record(&Run {
            label: format!("duty-sweep p={p}"),
            config: cfg.to_json(),
            metrics: m.to_json(),
            wall_s,
        });
        println!(
            "{:>5} | {:>11.0} {:>10.1}% {:>10.1} {:>10}",
            p,
            m.goodput_bps(),
            100.0 * m.mean_tx_duty(),
            m.e2e_delay.mean() * 1e3,
            m.collision_losses()
        );
        if m.goodput_bps() > best.1 {
            best = (p, m.goodput_bps());
        }
    }
    println!(
        "\nthroughput optimum at p = {} (paper: ~0.3 is near-optimal)",
        best.0
    );
    assert!(
        (0.2..=0.5).contains(&best.0),
        "optimum p = {} far from the paper's 0.3",
        best.0
    );

    // Multi-neighbour aggregate utilization.
    println!("\n# aggregate usable fraction toward n neighbours (analytic)\n");
    for n in [1u32, 2, 3, 4, 8] {
        println!(
            "  n = {n}: {:.3} of all time (tx duty ceiling {:.0}%)",
            analysis::aggregate_usable_fraction(0.3, n),
            100.0 * (1.0 - 0.3f64)
        );
    }

    // §7.2's "transmit duty cycles approaching 50%": a saturated station
    // fanning traffic out to k neighbours, measured.
    println!("\n# saturated-sender transmit duty vs fan-out (measured)\n");
    println!(
        "{:>10} | {:>10} | {:>20}",
        "neighbours", "tx duty %", "analytic usable %"
    );
    let mut duty8 = 0.0;
    for k in [1usize, 2, 4, 8] {
        // Fan flows out of the best-connected station of a 40-station disk.
        let mut cfg = NetConfig::paper_default(40, 31);
        let probe = Network::new(cfg.clone());
        let (center, nbs) = (0..40)
            .map(|s| (s, probe.routes().routing_neighbors(s)))
            .max_by_key(|(_, nb)| nb.len())
            .expect("no stations");
        let fan: Vec<(usize, usize)> = nbs.iter().take(k).map(|&nb| (center, nb)).collect();
        let have = fan.len();
        cfg.traffic.dest = DestPolicy::Flows(fan);
        cfg.traffic.arrivals_per_station_per_sec = 400.0; // saturate center
        cfg.run_for = Duration::from_secs(12);
        cfg.warmup = Duration::from_secs(2);
        cfg.protection.enabled = false; // isolate the scheduling effect
        parn_sim::obs::reset();
        let (m, wall_s) = timed(|| Network::run(cfg.clone()));
        reporter.record(&Run {
            label: format!("fan-out k={k}"),
            config: cfg.to_json(),
            metrics: m.to_json(),
            wall_s,
        });
        let duty = m.tx_airtime[center] / m.measured_span.as_secs_f64();
        if k == 8 {
            duty8 = duty;
        }
        println!(
            "{:>10} | {:>9.1}% | {:>19.1}%",
            have,
            100.0 * duty,
            100.0 * analysis::aggregate_usable_fraction(0.3, have as u32)
        );
    }
    assert!(
        duty8 > 0.35,
        "saturated fan-out duty {duty8} nowhere near the paper's ~50%"
    );
    println!("\nsec 7.2 table reproduced: OK");
}
