//! Figure 4 — a sample pseudo-random schedule for 20 stations.
//!
//! Regenerates the paper's figure as data: for each of 20 stations with
//! independently random clocks, the transmit windows over 0.5 s of 10 ms
//! slots at receive duty cycle 0.3, printed both as segments (start/end
//! pairs, the figure's line segments) and as an ASCII strip. Also verifies
//! the figure's caption properties: unaligned slot boundaries and a ~30%
//! receive fraction.

use parn_bench::report::{Reporter, Run};
use parn_sched::{SchedParams, SlotKind, StationClock, StationSchedule};
use parn_sim::json::obj;
use parn_sim::{Duration, Rng, Time};

fn main() {
    let started = std::time::Instant::now();
    parn_sim::obs::reset();
    let params = SchedParams::new(Duration::from_millis(10), 0.3, 0x1996);
    let mut rng = Rng::new(0xF164);
    let stations: Vec<StationSchedule> = (0..20)
        .map(|_| StationSchedule::new(params, StationClock::random(&mut rng, 0.0)))
        .collect();

    let from = Time::ZERO;
    let to = Time::ZERO + Duration::from_millis(500);

    println!("# Figure 4: transmit windows (seconds) for 20 stations, p = 0.3");
    for (i, st) in stations.iter().enumerate() {
        let segs: Vec<String> = st
            .windows(from, to, SlotKind::Transmit)
            .iter()
            .map(|w| format!("{:.3}-{:.3}", w.start.as_secs_f64(), w.end.as_secs_f64()))
            .collect();
        println!("station {i:>2}: {}", segs.join(" "));
    }

    println!("\n# ASCII strip (5 ms columns; '#' transmit, '.' receive)");
    for (i, st) in stations.iter().enumerate() {
        let mut row = String::new();
        let mut t = from;
        while t < to {
            row.push(match st.kind_at(t) {
                SlotKind::Transmit => '#',
                SlotKind::Receive => '.',
            });
            t += Duration::from_micros(5000);
        }
        println!("{i:>2} {row}");
    }

    // Caption checks.
    // (a) receive fraction ≈ 0.3 over a long horizon.
    let long = Time::ZERO + Duration::from_secs(100);
    let mut rx_time = 0u64;
    for st in &stations {
        rx_time += st
            .windows(Time::ZERO, long, SlotKind::Receive)
            .iter()
            .map(|w| w.duration().ticks())
            .sum::<u64>();
    }
    let frac = rx_time as f64 / (100.0 * 1e6 * 20.0);
    println!("\nreceive fraction over 100 s x 20 stations: {frac:.4} (target 0.3)");
    assert!((frac - 0.3).abs() < 0.01);

    // (b) slot boundaries are unaligned between stations.
    let mut aligned_pairs = 0;
    for i in 0..stations.len() {
        for j in (i + 1)..stations.len() {
            let phase_i = stations[i].clock.reading(Time::ZERO) % params.slot.ticks();
            let phase_j = stations[j].clock.reading(Time::ZERO) % params.slot.ticks();
            if phase_i == phase_j {
                aligned_pairs += 1;
            }
        }
    }
    println!("pairs with aligned slot phase: {aligned_pairs} (expected 0)");
    assert_eq!(aligned_pairs, 0);

    // (c) the paper's caption example: at any instant, each station can
    // reach some neighbours and not others. Count reachable pairs at one
    // instant.
    let t = Time::ZERO + Duration::from_millis(123);
    let mut sendable = 0;
    for i in 0..stations.len() {
        for j in 0..stations.len() {
            if i != j
                && stations[i].kind_at(t) == SlotKind::Transmit
                && stations[j].kind_at(t) == SlotKind::Receive
            {
                sendable += 1;
            }
        }
    }
    let frac_pairs = sendable as f64 / (20.0 * 19.0);
    println!(
        "sendable ordered pairs at t=0.123 s: {sendable}/380 ({frac_pairs:.2}; expect ~p(1-p)=0.21)"
    );
    assert!((frac_pairs - 0.21).abs() < 0.15);
    Reporter::create("fig4_schedule_sample").record(&Run {
        label: "20 stations p=0.3".into(),
        config: obj([
            ("stations", 20u64.into()),
            ("slot_s", 0.01.into()),
            ("rx_prob", 0.3.into()),
            ("seed", 0x1996u64.into()),
        ]),
        metrics: obj([
            ("receive_fraction", frac.into()),
            ("aligned_slot_pairs", (aligned_pairs as u64).into()),
            ("sendable_pair_fraction", frac_pairs.into()),
        ]),
        wall_s: started.elapsed().as_secs_f64(),
    });
    println!("\nfigure 4 reproduced: OK");
}
