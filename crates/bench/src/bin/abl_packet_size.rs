//! A5 — packet size vs slot size (the thesis's quarter-slot choice).
//!
//! The thesis fixes packets to one quarter of a slot: small enough that a
//! typical transmit/receive overlap fits several, large enough that
//! per-packet overheads stay reasonable. Sweeping the divisor shows the
//! trade: half-slot packets waste partial overlaps (lower goodput under
//! saturation), eighth-slot packets squeeze more payload into the same
//! overlaps but send many more packets for the same bits. Collision
//! freedom must hold at every size.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{NetConfig, Network};
use parn_sim::Duration;

fn main() {
    let reporter = Reporter::create("abl_packet_size");
    println!("# A5: packets-per-slot sweep (30 stations, saturating load)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>11} {:>11}",
        "pkts/slot", "airtime us", "goodput b/s", "pkts deliv", "collisions", "delay ms"
    );
    let mut goodputs = Vec::new();
    for &div in &[1u64, 2, 4, 8] {
        let mut cfg = NetConfig::paper_default(30, 61);
        cfg.packet_divisor = div;
        // Saturating offered load in *bits*: packet count scales with the
        // divisor so the offered bit-rate stays constant.
        cfg.traffic.arrivals_per_station_per_sec = 3.0 * div as f64;
        cfg.run_for = Duration::from_secs(14);
        cfg.warmup = Duration::from_secs(2);
        let airtime_us = cfg.packet_airtime().ticks();
        parn_sim::obs::reset();
        let (m, wall_s) = timed(|| Network::run(cfg.clone()));
        reporter.record(&Run {
            label: format!("pkts_per_slot={div}"),
            config: cfg.to_json(),
            metrics: m.to_json(),
            wall_s,
        });
        println!(
            "{:>10} {:>12} {:>12.0} {:>12} {:>11} {:>11.1}",
            div,
            airtime_us,
            m.goodput_bps(),
            m.delivered,
            m.collision_losses(),
            m.e2e_delay.mean() * 1e3
        );
        assert_eq!(m.collision_losses(), 0, "divisor {div} broke the scheme");
        goodputs.push((div, m.goodput_bps()));
    }
    // Whole-slot packets must be visibly worse than quarter-slot: a packet
    // only fits where a *full* slot of overlap exists.
    let g1 = goodputs.iter().find(|(d, _)| *d == 1).unwrap().1;
    let g4 = goodputs.iter().find(|(d, _)| *d == 4).unwrap().1;
    assert!(
        g4 > g1,
        "quarter-slot should beat whole-slot under saturation: {g4} vs {g1}"
    );
    println!(
        "\nwhole-slot packets fit only where a full slot of overlap exists;\n\
         smaller packets harvest the partial overlaps — the thesis's\n\
         quarter-slot choice sits on the flat part of the curve."
    );
    println!("\nA5 reproduced: OK");
}
