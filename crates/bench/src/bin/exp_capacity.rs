//! E7 — saturation capacity envelope: drive each traffic model to its
//! goodput knee and bracket the result with closed-form references.
//!
//! For every network size n ∈ {10³, 10⁴, 10⁵} and traffic model
//! (gravity, hotspot, bursty on-off over gravity), the per-station
//! arrival rate climbs a ladder until carried/offered goodput collapses.
//! Even an unloaded run's carried/offered ratio sits below 1: packets
//! still in flight when the measured window closes are censored (the
//! fraction grows with hop count). The *knee* is therefore relative —
//! the last rate whose ratio stays within 90% of the lowest rung's
//! (the censoring baseline) — with an absolute 0.7 saturation floor;
//! the ladder stops early once the ratio falls under 0.7 (everything
//! beyond is deeper saturation, not information).
//!
//! Every child run records `Metrics::to_json_extended()` (the
//! `saturation` block: offered/carried pps, delay and hop percentiles,
//! time-weighted queue depth) through the shared [`Reporter`], and the
//! driver appends one synthesized `knee n=… model=…` summary line per
//! sweep with the closed-form comparison columns from
//! [`parn_phys::capacity`]:
//!
//! * Błaszczyszyn–Mühlethaler SINR coverage — evaluated at the mean din
//!   of a finite disk (`mean_din_w` + `coverage_at_mean_sinr`), because
//!   the infinite-plane constant `C(β)` diverges at the free-space β = 2
//!   this repo simulates (`c_beta2` is reported as null deliberately);
//! * Mhatre–Rosenberg / Gupta–Kumar relaying bound — measured duty
//!   cycle at the knee converted to per-hop service, divided by the
//!   analytic mean hop count of the traffic model, plus the
//!   `Θ(1/√(n ln n))` per-node scaling envelope.
//!
//! Modes (subprocess pattern as in `exp_scale`, one child per
//! configuration so peak RSS stays per-run):
//!
//! * no args — full sweep driver;
//! * `--smoke` — tiny sweep (n = 200, truncated ladder) for CI;
//! * `--one <n> <model> <rate>` — run one configuration and append its
//!   artifact line.
//!
//! The measured-vs-analytic discussion lives in `docs/CAPACITY.md`.

use parn_bench::report::{read_artifact, Reporter, Run};
use parn_core::{
    DestPolicy, FarFieldConfig, NetConfig, Network, PhyBackend, RouteMode, SourceModel,
};
use parn_phys::capacity::{
    coverage_at_mean_sinr, gravity_mean_distance, mean_din_w, mean_hops, per_node_capacity_scaling,
    saturation_arrival_bound,
};
use parn_sim::json::{obj, Json};
use parn_sim::Duration;
use std::time::Instant;

/// Station density of `NetConfig::paper_default` (stations per m²).
const RHO: f64 = 0.01;
/// Usable hop reach at that density: `reach_factor/√ρ` = 20 m.
const REACH_M: f64 = 20.0;
/// Rate ladder (packets/station/s). Climbed until saturation.
const LADDER: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
/// A run below this carried/offered ratio ends its sweep early — and no
/// rung below it can be the knee (absolute saturation floor).
const STOP_RATIO: f64 = 0.7;
/// The knee is the last rate whose ratio stays within this factor of the
/// lowest rung's ratio (the in-flight-censoring baseline).
const KNEE_FRACTION: f64 = 0.9;

const MODELS: [&str; 3] = ["gravity", "hotspot", "onoff-gravity"];

fn capacity_config(n: usize, model: &str, rate: f64) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, 42);
    // Multi-hop at metro scale without the O(M²) all-pairs table: greedy
    // geographic forwarding over the spatial index with far-field
    // aggregation — the only pairing that reaches n = 10⁵.
    cfg.phy_backend = PhyBackend::Grid {
        far_field: Some(FarFieldConfig::default_for_paper()),
    };
    cfg.route_mode = RouteMode::Greedy;
    cfg.traffic.arrivals_per_station_per_sec = rate;
    match model {
        "gravity" => cfg.traffic.dest = DestPolicy::Gravity { exponent: 2.0 },
        "hotspot" => {
            cfg.traffic.dest = DestPolicy::Hotspot {
                sinks: 4,
                skew: 1.0,
            }
        }
        "onoff-gravity" => {
            cfg.traffic.dest = DestPolicy::Gravity { exponent: 2.0 };
            // 20% duty bursts: 5× peak rate at the same mean.
            cfg.traffic.source = SourceModel::OnOff {
                on_mean_s: 0.2,
                off_mean_s: 0.8,
            };
        }
        other => panic!("unknown model {other:?} (want gravity|hotspot|onoff-gravity)"),
    }
    // Measured window shrinks with n; the knee shows up within seconds
    // of simulated time once queues stop draining.
    let (run_s, warm_ms) = match n {
        0..=2_000 => (10, 2_500),
        2_001..=20_000 => (4, 1_000),
        _ => (2, 500),
    };
    cfg.run_for = Duration::from_secs(run_s);
    cfg.warmup = Duration::from_millis(warm_ms);
    cfg
}

/// Follow `path` into nested JSON objects and read a number (NaN when
/// absent or non-numeric).
fn num(j: &Json, path: &[&str]) -> f64 {
    let mut cur = j;
    for p in path {
        match cur.get(p) {
            Some(next) => cur = next,
            None => return f64::NAN,
        }
    }
    match cur {
        Json::Num(v) => *v,
        Json::UInt(v) => *v as f64,
        Json::Int(v) => *v as f64,
        _ => f64::NAN,
    }
}

fn carried_over_offered(record: &Json) -> f64 {
    let offered = num(record, &["metrics", "saturation", "offered_pps"]);
    let carried = num(record, &["metrics", "saturation", "carried_pps"]);
    if offered > 0.0 {
        carried / offered
    } else {
        0.0
    }
}

fn run_one(n: usize, model: &str, rate: f64) {
    let cfg = capacity_config(n, model, rate);
    parn_sim::obs::reset();
    let start = Instant::now();
    let m = Network::run(cfg.clone());
    let wall = start.elapsed().as_secs_f64();
    Reporter::append("capacity").record(&Run {
        label: format!("n={n} model={model} rate={rate}"),
        config: cfg.to_json(),
        metrics: m.to_json_extended(),
        wall_s: wall,
    });
    assert_eq!(
        m.collision_losses(),
        0,
        "collision-freedom broken at n={n} model={model} rate={rate}: {}",
        m.summary()
    );
    let span = m.measured_span.as_secs_f64().max(1e-9);
    println!(
        "n={n} model={model} rate={rate} wall_s={wall:.2} offered_pps={:.1} carried_pps={:.1} \
         delivered={} hops_mean={:.2}",
        m.generated as f64 / span,
        m.delivered as f64 / span,
        m.delivered,
        m.hops_per_packet.mean(),
    );
}

fn spawn_one(n: usize, model: &str, rate: f64) {
    let exe = std::env::current_exe().expect("current_exe");
    let status = std::process::Command::new(&exe)
        .args(["--one", &n.to_string(), model, &rate.to_string()])
        .status()
        .expect("spawn subprocess");
    assert!(
        status.success(),
        "n={n} model={model} rate={rate}: {status}"
    );
}

/// Mean flow distance (m) the traffic model induces at size `n` — the
/// analytic marginal, not a measurement.
fn analytic_flow_distance(n: usize, model: &str) -> f64 {
    let radius = (n as f64 / (std::f64::consts::PI * RHO)).sqrt();
    match model {
        // Matches the sampler's marginal: p(r) ∝ r^(1-α) on
        // [reach, max(2R, 2·reach)] (see `Network::new`).
        "gravity" | "onoff-gravity" => {
            gravity_mean_distance(2.0, REACH_M, (2.0 * radius).max(2.0 * REACH_M))
        }
        // Sinks are uniformly placed stations, so a flow is a uniform
        // random pair: E[r] = 128R/(45π) ≈ 0.905R in a disk of radius R.
        "hotspot" => 128.0 * radius / (45.0 * std::f64::consts::PI),
        other => panic!("unknown model {other:?}"),
    }
}

/// Sweep one (n, model) pair up the ladder, then append the synthesized
/// knee-summary artifact line with the analytic comparison columns.
fn sweep(n: usize, model: &str, ladder: &[f64]) {
    let reporter = Reporter::append("capacity");
    let start = Instant::now();
    let mut runs: Vec<(f64, Json)> = Vec::new();
    for &rate in ladder {
        spawn_one(n, model, rate);
        let record = read_artifact(reporter.path())
            .pop()
            .expect("child appended a line");
        let ratio = carried_over_offered(&record);
        runs.push((rate, record));
        if ratio < STOP_RATIO {
            break;
        }
    }
    // The knee: last rate whose ratio holds both the relative bar
    // (within KNEE_FRACTION of the lowest rung, the censoring baseline)
    // and the absolute floor. When even the lowest rung saturates, the
    // knee is below the ladder: report null and use the lowest run for
    // the measured columns.
    let baseline = carried_over_offered(&runs[0].1);
    let knee_bar = (baseline * KNEE_FRACTION).max(STOP_RATIO);
    let knee = if baseline < STOP_RATIO {
        None
    } else {
        runs.iter()
            .rev()
            .find(|(_, r)| carried_over_offered(r) >= knee_bar)
    };
    let (at, knee_rate) = match knee {
        Some((rate, record)) => (record, Some(*rate)),
        None => (&runs[0].1, None),
    };

    let cfg = capacity_config(n, model, 1.0);
    let radius = (n as f64 / (std::f64::consts::PI * RHO)).sqrt();
    let theta = cfg.sinr_threshold();
    let duty = num(at, &["metrics", "mean_tx_duty"]).max(1e-6);
    let airtime_s = cfg.packet_airtime().as_secs_f64();

    // Błaszczyszyn–Mühlethaler at β = 2: finite-disk mean din in place of
    // the divergent infinite-plane constant.
    let din_w = mean_din_w(
        RHO * duty,
        cfg.delivered_power.value(),
        REACH_M,
        REACH_M,
        radius.max(2.0 * REACH_M),
    );
    let mean_sinr = cfg.delivered_power.value() / (din_w + cfg.thermal_noise.value());
    let coverage = coverage_at_mean_sinr(theta, mean_sinr);

    // Mhatre–Rosenberg relaying bound: per-hop service the measured duty
    // cycle sustains, divided by the analytic hop count of a mean flow.
    let flow_m = analytic_flow_distance(n, model);
    let hops_analytic = mean_hops(flow_m, REACH_M);
    let service_pps = duty / airtime_s;
    let relay_bound = saturation_arrival_bound(service_pps, hops_analytic);

    let hops_measured = num(at, &["metrics", "saturation", "hops", "mean"]);
    let carried_per_station = num(
        at,
        &["metrics", "saturation", "per_station_carried_pps", "mean"],
    );
    let summary = Run {
        label: format!("knee n={n} model={model}"),
        config: obj([
            ("n", n.into()),
            ("model", model.into()),
            (
                "ladder_pps",
                Json::Arr(ladder.iter().map(|&r| r.into()).collect()),
            ),
            ("knee_fraction", KNEE_FRACTION.into()),
            ("stop_ratio", STOP_RATIO.into()),
        ]),
        metrics: obj([
            (
                "measured",
                obj([
                    (
                        "knee_rate_pps",
                        knee_rate.map(Json::from).unwrap_or(Json::Null),
                    ),
                    ("ratio_at_knee", carried_over_offered(at).into()),
                    ("ratio_low_load", baseline.into()),
                    ("carried_pps_per_station", carried_per_station.into()),
                    ("hops_mean", hops_measured.into()),
                    (
                        "delay_p95_s",
                        num(at, &["metrics", "saturation", "delay_s", "p95"]).into(),
                    ),
                    ("mean_tx_duty", duty.into()),
                ]),
            ),
            (
                "analytic",
                obj([
                    // C(β) is undefined at the simulated β = 2 — that
                    // divergence is the paper's §4 din argument.
                    ("c_beta2", Json::Null),
                    ("mean_din_w", din_w.into()),
                    ("mean_sinr", mean_sinr.into()),
                    ("coverage_at_mean_sinr", coverage.into()),
                    ("flow_distance_m", flow_m.into()),
                    ("mean_hops", hops_analytic.into()),
                    ("relay_bound_pps", relay_bound.into()),
                    (
                        "scaling_vs_1e3",
                        (per_node_capacity_scaling(n as f64) / per_node_capacity_scaling(1e3))
                            .into(),
                    ),
                ]),
            ),
        ]),
        wall_s: start.elapsed().as_secs_f64(),
    };
    reporter.record(&summary);
    println!(
        "knee n={n} model={model}: rate={} ratio={:.3} hops_measured={hops_measured:.2} \
         hops_analytic={hops_analytic:.2} relay_bound_pps={relay_bound:.2} coverage={coverage:.3}\n",
        knee_rate.map_or("<ladder".into(), |r| format!("{r}")),
        carried_over_offered(at),
    );
}

fn drive(sizes: &[usize], ladder: &[f64], assert_multihop: bool) {
    let reporter = Reporter::create("capacity"); // truncate; children append
    println!("# E7: saturation capacity envelope (knee sweep per traffic model)");
    println!("# artifact: {}", reporter.path().display());
    println!(
        "# ladder: {ladder:?} pps/station; knee = last ratio within \
         {KNEE_FRACTION} of the low-load baseline (floor {STOP_RATIO})\n"
    );
    for &n in sizes {
        for model in MODELS {
            sweep(n, model, ladder);
        }
    }
    if assert_multihop {
        // ISSUE acceptance: gravity traffic must be genuinely multi-hop.
        for record in read_artifact(reporter.path()) {
            let label = match record.get("label") {
                Some(Json::Str(s)) => s.clone(),
                _ => continue,
            };
            if label.starts_with("knee") && label.contains("gravity") {
                let hops = num(&record, &["metrics", "measured", "hops_mean"]);
                assert!(
                    hops > 2.0,
                    "{label}: gravity knee hops_mean={hops:.2} not multi-hop"
                );
            }
        }
    }
    println!("# E7 sweep complete");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["--one", n, model, rate] => {
            run_one(n.parse().expect("n"), model, rate.parse().expect("rate"))
        }
        // CI smoke: one small size, two rungs — exercises the child,
        // the artifact schema, and the knee synthesis in seconds.
        ["--smoke"] => drive(&[200], &[0.5, 2.0], false),
        _ => drive(&[1_000, 10_000, 100_000], &LADDER, true),
    }
}
