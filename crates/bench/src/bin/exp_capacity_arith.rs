//! E2 — capacity at scale: the §4 arithmetic plus measured link SINR.
//!
//! Reproduces the paper's quantitative capacity chain:
//!
//! * C/W ≈ 0.0144 bit/s/Hz (≈ 14 bit/s/kHz) at the −20 dB din SNR
//!   (η = 1, M → 10¹²);
//! * ≈ 56 bit/s/kHz at η = 0.25 (−14 dB);
//! * halving the duty cycle is throughput-neutral in the din;
//! * each doubling of hop range costs 6 dB → 4× in raw rate;
//! * the metro projection: 10⁶ stations at hundreds of Mb/s raw with a
//!   modest slice of spectrum;
//!
//! and cross-checks the *simulated* SINR margins in a dense network
//! against the analytic din level.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{NetConfig, Network};
use parn_phys::linkbudget::{rate_factor_for_range, SystemDesign};
use parn_phys::noise::{relative_net_throughput, snr_vs_scale_db};
use parn_phys::shannon::spectral_efficiency;
use parn_phys::units::snr_from_db;
use parn_sim::Duration;

fn main() {
    println!("# E2: capacity at scale (paper Sec. 4 and conclusion)\n");

    println!("## Shannon capacity at din-limited SNR");
    let c20 = spectral_efficiency(snr_from_db(-20.0)) * 1e3;
    let c14 = spectral_efficiency(0.04) * 1e3;
    println!("  -20 dB: {c20:.1} bit/s/kHz (paper: ~14)");
    println!("  -14 dB: {c14:.1} bit/s/kHz (paper: ~56)");
    assert!((c20 - 14.35).abs() < 0.1);
    assert!((c14 - 56.6).abs() < 0.2);

    println!("\n## duty-cycle neutrality at M = 10^12 (relative net throughput)");
    for eta in [1.0, 0.5, 0.25, 0.125] {
        let t = relative_net_throughput(eta, 1e12);
        println!("  eta = {eta:<6} -> {t:.3}");
    }
    let t_half = relative_net_throughput(0.5, 1e12);
    let t_quarter = relative_net_throughput(0.25, 1e12);
    assert!((t_quarter / t_half - 1.0).abs() < 0.05, "not neutral");

    println!("\n## range vs rate (6 dB per doubling, Sec. 6)");
    for rf in [1.0, 2.0, 4.0] {
        println!(
            "  range x{rf}: rate x{:.3}",
            rate_factor_for_range(0.05, rf)
        );
    }
    let quartered = rate_factor_for_range(0.01, 2.0);
    assert!((quartered - 0.25).abs() < 0.01);

    println!("\n## metro projection (10^6 stations, eta = 0.25)");
    for w in [100e6, 500e6, 1.5e9] {
        let d = SystemDesign::metro(1e6, w);
        println!(
            "  W = {:>6.0} MHz: din SNR {:>6.1} dB, projected raw {:>7.1} Mb/s, engineered {:>6.2} Mb/s",
            w / 1e6,
            10.0 * d.din_snr().log10(),
            d.projection_rate_bps() / 1e6,
            d.raw_rate_bps() / 1e6
        );
    }
    let d = SystemDesign::metro(1e6, 1.5e9);
    assert!(
        d.projection_rate_bps() > 1e8,
        "metro projection under 100 Mb/s"
    );

    println!("\n## simulated link SINR vs analytic din (100-station network)");
    // Run the full scheme and compare the worst observed SINR margin with
    // what the Eq. 15 din level predicts for the in-simulation duty cycle.
    let mut cfg = NetConfig::paper_default(100, 11);
    cfg.traffic.arrivals_per_station_per_sec = 4.0;
    cfg.run_for = Duration::from_secs(15);
    cfg.warmup = Duration::from_secs(3);
    let threshold = cfg.sinr_threshold();
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    Reporter::create("capacity_arith").record(&Run {
        label: "n=100 sinr-vs-din".into(),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    let eta = m.mean_tx_duty().max(1e-4);
    let predicted_snr_db = snr_vs_scale_db(eta, 100.0);
    println!(
        "  measured duty cycle eta = {:.3}; Eq.15 din SNR at that eta: {:.1} dB",
        eta, predicted_snr_db
    );
    println!(
        "  SINR margin over threshold ({:.1} dB): mean {:.1} dB, worst {:.1} dB",
        10.0 * threshold.log10(),
        m.sinr_margin_db.mean(),
        m.sinr_margin_db.min()
    );
    // The scheme must hold every reception above threshold, with the
    // worst-case margin positive but finite (the din is real).
    assert!(m.sinr_margin_db.min() > 0.0);
    assert!(
        m.sinr_margin_db.min() < 40.0,
        "din absent? margin implausibly large"
    );
    assert_eq!(m.collision_losses(), 0);
    println!("\nE2 reproduced: OK");
}
