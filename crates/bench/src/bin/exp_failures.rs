//! E4 — self-organization under station failures.
//!
//! The paper's motivation is an *anarchic* network: stations "purchased
//! and installed by the users", no infrastructure, no coordination. Such
//! a network must keep working when stations disappear. This harness
//! kills a cascade of stations (including the busiest relays) mid-run and
//! shows: routing heals over the survivors, traffic keeps flowing, the
//! scheme remains collision-free throughout, and every lost packet is
//! attributed to the failure (never silently dropped).

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{LossCause, NetConfig, Network};
use parn_sim::Duration;

fn main() {
    println!("# E4: station failures and route healing\n");

    let n = 100;
    let mut cfg = NetConfig::paper_default(n, 13);
    cfg.traffic.arrivals_per_station_per_sec = 2.0;
    cfg.run_for = Duration::from_secs(24);
    cfg.warmup = Duration::from_secs(2);

    // Identify the four busiest relays up front (most routing dependents).
    let probe = Network::new(cfg.clone());
    let mut dependents: Vec<(usize, usize)> = (0..n)
        .map(|s| {
            let d = (0..n)
                .filter(|&o| o != s)
                .filter(|&o| probe.routes().routing_neighbors(o).contains(&s))
                .count();
            (d, s)
        })
        .collect();
    dependents.sort_by(|a, b| b.cmp(a));
    let victims: Vec<usize> = dependents.iter().take(4).map(|&(_, s)| s).collect();
    println!("killing busiest relays {victims:?} at t = 6, 10, 14, 18 s\n");
    cfg.failures = victims
        .iter()
        .enumerate()
        .map(|(k, &s)| (Duration::from_secs(6 + 4 * k as u64), s))
        .collect();

    let reporter = Reporter::create("failures");
    let base_cfg = {
        let mut c = cfg.clone();
        c.failures.clear();
        c
    };
    parn_sim::obs::reset();
    let (baseline, base_wall) = timed(|| Network::run(base_cfg.clone()));
    reporter.record(&Run {
        label: "no-failures".into(),
        config: base_cfg.to_json(),
        metrics: baseline.to_json(),
        wall_s: base_wall,
    });
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: "4-failures".into(),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });

    println!("{:<28} {:>12} {:>12}", "", "no failures", "4 failures");
    println!(
        "{:<28} {:>12} {:>12}",
        "generated", baseline.generated, m.generated
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "delivered", baseline.delivered, m.delivered
    );
    println!(
        "{:<28} {:>11.1}% {:>11.1}%",
        "delivery rate",
        100.0 * baseline.delivery_rate(),
        100.0 * m.delivery_rate()
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "collision losses",
        baseline.collision_losses(),
        m.collision_losses()
    );
    for (label, cause) in [
        ("lost to station failure", LossCause::StationFailed),
        ("lost unroutable", LossCause::Unroutable),
    ] {
        println!(
            "{:<28} {:>12} {:>12}",
            label,
            baseline.losses.get(&cause).copied().unwrap_or(0),
            m.losses.get(&cause).copied().unwrap_or(0)
        );
    }
    println!(
        "{:<28} {:>12} {:>12}",
        "retransmissions", baseline.retransmissions, m.retransmissions
    );

    // Acceptance.
    assert_eq!(m.collision_losses(), 0, "failures broke collision-freedom");
    assert_eq!(baseline.collision_losses(), 0);
    assert!(
        m.delivered as f64 > 0.75 * baseline.delivered as f64,
        "healing failed: {} vs {}",
        m.delivered,
        baseline.delivered
    );
    let failure_losses = m
        .losses
        .get(&LossCause::StationFailed)
        .copied()
        .unwrap_or(0)
        + m.losses.get(&LossCause::Unroutable).copied().unwrap_or(0);
    assert!(failure_losses > 0, "failures should cost *something*");
    // Ledger balances: generated = delivered + in flight + settled drops.
    assert!(m.delivered + m.in_flight_at_end <= m.generated);
    println!("\nE4: network heals around failures, losses fully accounted. OK");
}
