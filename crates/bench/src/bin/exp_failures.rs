//! E4 — self-organization under station churn.
//!
//! The paper's motivation is an *anarchic* network: stations "purchased
//! and installed by the users", no infrastructure, no coordination. Such
//! a network must keep working when stations disappear — and, harder,
//! when they come *back* with a cold clock, or when a jammer lights up a
//! neighbourhood. This harness drives both heal modes through the same
//! seeded churn plan (the four busiest relays crash and recover,
//! staggered, plus one jammer window) and a crash-count sweep, and
//! shows: routing heals over the survivors, the scheme stays
//! collision-free outside the jammer window, local detection converges
//! close to the oracle, and every lost packet carries a cause.
//!
//! A third arm runs the same churn in [`RouteMode::Distributed`]: healing
//! there must come entirely from the per-station distance-vector exchange
//! (`route_repairs == 0`) with a nonzero, seed-deterministic time-to-heal.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{FaultPlan, HealConfig, LossCause, Metrics, NetConfig, Network, RouteMode};
use parn_phys::PowerW;
use parn_sim::Duration;

fn run_with(
    reporter: &Reporter,
    cfg: &NetConfig,
    heal: HealConfig,
    route: RouteMode,
    plan: FaultPlan,
    label: &str,
) -> Metrics {
    let mut c = cfg.clone();
    c.heal = heal;
    c.route_mode = route;
    c.faults = plan;
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(c.clone()));
    reporter.record(&Run {
        label: label.into(),
        config: c.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    assert!(m.conservation_holds(), "{label}: {}", m.summary());
    assert_eq!(
        m.collision_losses(),
        0,
        "{label} broke collision-freedom: {}",
        m.summary()
    );
    m
}

fn main() {
    println!("# E4: station churn, jamming, and route healing\n");

    let n = 100;
    let mut cfg = NetConfig::paper_default(n, 13);
    cfg.traffic.arrivals_per_station_per_sec = 2.0;
    cfg.run_for = Duration::from_secs(24);
    cfg.warmup = Duration::from_secs(2);

    let reporter = Reporter::create("failures");

    // One build serves both the dependents query and the fault-free
    // baseline run: rank relays, then run the same Network to completion.
    parn_sim::obs::reset();
    let probe = Network::new(cfg.clone());
    let mut dependents: Vec<(usize, usize)> = probe
        .routing_dependent_counts()
        .into_iter()
        .enumerate()
        .map(|(s, d)| (d, s))
        .collect();
    dependents.sort_by(|a, b| b.cmp(a));
    let victims: Vec<usize> = dependents.iter().take(8).map(|&(_, s)| s).collect();
    let (baseline, base_wall) = timed(|| probe.run_built());
    reporter.record(&Run {
        label: "baseline".into(),
        config: cfg.to_json(),
        metrics: baseline.to_json(),
        wall_s: base_wall,
    });
    assert_eq!(baseline.collision_losses(), 0);
    println!(
        "busiest relays (by routing dependents): {:?}\n",
        &victims[..4]
    );

    // The churn plan: the four busiest relays crash at t = 6/10/14/18 s
    // and each recovers 4 s later, plus a 1.5 s jammer window on top of
    // the busiest relay's neighbourhood mid-run.
    let mut churn = FaultPlan::none();
    for (k, &s) in victims.iter().take(4).enumerate() {
        churn = churn.crash_recover(
            Duration::from_secs(6 + 4 * k as u64),
            s,
            Duration::from_secs(4),
        );
    }
    churn = churn.jam(
        Duration::from_secs(12),
        victims[0],
        Duration::from_secs_f64(1.5),
        PowerW(0.01),
    );

    let oracle = run_with(
        &reporter,
        &cfg,
        HealConfig::oracle(),
        RouteMode::Centralized,
        churn.clone(),
        "churn-oracle",
    );
    let local = run_with(
        &reporter,
        &cfg,
        HealConfig::local(),
        RouteMode::Centralized,
        churn.clone(),
        "churn-local",
    );
    let dist = run_with(
        &reporter,
        &cfg,
        HealConfig::local(),
        RouteMode::Distributed,
        churn.clone(),
        "churn-distributed",
    );

    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12}",
        "", "baseline", "churn-oracle", "churn-local", "churn-dv"
    );
    let row = |label: &str, f: &dyn Fn(&Metrics) -> String| {
        println!(
            "{:<26} {:>10} {:>12} {:>12} {:>12}",
            label,
            f(&baseline),
            f(&oracle),
            f(&local),
            f(&dist)
        );
    };
    row("generated", &|m| m.generated.to_string());
    row("delivered", &|m| m.delivered.to_string());
    row("delivery rate", &|m| {
        format!("{:.1}%", 100.0 * m.delivery_rate())
    });
    row("collision losses", &|m| m.collision_losses().to_string());
    for (label, cause) in [
        ("lost: station failed", LossCause::StationFailed),
        ("lost: jammed", LossCause::Jammed),
        ("drop: station failed", LossCause::StationFailed),
        ("drop: unroutable", LossCause::Unroutable),
        ("drop: retries exhausted", LossCause::RetriesExhausted),
    ] {
        let book = |m: &Metrics| {
            if label.starts_with("lost") {
                m.losses.get(&cause).copied().unwrap_or(0)
            } else {
                m.drops.get(&cause).copied().unwrap_or(0)
            }
        };
        row(label, &|m| book(m).to_string());
    }
    row("retransmissions", &|m| m.retransmissions.to_string());
    row("route repairs", &|m| m.route_repairs.to_string());
    row("faults injected", &|m| m.faults_injected.to_string());
    row("stations recovered", &|m| m.stations_recovered.to_string());
    row("neighbors evicted", &|m| m.neighbors_evicted.to_string());
    row("neighbors readmitted", &|m| {
        m.neighbors_readmitted.to_string()
    });
    row("time-to-detect ms", &|m| {
        if m.time_to_detect.count() == 0 {
            "-".into()
        } else {
            format!("{:.0}", m.time_to_detect.mean() * 1e3)
        }
    });
    row("time-to-heal ms", &|m| {
        if m.time_to_heal.count() == 0 {
            "-".into()
        } else {
            format!("{:.0}", m.time_to_heal.mean() * 1e3)
        }
    });
    row("route updates sent", &|m| m.route_updates_sent.to_string());
    row("convergence episodes", &|m| {
        m.converged_at.count().to_string()
    });

    // Acceptance for the distance-vector arm: healing must be genuine —
    // no global recompute ever fires, reconvergence episodes close, and
    // the measured heal time is nonzero and repeats bit-for-bit under
    // the same seed.
    assert_eq!(
        dist.route_repairs,
        0,
        "distributed arm fell back to rebuild_routes: {}",
        dist.summary()
    );
    assert!(dist.route_updates_sent > 0 && dist.route_updates_received > 0);
    assert!(
        dist.converged_at.count() > 0,
        "no convergence episode closed: {}",
        dist.summary()
    );
    assert!(
        dist.time_to_heal.count() > 0 && dist.time_to_heal.mean() > 0.0,
        "distributed arm sampled no heals: {}",
        dist.summary()
    );
    {
        let mut c = cfg.clone();
        c.heal = HealConfig::local();
        c.route_mode = RouteMode::Distributed;
        c.faults = churn.clone();
        parn_sim::obs::reset();
        let again = Network::run(c);
        assert_eq!(dist.delivered, again.delivered);
        assert_eq!(dist.route_updates_sent, again.route_updates_sent);
        assert_eq!(dist.time_to_heal.count(), again.time_to_heal.count());
        assert!((dist.time_to_heal.mean() - again.time_to_heal.mean()).abs() < 1e-12);
    }

    // Acceptance: the local detector must come within 10 points of the
    // oracle's delivery rate under the same churn.
    let gap = 100.0 * (oracle.delivery_rate() - local.delivery_rate());
    println!("\noracle-vs-local delivery gap: {gap:.1} points");
    assert!(
        gap < 10.0,
        "local healing too far behind oracle: {gap:.1} points"
    );
    assert!(oracle.time_to_heal.count() > 0, "oracle sampled no heals");
    assert!(
        local.time_to_detect.count() > 0,
        "local detector never fired"
    );
    assert!(local.time_to_heal.count() > 0, "local sampled no heals");
    assert!(local.neighbors_evicted > 0 && local.neighbors_readmitted > 0);
    assert!(
        oracle.losses.get(&LossCause::Jammed).copied().unwrap_or(0) > 0,
        "jammer window cost nothing"
    );

    // Crash-count sweep: permanent failures, all three repair paths.
    println!("\ncrash sweep (permanent failures, delivery rate):");
    println!(
        "{:>4} {:>10} {:>10} {:>12}",
        "k", "oracle", "local", "distributed"
    );
    for k in [2usize, 4, 8] {
        let plan = FaultPlan::crashes(
            victims
                .iter()
                .take(k)
                .enumerate()
                .map(|(i, &s)| (Duration::from_secs(6 + (12 * i as u64) / k as u64), s)),
        );
        let mo = run_with(
            &reporter,
            &cfg,
            HealConfig::oracle(),
            RouteMode::Centralized,
            plan.clone(),
            &format!("crash-{k}-oracle"),
        );
        let ml = run_with(
            &reporter,
            &cfg,
            HealConfig::local(),
            RouteMode::Centralized,
            plan.clone(),
            &format!("crash-{k}-local"),
        );
        let md = run_with(
            &reporter,
            &cfg,
            HealConfig::local(),
            RouteMode::Distributed,
            plan,
            &format!("crash-{k}-distributed"),
        );
        println!(
            "{:>4} {:>9.1}% {:>9.1}% {:>11.1}%",
            k,
            100.0 * mo.delivery_rate(),
            100.0 * ml.delivery_rate(),
            100.0 * md.delivery_rate()
        );
        assert!(
            ml.delivered as f64 > 0.6 * baseline.delivered as f64,
            "k={k} local healing collapsed: {} vs {}",
            ml.delivered,
            baseline.delivered
        );
        assert_eq!(md.route_repairs, 0, "k={k}: {}", md.summary());
        assert!(
            md.delivered as f64 > 0.6 * baseline.delivered as f64,
            "k={k} distributed healing collapsed: {} vs {}",
            md.delivered,
            baseline.delivered
        );
    }

    println!("\nE4: network heals around churn in all three modes, losses fully accounted. OK");
}
