//! Figure 3 / §6.2 — minimum-energy routing geometry.
//!
//! Checks on random uniform-disk placements (100 and 1000 stations):
//!
//! 1. the diameter-circle property: no computed route ever takes a hop
//!    directly when a relay strictly inside the hop's diameter circle
//!    exists;
//! 2. relaying saves energy vs direct transmission (a centered relay
//!    halves it);
//! 3. the paper's observation that "the number of routing neighbors never
//!    exceeded eight";
//! 4. centralized Dijkstra and the distributed asynchronous Bellman–Ford
//!    agree.

use parn_bench::report::{Reporter, Run};
use parn_phys::placement::{density, Placement};
use parn_phys::propagation::FreeSpace;
use parn_phys::{Gain, GainMatrix};
use parn_route::relay::{find_skipped_relay, route_geometry};
use parn_route::{EnergyGraph, RouteTable};
use parn_sim::json::obj;
use parn_sim::Rng;

fn run_size(reporter: &Reporter, n: usize, seed: u64) {
    parn_sim::obs::reset();
    let started = std::time::Instant::now();
    let mut rng = Rng::new(seed);
    let placement = Placement::UniformDisk {
        n,
        radius: (n as f64 / (std::f64::consts::PI * 0.01)).sqrt(),
    };
    let pos = placement.generate(&mut rng);
    let gm = GainMatrix::build(&pos, &FreeSpace::unit());
    let rho = density(&pos, &placement.region());
    // Usable hops: twice the characteristic distance (§6).
    let reach = 2.0 / rho.sqrt();
    let usable = Gain(1.0 / (reach * reach));
    let graph = EnergyGraph::from_gains(&gm, usable);
    let table = RouteTable::centralized(&graph);

    let connected = table.fully_connected();
    let geom = route_geometry(&table, &pos);
    let max_deg = table.max_routing_degree();
    let mean_deg: f64 = (0..n)
        .map(|s| table.routing_neighbors(s).len() as f64)
        .sum::<f64>()
        / n as f64;

    // Relay-circle property restricted to *usable* relays (stations the
    // sender can actually reach): slack 1e-9 for numerics.
    let skipped = find_skipped_relay(&table, &pos, 1.0, 1e-9);

    println!("## n = {n} (seed {seed})");
    println!("  fully connected:        {connected}");
    println!(
        "  mean / max hops:        {:.2} / {}",
        geom.mean_hops, geom.max_hops
    );
    println!(
        "  mean energy saving:     {:.2}x vs direct (multi-hop pairs)",
        geom.mean_energy_saving
    );
    println!("  routing neighbours:     mean {mean_deg:.2}, max {max_deg}");
    match &skipped {
        None => println!("  relay-circle property:  holds on every hop of every route"),
        Some(v) => println!("  relay-circle property:  VIOLATED {v:?}"),
    }
    assert!(
        skipped.is_none(),
        "a min-energy route skipped a cheaper relay"
    );
    assert!(
        max_deg <= 8,
        "paper's observation violated: max routing degree {max_deg}"
    );
    assert!(geom.mean_energy_saving >= 1.0);

    // Distributed = centralized (on the smaller instance; O(n³)-ish work).
    if n <= 150 {
        let distributed = RouteTable::distributed(&graph, &mut rng);
        let mut worst = 0.0f64;
        for s in 0..n {
            for d in 0..n {
                let (a, b) = (table.cost(s, d), distributed.cost(s, d));
                if a.is_finite() && b.is_finite() {
                    worst = worst.max((a - b).abs() / (1.0 + a.abs()));
                } else {
                    assert_eq!(a.is_finite(), b.is_finite(), "reachability differs");
                }
            }
        }
        println!("  distributed BF agrees:  worst relative cost gap {worst:.2e}");
        assert!(worst < 1e-9);
    }
    reporter.record(&Run {
        label: format!("n={n} seed={seed}"),
        config: obj([("n", n.into()), ("seed", seed.into())]),
        metrics: obj([
            ("fully_connected", connected.into()),
            ("mean_hops", geom.mean_hops.into()),
            ("max_hops", (geom.max_hops as u64).into()),
            ("mean_energy_saving", geom.mean_energy_saving.into()),
            ("mean_routing_degree", mean_deg.into()),
            ("max_routing_degree", (max_deg as u64).into()),
            ("relay_circle_holds", skipped.is_none().into()),
        ]),
        wall_s: started.elapsed().as_secs_f64(),
    });
    println!();
}

fn main() {
    println!("# Figure 3 / Sec 6.2: minimum-energy routing geometry\n");
    let reporter = Reporter::create("fig3_min_energy_routing");
    // The paper's simulated sizes: 100 and 1000 stations.
    for (n, seed) in [(100, 1u64), (100, 2), (100, 3), (1000, 4)] {
        run_size(&reporter, n, seed);
    }
    println!("figure 3 / Sec 6.2 reproduced: OK");
}
