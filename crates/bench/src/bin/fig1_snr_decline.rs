//! Figure 1 — decline of signal-to-noise ratio as the system scales.
//!
//! Regenerates the paper's family of curves: SNR (dB) of a
//! characteristic-distance neighbour vs log10(station count), one curve
//! per duty cycle η ∈ {0.05, 0.1, 0.2, 0.5, 1}. The analytic curves are
//! Eq. 15 (`S/N = 1/(π·η·ln M)`); a Monte-Carlo column cross-checks the
//! closed form against actual random uniform-disk placements with every
//! station transmitting at unit power with probability η.
//!
//! Paper anchors: ≈ −20 dB at M = 10¹², η = 1; η = 0.25 sits 6 dB above
//! η = 1 everywhere.

use parn_bench::report::{timed, Reporter, Run};
use parn_phys::noise::{exclusion_radius, figure1, snr_vs_scale, snr_vs_scale_db};
use parn_phys::placement::Placement;
use parn_phys::Point;
use parn_sim::json::obj;
use parn_sim::Rng;

/// Monte-Carlo estimate of the SNR at the disk center: `m` stations in a
/// disk, duty cycle `eta`, signal from a neighbour at the characteristic
/// distance `1/√ρ`, interferers outside the exclusion radius `1/(2√ρ)`.
fn monte_carlo_snr(m: usize, eta: f64, trials: usize, rng: &mut Rng) -> f64 {
    let rho = 0.01; // scale-free: any density gives the same answer
    let radius = (m as f64 / (std::f64::consts::PI * rho)).sqrt();
    let d_sig = 1.0 / rho.sqrt();
    let r0 = exclusion_radius(rho);
    let signal = 1.0 / (d_sig * d_sig);
    let mut snr_sum = 0.0;
    for _ in 0..trials {
        let placement = Placement::UniformDisk { n: m, radius };
        let pts = placement.generate(rng);
        let mut interference = 0.0;
        for p in &pts {
            let r = p.distance(Point::ORIGIN).max(1.0);
            if r < r0 {
                continue; // local sources are managed by the scheme, §4 fn.7
            }
            if rng.chance(eta) {
                interference += 1.0 / (r * r);
            }
        }
        if interference > 0.0 {
            snr_sum += signal / interference;
        }
    }
    snr_sum / trials as f64
}

fn main() {
    let etas = [0.05, 0.1, 0.2, 0.5, 1.0];
    println!("# Figure 1: SNR vs number of stations (analytic, Eq. 15)");
    println!(
        "{:>8} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "log10 M", "eta=0.05", "0.1", "0.2", "0.5", "1.0"
    );
    for row in figure1(&etas, 1, 12) {
        let cells: Vec<String> = row.snr_db.iter().map(|db| format!("{:>8.2}", db)).collect();
        println!("{:>8} | {}", row.log10_m as u32, cells.join("  "));
    }

    // Anchors from the paper's prose.
    let a1 = snr_vs_scale_db(1.0, 1e12);
    let a2 = snr_vs_scale_db(0.25, 1e12) - snr_vs_scale_db(1.0, 1e12);
    println!("\n# anchors");
    println!("  eta=1, M=1e12: {a1:.1} dB   (paper: approaching -20 dB)");
    println!("  eta=0.25 vs eta=1: +{a2:.1} dB (paper: +6 dB)");

    println!("\n# Monte-Carlo cross-check (random placements, unit powers)");
    println!(
        "{:>8} {:>6} | {:>12} {:>12} {:>8}",
        "M", "eta", "analytic dB", "measured dB", "diff"
    );
    let mut rng = Rng::new(0xF16);
    let mut worst: f64 = 0.0;
    parn_sim::obs::reset();
    let mut rows: Vec<(String, parn_sim::Json)> = Vec::new();
    let ((), wall_s) = timed(|| {
        for &m in &[1_000usize, 10_000, 100_000] {
            for &eta in &[0.2, 0.5, 1.0] {
                let analytic = snr_vs_scale(eta, m as f64);
                let measured = monte_carlo_snr(m, eta, 8, &mut rng);
                let a_db = 10.0 * analytic.log10();
                let m_db = 10.0 * measured.log10();
                worst = worst.max((a_db - m_db).abs());
                rows.push((
                    format!("m={m} eta={eta}"),
                    obj([("analytic_db", a_db.into()), ("measured_db", m_db.into())]),
                ));
                println!(
                    "{:>8} {:>6} | {:>12.2} {:>12.2} {:>7.2}",
                    m,
                    eta,
                    a_db,
                    m_db,
                    (a_db - m_db).abs()
                );
            }
        }
    });
    Reporter::create("fig1_snr_decline").record(&Run {
        label: "eq15 vs monte-carlo".into(),
        config: obj([("seed", 0xF16u64.into()), ("trials_per_point", 8u64.into())]),
        metrics: obj([
            ("anchor_eta1_m1e12_db", a1.into()),
            ("anchor_eta025_gain_db", a2.into()),
            ("worst_gap_db", worst.into()),
            ("points", parn_sim::Json::Obj(rows)),
        ]),
        wall_s,
    });
    println!("\nworst analytic-vs-measured gap: {worst:.2} dB");
    assert!(
        worst < 2.0,
        "Monte-Carlo diverged from Eq. 15 by more than 2 dB"
    );
    println!("figure 1 reproduced: OK");
}
