//! A1 — ablations of the §6 design choices: power control and processing
//! gain.
//!
//! 1. **Power control on/off.** With §6.1 control every hop delivers the
//!    same power; without it (fixed transmit power sized for the longest
//!    usable hop) nearby receivers are blasted far above necessity,
//!    raising everyone's interference floor. The expected shape: SINR
//!    margins tighten or collapse, and collision losses can appear.
//! 2. **Processing gain sweep.** The paper budgets 20–25 dB. Sweeping the
//!    spread ratio W/C shows the cliff: with too little gain the scheme's
//!    schedules alone cannot protect receptions from the din of parallel
//!    transmissions.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{NetConfig, Network};
use parn_phys::{PowerW, ReceptionCriterion};
use parn_sim::Duration;

fn run_recorded(reporter: &Reporter, label: String, cfg: NetConfig) -> parn_core::Metrics {
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label,
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    m
}

fn base(n: usize, seed: u64) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, seed);
    cfg.traffic.arrivals_per_station_per_sec = 4.0;
    cfg.run_for = Duration::from_secs(12);
    cfg.warmup = Duration::from_secs(2);
    cfg
}

fn main() {
    println!("# A1: power control and processing gain ablations\n");

    println!("## power control (100 stations, 4 pkt/s)");
    println!(
        "{:<22} {:>11} {:>11} {:>13} {:>13}",
        "policy", "hop succ%", "collisions", "margin mean", "margin worst"
    );
    let reporter = Reporter::create("abl_power_gain");
    let full = run_recorded(&reporter, "full scheme".into(), base(100, 21));
    // Isolate power control from the §7.3 rule: compare controlled vs
    // fixed with protection disabled in both. (With protection left on, a
    // fixed-power network freezes solid: every station becomes a protected
    // neighbour of every other and no window survives — §7.3 doing its
    // job, but uninformative here.)
    let mut cfg_ctl = base(100, 21);
    cfg_ctl.protection.enabled = false;
    let ctl = run_recorded(&reporter, "controlled no-7.3".into(), cfg_ctl);
    // Fixed power sized to reach the longest usable hop (2/sqrt(rho) =
    // 200 m at the default density): P = target * d^2.
    let mut cfg_off = base(100, 21);
    cfg_off.protection.enabled = false;
    cfg_off.fixed_power = Some(PowerW(1e-6 * 200.0f64 * 200.0));
    let off = run_recorded(&reporter, "fixed no-7.3".into(), cfg_off);
    for (name, m) in [
        ("full scheme", &full),
        ("controlled, no 7.3", &ctl),
        ("fixed, no 7.3", &off),
    ] {
        println!(
            "{:<22} {:>10.2}% {:>11} {:>11.1}dB {:>11.1}dB",
            name,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            m.sinr_margin_db.mean(),
            m.sinr_margin_db.min()
        );
        assert!(m.delivered > 0, "{name}: nothing delivered");
    }
    assert_eq!(full.collision_losses(), 0);
    // Fixed power must measurably tighten the worst-case margin (or lose
    // packets outright).
    assert!(
        off.sinr_margin_db.min() < ctl.sinr_margin_db.min() - 1.0 || off.collision_losses() > 0,
        "removing power control had no effect: ctl {:.1} dB vs fixed {:.1} dB",
        ctl.sinr_margin_db.min(),
        off.sinr_margin_db.min()
    );

    println!("\n## processing gain sweep (60 stations, 4 pkt/s)");
    println!(
        "{:<12} {:>12} {:>11} {:>11} {:>13}",
        "gain (dB)", "threshold dB", "hop succ%", "losses", "margin worst"
    );
    let mut losses_at = Vec::new();
    for &pg_db in &[6.0, 8.0, 10.0, 13.0, 16.0, 20.0, 25.0] {
        let spread = 10f64.powf(pg_db / 10.0);
        let mut cfg = base(60, 22);
        cfg.criterion = ReceptionCriterion::with_5db_margin(1e5, 1e5 * spread);
        let th = cfg.sinr_threshold();
        let m = run_recorded(&reporter, format!("processing-gain db={pg_db}"), cfg);
        println!(
            "{:<12} {:>12.1} {:>10.2}% {:>11} {:>11.1}dB",
            pg_db,
            10.0 * th.log10(),
            100.0 * m.hop_success_rate(),
            m.total_losses(),
            m.sinr_margin_db.min()
        );
        losses_at.push((pg_db, m.total_losses(), m.hop_success_rate()));
    }
    // The paper's 20-25 dB regime must be clean; a much smaller spread
    // must degrade (losses of any cause, or reduced hop success).
    let at20 = losses_at.iter().find(|(g, _, _)| *g == 20.0).unwrap();
    let low = losses_at.iter().find(|(g, _, _)| *g <= 8.0).unwrap();
    assert_eq!(at20.1, 0, "20 dB regime should be loss-free");
    assert!(
        low.1 > 0 || low.2 < at20.2,
        "{} dB of gain should visibly degrade the scheme",
        low.0
    );
    println!("\nA1 reproduced: OK");
}
