//! Figure 2 / §5 — the three collision types, demonstrated and eliminated.
//!
//! Three constructed micro-topologies each provoke exactly one collision
//! type under a naive transmit-on-arrival MAC (pure ALOHA), and the
//! classifier attributes them correctly. The same traffic pattern run
//! under the Shepard scheme produces zero collisions of any type; a
//! random 60-station scenario repeats the contrast at scale.

use parn_baseline::{Aloha, BaselineConfig, MacKind, Scenario};
use parn_bench::report::{timed, Reporter, Run};
use parn_core::{classify, DestPolicy, LossCause, NetConfig, Network};
use parn_phys::propagation::FreeSpace;
use parn_phys::sinr::SinrTracker;
use parn_phys::{GainMatrix, Point, PowerW};
use parn_sim::Duration;
use std::sync::Arc;

/// Drive the SINR tracker directly through each Figure 2 vignette and
/// report the classified type.
fn vignette(name: &str, f: impl FnOnce(&mut SinrTracker) -> Vec<parn_phys::ReceptionReport>) {
    // A 4-station square, 20 m side: all mutually audible.
    let pos = vec![
        Point::new(0.0, 0.0),
        Point::new(20.0, 0.0),
        Point::new(0.0, 20.0),
        Point::new(20.0, 20.0),
    ];
    let gm = GainMatrix::build(&pos, &FreeSpace::unit());
    let mut tracker = SinrTracker::new(Arc::new(gm), PowerW(1e-12), 1e12);
    let reports = f(&mut tracker);
    for rep in reports {
        if rep.success {
            println!("  {name}: reception {}->{} succeeded", rep.src, rep.rx);
        } else {
            let (kinds, cause) = classify(&rep);
            println!(
                "  {name}: reception {}->{} FAILED, classified {:?} (kinds t1={} t2={} t3={})",
                rep.src, rep.rx, cause, kinds.type1, kinds.type2, kinds.type3
            );
        }
    }
}

fn main() {
    // Tight threshold so equal-power interference is fatal, as in the
    // narrowband systems the taxonomy was coined for.
    let theta = 2.0;

    println!("# Figure 2 vignettes under a naive MAC (threshold {theta}, no spreading)\n");

    vignette("type-1", |t| {
        // 0 -> 1 while unrelated 2 -> 3 transmits nearby.
        let a = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, a, theta);
        let b = t.start_transmission(2, PowerW(1.0), Some(3));
        let rep = t.complete_reception(rx);
        t.end_transmission(a);
        t.end_transmission(b);
        let (_, cause) = classify(&rep);
        assert_eq!(cause, LossCause::CollisionType1);
        vec![rep]
    });

    vignette("type-2", |t| {
        // 0 -> 1 and 3 -> 1 simultaneously.
        let a = t.start_transmission(0, PowerW(1.0), Some(1));
        let b = t.start_transmission(3, PowerW(1.0), Some(1));
        let rx_a = t.begin_reception(1, a, theta);
        let rx_b = t.begin_reception(1, b, theta);
        let rep_a = t.complete_reception(rx_a);
        let rep_b = t.complete_reception(rx_b);
        t.end_transmission(a);
        t.end_transmission(b);
        assert_eq!(classify(&rep_a).1, LossCause::CollisionType2);
        assert_eq!(classify(&rep_b).1, LossCause::CollisionType2);
        vec![rep_a, rep_b]
    });

    vignette("type-3", |t| {
        // 0 -> 1 while 1 itself transmits to 2.
        let a = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, a, theta);
        let own = t.start_transmission(1, PowerW(1.0), Some(2));
        let rep = t.complete_reception(rx);
        t.end_transmission(a);
        t.end_transmission(own);
        assert_eq!(classify(&rep).1, LossCause::CollisionType3);
        vec![rep]
    });

    // At-scale contrast: the same offered load through ALOHA and through
    // the scheme.
    println!("\n# 60 stations, 8 pkt/s each, single-hop neighbour traffic\n");
    let n = 60;
    let rate = 8.0;
    let seed = 2;

    let mut bc = BaselineConfig::matched(n, seed, MacKind::PureAloha);
    bc.arrivals_per_station_per_sec = rate;
    bc.run_for = Duration::from_secs(12);
    bc.warmup = Duration::from_secs(2);
    // Narrowband radios (no processing gain): the regime the classic
    // taxonomy describes — any comparable-power overlap is fatal.
    bc.criterion = parn_phys::ReceptionCriterion {
        rate_bps: 1e6,
        bandwidth_hz: 1e6,
        margin: 2.0,
    };
    let reporter = Reporter::create("fig2_collision_types");
    parn_sim::obs::reset();
    let bc_json = bc.to_json();
    let (naive, naive_wall) = timed(|| Aloha::run(Scenario::new(bc)));
    reporter.record(&Run {
        label: format!("rate={rate} mac=naive-aloha narrowband"),
        config: bc_json,
        metrics: naive.to_json(),
        wall_s: naive_wall,
    });

    let mut cfg = NetConfig::paper_default(n, seed);
    cfg.traffic.arrivals_per_station_per_sec = rate;
    cfg.traffic.dest = DestPolicy::Neighbors;
    cfg.run_for = Duration::from_secs(12);
    cfg.warmup = Duration::from_secs(2);
    parn_sim::obs::reset();
    let (scheme, scheme_wall) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: format!("rate={rate} mac=shepard"),
        config: cfg.to_json(),
        metrics: scheme.to_json(),
        wall_s: scheme_wall,
    });

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>11}",
        "MAC", "type 1", "type 2", "type 3", "total", "hop succ %"
    );
    for (name, m) in [("naive", &naive), ("shepard", &scheme)] {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>10.2}%",
            name,
            m.losses.get(&LossCause::CollisionType1).unwrap_or(&0),
            m.losses.get(&LossCause::CollisionType2).unwrap_or(&0),
            m.losses.get(&LossCause::CollisionType3).unwrap_or(&0),
            m.collision_losses(),
            100.0 * m.hop_success_rate()
        );
    }
    assert!(naive.collision_losses() > 0, "naive MAC should collide");
    assert_eq!(
        scheme.collision_losses(),
        0,
        "scheme must be collision-free"
    );
    println!("\nfigure 2 reproduced: naive MAC exhibits all three types; the scheme none. OK");
}
