//! A2 — robustness to clock drift and stale schedules (§7's maintenance
//! machinery under stress).
//!
//! The scheme's correctness rests on senders *predicting* receivers'
//! schedules through fitted clock models. Two knobs stress that:
//!
//! * **drift sweep** — raising quartz error (ppm) with everything else
//!   fixed; the two-sample model captures rate, so even large drift should
//!   stay collision-free while the guard band covers the residual;
//! * **resync starvation** — disabling periodic re-synchronization while
//!   clocks drift; with a one-sample model (rate unknown) predictions
//!   decay and transmissions eventually leak outside receive windows. The
//!   scheme must degrade *visibly and accountably* (schedule violations /
//!   Type-3 losses), never silently.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{NetConfig, Network, SyncMode};
use parn_sim::Duration;

fn run_recorded(reporter: &Reporter, label: String, cfg: NetConfig) -> parn_core::Metrics {
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label,
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    m
}

fn base(seed: u64) -> NetConfig {
    let mut cfg = NetConfig::paper_default(60, seed);
    cfg.traffic.arrivals_per_station_per_sec = 3.0;
    cfg.run_for = Duration::from_secs(15);
    cfg.warmup = Duration::from_secs(2);
    cfg
}

fn main() {
    println!("# A2: clock drift and schedule staleness\n");
    let reporter = Reporter::create("abl_clock_drift");

    println!("## drift sweep (resync every 5 s, 200 us guard)");
    println!(
        "{:<10} {:>11} {:>11} {:>12} {:>11}",
        "max ppm", "hop succ%", "collisions", "violations", "delivered"
    );
    for &ppm in &[0.0, 20.0, 50.0, 100.0, 200.0] {
        let mut cfg = base(41);
        cfg.clock.max_ppm = ppm;
        let m = run_recorded(&reporter, format!("drift ppm={ppm}"), cfg);
        println!(
            "{:<10} {:>10.2}% {:>11} {:>12} {:>11}",
            ppm,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            m.schedule_violations,
            m.delivered
        );
        assert_eq!(
            m.collision_losses(),
            0,
            "drift {ppm} ppm broke the scheme despite resync"
        );
        assert_eq!(m.schedule_violations, 0);
    }

    println!("\n## resync starvation (100 ppm drift, one initial sample only)");
    println!(
        "{:<16} {:>11} {:>11} {:>12} {:>10}",
        "resync every", "hop succ%", "collisions", "violations", "guard us"
    );
    let mut degraded = false;
    for &(starved, guard_us) in &[(false, 200u64), (true, 200), (true, 4000)] {
        let mut cfg = base(43);
        cfg.clock.max_ppm = 100.0;
        if starved {
            cfg.clock.sync = SyncMode::None;
        }
        cfg.clock.guard = Duration::from_micros(guard_us);
        let label = if starved { "never" } else { "5 s" };
        let m = run_recorded(
            &reporter,
            format!("resync={label} guard_us={guard_us}"),
            cfg,
        );
        println!(
            "{:<16} {:>10.2}% {:>11} {:>12} {:>10}",
            label,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            m.schedule_violations,
            guard_us
        );
        if starved && guard_us == 200 && m.schedule_violations > 0 {
            degraded = true;
        }
        if !starved {
            assert_eq!(m.collision_losses(), 0);
        }
        if starved && guard_us == 4000 {
            // A generous guard covers 15 s of worst-case pairwise drift
            // (two clocks at opposite ±100 ppm extremes: 3 ms).
            assert_eq!(m.schedule_violations, 0, "guard failed to cover drift");
        }
    }
    println!(
        "\nstarved predictions leak outside receive windows: {}",
        if degraded {
            "yes (visible, accounted)"
        } else {
            "no (guard still covered residual drift at this horizon)"
        }
    );
    assert!(
        degraded,
        "starving resync with a one-sample model should eventually leak"
    );

    println!("\n## guard-band sweep (100 ppm, resync 5 s)");
    println!(
        "{:<10} {:>11} {:>11} {:>12}",
        "guard us", "hop succ%", "collisions", "violations"
    );
    for &g in &[0u64, 50, 200, 1000] {
        let mut cfg = base(47);
        cfg.clock.max_ppm = 100.0;
        cfg.clock.guard = Duration::from_micros(g);
        let m = run_recorded(&reporter, format!("guard-sweep guard_us={g}"), cfg);
        println!(
            "{:<10} {:>10.2}% {:>11} {:>12}",
            g,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            m.schedule_violations
        );
    }
    println!("\nA2 reproduced: OK");
}
