//! E8 — adversarial fault model: graceful degradation and reconvergence.
//!
//! The paper's deployment story (stations "purchased and installed by the
//! users", nobody in charge) invites adversaries, not just failures. This
//! harness drives the three adversarial fault kinds through all three
//! repair paths (oracle / local / distributed) and shows the scheme's
//! failure mode is *graceful*:
//!
//! * a **budget-limited reactive jammer** parked on the busiest relay
//!   degrades delivery monotonically with its energy budget — no cliff —
//!   and every loss it causes is attributed (`Jammed`), never mislabelled
//!   as a protocol collision;
//! * a **partition** (shadowing transient across a geographic cut) severs
//!   the network without killing a single station, and both local healing
//!   and the distance-vector exchange reconverge after the cut lifts;
//! * a **Byzantine station** — transmitting outside its published windows
//!   or advertising poisoned routes — is detected (`Violation` losses,
//!   rejected advertisements) rather than silently eroding the scheme.
//!
//! `--smoke` shrinks the sweep for CI.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{
    ByzMode, CutAxis, FaultPlan, HealConfig, LossCause, Metrics, NetConfig, Network, RouteMode,
};
use parn_sim::Duration;

#[derive(Clone)]
struct Arm {
    name: &'static str,
    route: RouteMode,
    local_heal: bool,
}

const ARMS: [Arm; 3] = [
    Arm {
        name: "oracle",
        route: RouteMode::Centralized,
        local_heal: false,
    },
    Arm {
        name: "local",
        route: RouteMode::Centralized,
        local_heal: true,
    },
    Arm {
        name: "distributed",
        route: RouteMode::Distributed,
        local_heal: true,
    },
];

fn run_with(
    reporter: &Reporter,
    cfg: &NetConfig,
    arm: &Arm,
    plan: FaultPlan,
    label: &str,
    allow_collisions: bool,
) -> Metrics {
    let mut c = cfg.clone();
    c.heal = if arm.local_heal {
        HealConfig::local()
    } else {
        HealConfig::oracle()
    };
    c.route_mode = arm.route.clone();
    c.faults = plan;
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(c.clone()));
    reporter.record(&Run {
        label: label.into(),
        config: c.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    assert!(m.conservation_holds(), "{label}: {}", m.summary());
    assert_eq!(
        m.hop_attempts,
        m.hop_successes + m.total_losses(),
        "{label} hop ledger broke: {}",
        m.summary()
    );
    if !allow_collisions {
        // A static gain field keeps the headline guarantee even under
        // jamming and Byzantine emissions (their losses are attributed
        // outside the §5 taxonomy). Partition arms are exempt: a gain
        // transient legitimately breaks assumptions transmissions in
        // flight were planned under.
        assert_eq!(
            m.collision_losses(),
            0,
            "{label} broke collision-freedom: {}",
            m.summary()
        );
    }
    m
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# E8: adversarial faults — jammer budget, partitions, Byzantine stations\n");

    let n = if smoke { 40 } else { 80 };
    let secs = if smoke { 12 } else { 20 };
    let mut cfg = NetConfig::paper_default(n, 17);
    cfg.traffic.arrivals_per_station_per_sec = 2.0;
    cfg.run_for = Duration::from_secs(secs);
    cfg.warmup = Duration::from_secs(2);

    let reporter = Reporter::create("adversary");

    parn_sim::obs::reset();
    let probe = Network::new(cfg.clone());
    let deps = probe.routing_dependent_counts();
    let anchor = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
    println!(
        "jammer/Byzantine anchor: busiest relay {anchor} ({} dependents)\n",
        deps[anchor]
    );

    // ---- Sweep 1: reactive-jammer energy budget vs delivery. ----------
    let budgets: &[f64] = if smoke {
        &[0.0, 0.5, 2.0]
    } else {
        &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0]
    };
    let duty = 0.6;
    let jam_at = Duration::from_secs(secs / 4);
    println!("reactive jammer at relay {anchor} (duty cap {duty}):");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "budget s", "oracle", "local", "distributed", "jams (local)"
    );
    let mut sweep: Vec<Vec<Metrics>> = vec![Vec::new(); ARMS.len()];
    for &b in budgets {
        let plan = if b > 0.0 {
            FaultPlan::none().reactive_jam(jam_at, anchor, Duration::from_secs_f64(b), duty)
        } else {
            FaultPlan::none()
        };
        let mut row: Vec<Metrics> = Vec::new();
        for (k, arm) in ARMS.iter().enumerate() {
            let label = format!("jam-b{b:.2}-{}", arm.name);
            let m = run_with(&reporter, &cfg, arm, plan.clone(), &label, false);
            if b > 0.0 {
                assert!(
                    m.jam_budget_spent_s <= b + 1e-9,
                    "{label} overspent its budget: {} > {b}",
                    m.jam_budget_spent_s
                );
            } else {
                assert_eq!(m.reactive_jams, 0);
            }
            sweep[k].push(m.clone());
            row.push(m);
        }
        println!(
            "{:>10.2} {:>11.1}% {:>11.1}% {:>11.1}% {:>14}",
            b,
            100.0 * row[0].delivery_rate(),
            100.0 * row[1].delivery_rate(),
            100.0 * row[2].delivery_rate(),
            row[1].reactive_jams,
        );
    }
    // Headline: graceful degradation. More adversary energy never *helps*
    // (small tolerance: healing dynamics shuffle a fraction of a point),
    // and the largest budget visibly costs delivery in every arm.
    for (k, arm) in ARMS.iter().enumerate() {
        let rates: Vec<f64> = sweep[k].iter().map(Metrics::delivery_rate).collect();
        for w in rates.windows(2) {
            assert!(
                w[1] <= w[0] + 0.02,
                "{}: delivery not monotone in jammer budget: {:?}",
                arm.name,
                rates
            );
        }
        assert!(
            rates[rates.len() - 1] < rates[0],
            "{}: max-budget jammer cost nothing: {:?}",
            arm.name,
            rates
        );
        let last = &sweep[k][rates.len() - 1];
        assert!(
            last.losses.get(&LossCause::Jammed).copied().unwrap_or(0) > 0,
            "{}: jam bursts caused no attributed losses",
            arm.name
        );
    }

    // ---- Sweep 2: partition sever + heal, reconvergence. --------------
    let cut_at = Duration::from_secs(secs / 4);
    let cut_for = Duration::from_secs(secs / 4);
    let plan = FaultPlan::none().partition(cut_at, CutAxis::Vertical, 0.0, 40.0, cut_for);
    println!(
        "\npartition: vertical 40 dB cut at {}s for {}s:",
        secs / 4,
        secs / 4
    );
    println!(
        "{:>12} {:>10} {:>8} {:>12} {:>14}",
        "arm", "delivery", "healed", "evictions", "converged"
    );
    for arm in &ARMS {
        let label = format!("partition-{}", arm.name);
        let m = run_with(&reporter, &cfg, arm, plan.clone(), &label, true);
        assert_eq!(m.partitions_healed, 1, "{label}: {}", m.summary());
        assert_eq!(m.stations_recovered, 0, "partition must not kill stations");
        if matches!(arm.route, RouteMode::Distributed) {
            // Reconvergence after the heal is the distance-vector
            // protocol's own achievement — no global recompute fires.
            assert_eq!(m.route_repairs, 0, "{label}: {}", m.summary());
            assert!(
                m.converged_at.count() > 0,
                "{label} never reconverged: {}",
                m.summary()
            );
        }
        println!(
            "{:>12} {:>9.1}% {:>8} {:>12} {:>14}",
            arm.name,
            100.0 * m.delivery_rate(),
            m.partitions_healed,
            m.neighbors_evicted,
            m.converged_at.count(),
        );
    }

    // ---- Sweep 3: Byzantine stations. ---------------------------------
    let byz_at = Duration::from_secs(secs / 4);
    let byz_for = Duration::from_secs(secs / 4);
    println!("\nByzantine relay {anchor} for {}s:", secs / 4);
    let violator = FaultPlan::none().byzantine(byz_at, anchor, ByzMode::Violator, byz_for);
    let mv = run_with(
        &reporter,
        &cfg,
        &ARMS[1],
        violator,
        "byzantine-violator-local",
        false,
    );
    let v_losses = mv.losses.get(&LossCause::Violation).copied().unwrap_or(0);
    assert!(
        v_losses > 0 && mv.violations_detected > 0,
        "violator went unnoticed: {}",
        mv.summary()
    );
    println!(
        "  violator: {v_losses} Violation losses, delivery {:.1}%",
        100.0 * mv.delivery_rate()
    );

    let poisoner = FaultPlan::none().byzantine(byz_at, anchor, ByzMode::Poisoner, byz_for);
    let mp = run_with(
        &reporter,
        &cfg,
        &ARMS[2],
        poisoner,
        "byzantine-poisoner-distributed",
        false,
    );
    assert!(
        mp.violations_detected > 0,
        "no poisoned advertisements rejected: {}",
        mp.summary()
    );
    println!(
        "  poisoner: {} poisoned advertisements rejected, delivery {:.1}%",
        mp.violations_detected,
        100.0 * mp.delivery_rate()
    );

    println!(
        "\nE8: degradation is graceful and attributed; partitions heal; Byzantium is detected. OK"
    );
}
