//! E9 — dynamic topology: delivery and reconvergence under station
//! mobility and join/leave churn, at metro scale.
//!
//! Static-topology experiments validate the scheme's steady state; this
//! one measures what motion costs. Every station advances each epoch
//! (random-waypoint), a generated churn plan injects clean departures
//! and re-admissions, and the PHY relocates stations *incrementally* —
//! per-move grid rebucketing, per-station gain-cache epochs, and
//! scoped far-field invalidation, never a global cache rebuild. The
//! committed artifact proves that: the `phys.sinr.scoped_invalidations`
//! counter is nonzero while `phys.sinr.full_invalidations` (the
//! `gains_changed`-style global drop, reserved for partition overlays)
//! stays zero.
//!
//! Modes, mirroring `exp_scale`:
//!
//! * no args — driver: spawns `--one` subprocesses for the speed × churn
//!   sweep at n ∈ {10³, 10⁴, 10⁵} and collects `BENCH_mobility.json`;
//! * `--one <n> <speed_mps> <churn_events> [threads]` — one
//!   configuration, one artifact line;
//! * `--smoke` — the n=10³ corner of the sweep only;
//! * `--determinism <n>` — grid-far mobility runs at 1/2/8 sweep threads
//!   must produce byte-identical metrics JSON.
//!
//! Scale arms use the single-hop regime ([`DestPolicy::Neighbors`] +
//! [`RouteMode::OneHop`]) like E6; the n=10³ arms run the full
//! centralized table so per-epoch reroutes (`route_repairs`) are part of
//! what's measured.

use parn_bench::report::{peak_rss_kb, read_artifact, Reporter, Run};
use parn_core::{
    ChurnPlan, DestPolicy, FarFieldConfig, MobilityConfig, MobilityModel, NetConfig, Network,
    PhyBackend, RouteMode,
};
use parn_sim::{Duration, Json};
use std::time::Instant;

fn mobility_config(n: usize, speed: f64, churn_events: usize, threads: usize) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, 1996);
    cfg.threads = threads;
    cfg.run_for = Duration::from_secs(2);
    cfg.warmup = Duration::from_millis(500);
    cfg.traffic.arrivals_per_station_per_sec = 0.5;
    cfg.mobility = Some(MobilityConfig {
        model: MobilityModel::RandomWaypoint { speed },
        epoch: Duration::from_millis(200),
    });
    if churn_events > 0 {
        let radius = cfg.placement.region().radius;
        cfg.churn = ChurnPlan::generate(cfg.seed, n, churn_events, cfg.run_for, radius);
    }
    if n >= 10_000 {
        // Metro arms: spatial index + far-field aggregation, single-hop
        // regime (O(E) routing state, like E6).
        cfg.phy_backend = PhyBackend::Grid {
            far_field: Some(FarFieldConfig::default_for_paper()),
        };
        cfg.route_mode = RouteMode::OneHop;
        cfg.traffic.dest = DestPolicy::Neighbors;
    } else {
        // Small arms: exact grid backend, full centralized table — the
        // per-epoch oracle reroute is part of the measurement.
        cfg.phy_backend = PhyBackend::Grid { far_field: None };
    }
    cfg
}

fn run_one(n: usize, speed: f64, churn_events: usize, threads: usize) {
    let cfg = mobility_config(n, speed, churn_events, threads);
    parn_sim::obs::reset();
    let start = Instant::now();
    let m = Network::run(cfg.clone());
    let wall = start.elapsed().as_secs_f64();
    let rss_mb = peak_rss_kb().map_or(f64::NAN, |kb| kb as f64 / 1024.0);
    let threads_suffix = if threads > 1 {
        format!(" threads={threads}")
    } else {
        String::new()
    };
    let counters = parn_sim::obs::counters_snapshot();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|&&(cn, _)| cn == name)
            .map_or(0, |&(_, v)| v)
    };
    Reporter::append("mobility").record(&Run {
        label: format!("n={n} speed={speed} churn={churn_events}{threads_suffix}"),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s: wall,
    });
    assert!(
        m.station_moves > 0,
        "mobility run without moves at n={n}: {}",
        m.summary()
    );
    assert!(
        m.conservation_holds(),
        "conservation broke at n={n} speed={speed} churn={churn_events}: {}",
        m.summary()
    );
    assert!(
        m.delivered > 0,
        "nothing delivered at n={n} speed={speed}: {}",
        m.summary()
    );
    // The headline guarantee of the incremental path: every relocation
    // invalidates only its own station's cached state. A nonzero
    // full-invalidation count would mean motion fell back to the global
    // `gains_changed` drop (reserved for partition overlays).
    let scoped = counter("phys.sinr.scoped_invalidations");
    let full = counter("phys.sinr.full_invalidations");
    assert!(
        scoped > 0,
        "no scoped invalidations at n={n}: the incremental move path did not run"
    );
    assert_eq!(
        full, 0,
        "motion triggered {full} global cache rebuilds at n={n}: \
         scoped invalidation regressed to gains_changed"
    );
    println!(
        "n={n} speed={speed} churn={churn_events}{threads_suffix} wall_s={wall:.2} \
         peak_rss_mb={rss_mb:.1} delivered={} moves={} leaves={} joins={} \
         relocations={} scoped_inval={scoped} full_inval={full} collisions={}",
        m.delivered,
        m.station_moves,
        m.leaves,
        m.joins,
        counter("phys.grid.relocations"),
        m.collision_losses()
    );
}

fn spawn_one(
    n: usize,
    speed: f64,
    churn_events: usize,
    threads: usize,
    bench_dir: Option<&std::path::Path>,
) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(&exe);
    cmd.args([
        "--one",
        &n.to_string(),
        &speed.to_string(),
        &churn_events.to_string(),
        &threads.to_string(),
    ]);
    if let Some(dir) = bench_dir {
        cmd.env("PARN_BENCH_DIR", dir);
    }
    let status = cmd.status().expect("spawn subprocess");
    assert!(
        status.success(),
        "n={n} speed={speed} churn={churn_events} failed: {status}"
    );
}

fn drive(sweep: &[(usize, f64, usize)]) {
    let reporter = Reporter::create("mobility"); // truncate; children append
    println!("# E9: delivery and reconvergence vs speed x churn, with incremental reindexing");
    println!("# artifact: {}", reporter.path().display());
    println!("# (each line is an independent subprocess; RSS is per-configuration)\n");
    for &(n, speed, churn) in sweep {
        spawn_one(n, speed, churn, 1, None);
    }
}

/// The determinism matrix: same seed, grid + far field, threads 1/2/8 →
/// the metrics JSON must match byte-for-byte through every move.
fn determinism(n: usize) {
    let base = std::env::temp_dir().join(format!("parn_mob_determinism_{}", std::process::id()));
    let mut metrics_by_threads: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let dir = base.join(format!("t{threads}"));
        std::fs::create_dir_all(&dir).expect("create determinism dir");
        let artifact = dir.join("BENCH_mobility.json");
        let _ = std::fs::remove_file(&artifact);
        spawn_one(n, 3.0, 8, threads, Some(&dir));
        let records: Vec<Json> = read_artifact(&artifact);
        assert_eq!(records.len(), 1, "expected one artifact line");
        let metrics = records[0].get("metrics").expect("metrics field").clone();
        metrics_by_threads.push((threads, metrics.to_string()));
    }
    let (_, reference) = &metrics_by_threads[0];
    for (threads, metrics) in &metrics_by_threads[1..] {
        assert_eq!(
            metrics, reference,
            "mobility metrics diverged between threads=1 and threads={threads}: \
             the moved-reception recompute order is no longer stable"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
    println!("determinism OK at n={n}: mobility metrics byte-identical across threads 1/2/8");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["--one", n, speed, churn] => run_one(
            n.parse().expect("n"),
            speed.parse().expect("speed"),
            churn.parse().expect("churn"),
            1,
        ),
        ["--one", n, speed, churn, threads] => run_one(
            n.parse().expect("n"),
            speed.parse().expect("speed"),
            churn.parse().expect("churn"),
            threads.parse().expect("threads"),
        ),
        ["--determinism", n] => determinism(n.parse().expect("n")),
        ["--smoke"] => drive(&[(1_000, 1.5, 10), (1_000, 6.0, 10)]),
        _ => drive(&[
            (1_000, 1.5, 0),
            (1_000, 1.5, 10),
            (1_000, 6.0, 10),
            (10_000, 1.5, 30),
            (100_000, 1.5, 100),
        ]),
    }
}
