//! E6 — metro scale: dense O(M²) matrix vs the spatial index.
//!
//! The dense [`parn_phys::GainMatrix`] stores M² gains — 8 MB at 10³
//! stations, 800 MB at 10⁴, and ~80 GB at 10⁵, where it stops being a
//! simulation backend and starts being a swap benchmark. The grid
//! backend ([`parn_phys::GridGainModel`] + far-field aggregation in the
//! SINR tracker) keeps memory O(M) and lets the same scheme run at 10⁵
//! stations with the collision-freedom invariant intact.
//!
//! Each configuration runs in its *own subprocess* so peak RSS (VmHWM)
//! is measured per configuration, not accumulated across them:
//!
//! * no args — driver mode: spawns itself with `--one n backend` for
//!   the whole sweep and prints a result table;
//! * `--one <n> <dense|grid|grid-far>` — run one configuration and
//!   print a single result line.
//!
//! The scale runs use the single-hop regime ([`DestPolicy::Neighbors`]
//! with [`RouteMode::OneHop`]) — O(E) routing state — with a short
//! measured window; the point is memory and wall-clock scaling plus the
//! zero-collision invariant, not long-run throughput statistics.

use parn_bench::report::{peak_rss_kb, Reporter, Run};
use parn_core::{DestPolicy, FarFieldConfig, NetConfig, Network, PhyBackend, RouteMode};
use parn_sim::Duration;
use std::time::Instant;

fn backend_from_name(name: &str) -> PhyBackend {
    match name {
        "dense" => PhyBackend::Dense,
        "grid" => PhyBackend::Grid { far_field: None },
        "grid-far" => PhyBackend::Grid {
            far_field: Some(FarFieldConfig::default_for_paper()),
        },
        other => panic!("unknown backend {other:?} (want dense|grid|grid-far)"),
    }
}

fn scale_config(n: usize, backend: PhyBackend) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, 42);
    cfg.phy_backend = backend;
    // Single-hop regime: O(E) routing state instead of the O(M²)
    // all-pairs table, and destinations drawn among routing neighbours.
    cfg.route_mode = RouteMode::OneHop;
    cfg.traffic.dest = DestPolicy::Neighbors;
    cfg.traffic.arrivals_per_station_per_sec = 0.5;
    cfg.run_for = Duration::from_secs(2);
    cfg.warmup = Duration::from_millis(500);
    cfg
}

fn run_one(n: usize, backend_name: &str) {
    let cfg = scale_config(n, backend_from_name(backend_name));
    parn_sim::obs::reset();
    let start = Instant::now();
    let m = Network::run(cfg.clone());
    let wall = start.elapsed().as_secs_f64();
    let rss_mb = peak_rss_kb().map_or(f64::NAN, |kb| kb as f64 / 1024.0);
    // The driver truncated the artifact; each subprocess appends its line
    // (peak RSS in provenance is then per-configuration, the point of the
    // subprocess split).
    Reporter::append("scale").record(&Run {
        label: format!("n={n} backend={backend_name}"),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s: wall,
    });
    assert_eq!(
        m.collision_losses(),
        0,
        "collision-freedom broken at n={n} backend={backend_name}: {}",
        m.summary()
    );
    assert!(
        m.delivered > 0,
        "nothing delivered at n={n} backend={backend_name}: {}",
        m.summary()
    );
    println!(
        "n={n} backend={backend_name} wall_s={wall:.2} peak_rss_mb={rss_mb:.1} \
         delivered={} collisions={} violations={}",
        m.delivered,
        m.collision_losses(),
        m.schedule_violations
    );
}

fn drive(sweep: &[(usize, &str)]) {
    let exe = std::env::current_exe().expect("current_exe");
    let reporter = Reporter::create("scale"); // truncate; children append
    println!("# E6: wall-clock and peak RSS, dense vs spatial index");
    println!("# artifact: {}", reporter.path().display());
    println!("# (each line is an independent subprocess; RSS is per-configuration)\n");
    for &(n, backend) in sweep {
        let status = std::process::Command::new(&exe)
            .args(["--one", &n.to_string(), backend])
            .status()
            .expect("spawn subprocess");
        assert!(status.success(), "n={n} backend={backend} failed: {status}");
    }
    println!("\n# dense at n=10^5 is omitted: the matrix alone is ~80 GB (8 B x 10^10).");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["--one", n, backend] => run_one(n.parse().expect("n"), backend),
        // `cargo test` passes `--test`-style flags to bins it never runs;
        // anything other than `--one` gets the default sweep. A smaller
        // sweep keeps smoke invocations (`--quick`) under a minute.
        ["--quick"] => drive(&[(1_000, "dense"), (1_000, "grid"), (1_000, "grid-far")]),
        _ => drive(&[
            (1_000, "dense"),
            (1_000, "grid-far"),
            (10_000, "dense"),
            (10_000, "grid-far"),
            (100_000, "grid-far"),
        ]),
    }
}
