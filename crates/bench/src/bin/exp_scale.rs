//! E6 — metro scale: dense O(M²) matrix vs the spatial index.
//!
//! The dense [`parn_phys::GainMatrix`] stores M² gains — 8 MB at 10³
//! stations, 800 MB at 10⁴, and ~80 GB at 10⁵, where it stops being a
//! simulation backend and starts being a swap benchmark. The grid
//! backend ([`parn_phys::GridGainModel`] + far-field aggregation in the
//! SINR tracker) keeps memory O(M) and lets the same scheme run at
//! 10⁵–10⁶ stations with the collision-freedom invariant intact.
//!
//! Each configuration runs in its *own subprocess* so peak RSS (VmHWM)
//! is measured per configuration, not accumulated across them:
//!
//! * no args — driver mode: spawns itself with `--one n backend` for
//!   the whole sweep and prints a result table;
//! * `--one <n> <dense|grid|grid-far> [threads]` — run one configuration
//!   and print a single result line;
//! * `--determinism <n>` — run `grid-far` at `n` with 1, 2 and 8 sweep
//!   threads into throwaway artifact dirs, assert the metrics JSON is
//!   byte-identical across thread counts (the stable-reduction-order
//!   guarantee), and assert the far-field snapshot cache hit rate stays
//!   ≥ 50% (the per-cell invalidation fix can't silently regress).
//!
//! The scale runs use the single-hop regime ([`DestPolicy::Neighbors`]
//! with [`RouteMode::OneHop`]) — O(E) routing state — with a short
//! measured window; the point is memory and wall-clock scaling plus the
//! zero-collision invariant, not long-run throughput statistics.

use parn_bench::report::{peak_rss_kb, read_artifact, Reporter, Run};
use parn_core::{DestPolicy, FarFieldConfig, NetConfig, Network, PhyBackend, RouteMode};
use parn_sim::{Duration, Json};
use std::time::Instant;

fn backend_from_name(name: &str) -> PhyBackend {
    match name {
        "dense" => PhyBackend::Dense,
        "grid" => PhyBackend::Grid { far_field: None },
        "grid-far" => PhyBackend::Grid {
            far_field: Some(FarFieldConfig::default_for_paper()),
        },
        other => panic!("unknown backend {other:?} (want dense|grid|grid-far)"),
    }
}

fn scale_config(n: usize, backend: PhyBackend, threads: usize) -> NetConfig {
    let mut cfg = NetConfig::paper_default(n, 42);
    cfg.phy_backend = backend;
    cfg.threads = threads;
    // Single-hop regime: O(E) routing state instead of the O(M²)
    // all-pairs table, and destinations drawn among routing neighbours.
    cfg.route_mode = RouteMode::OneHop;
    cfg.traffic.dest = DestPolicy::Neighbors;
    cfg.traffic.arrivals_per_station_per_sec = 0.5;
    cfg.run_for = Duration::from_secs(2);
    cfg.warmup = Duration::from_millis(500);
    cfg
}

fn run_one(n: usize, backend_name: &str, threads: usize) {
    let cfg = scale_config(n, backend_from_name(backend_name), threads);
    parn_sim::obs::reset();
    let start = Instant::now();
    let m = Network::run(cfg.clone());
    let wall = start.elapsed().as_secs_f64();
    let rss_mb = peak_rss_kb().map_or(f64::NAN, |kb| kb as f64 / 1024.0);
    let threads_suffix = if threads > 1 {
        format!(" threads={threads}")
    } else {
        String::new()
    };
    // The driver truncated the artifact; each subprocess appends its line
    // (peak RSS in provenance is then per-configuration, the point of the
    // subprocess split).
    Reporter::append("scale").record(&Run {
        label: format!("n={n} backend={backend_name}{threads_suffix}"),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s: wall,
    });
    assert_eq!(
        m.collision_losses(),
        0,
        "collision-freedom broken at n={n} backend={backend_name}: {}",
        m.summary()
    );
    assert!(
        m.delivered > 0,
        "nothing delivered at n={n} backend={backend_name}: {}",
        m.summary()
    );
    println!(
        "n={n} backend={backend_name}{threads_suffix} wall_s={wall:.2} \
         peak_rss_mb={rss_mb:.1} delivered={} collisions={} violations={}",
        m.delivered,
        m.collision_losses(),
        m.schedule_violations
    );
}

fn spawn_one(n: usize, backend: &str, threads: usize, bench_dir: Option<&std::path::Path>) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(&exe);
    cmd.args(["--one", &n.to_string(), backend, &threads.to_string()]);
    if let Some(dir) = bench_dir {
        cmd.env("PARN_BENCH_DIR", dir);
    }
    let status = cmd.status().expect("spawn subprocess");
    assert!(
        status.success(),
        "n={n} backend={backend} threads={threads} failed: {status}"
    );
}

fn drive(sweep: &[(usize, &str, usize)]) {
    let reporter = Reporter::create("scale"); // truncate; children append
    println!("# E6: wall-clock and peak RSS, dense vs spatial index");
    println!("# artifact: {}", reporter.path().display());
    println!("# (each line is an independent subprocess; RSS is per-configuration)\n");
    for &(n, backend, threads) in sweep {
        spawn_one(n, backend, threads, None);
    }
    println!("\n# dense at n=10^5 is omitted: the matrix alone is ~80 GB (8 B x 10^10).");
}

/// Counter value from a run record, defaulting to 0 when absent.
fn counter_of(record: &Json, name: &str) -> u64 {
    match record.get("counters").and_then(|c| c.get(name)) {
        Some(Json::UInt(v)) => *v,
        _ => 0,
    }
}

/// The determinism matrix: same seed, `grid-far`, threads 1/2/8 → the
/// metrics JSON must match byte-for-byte, and the far cache must hit.
fn determinism(n: usize) {
    let base = std::env::temp_dir().join(format!("parn_determinism_{}", std::process::id()));
    let mut metrics_by_threads: Vec<(usize, String, Json)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let dir = base.join(format!("t{threads}"));
        std::fs::create_dir_all(&dir).expect("create determinism dir");
        let artifact = dir.join("BENCH_scale.json");
        let _ = std::fs::remove_file(&artifact);
        spawn_one(n, "grid-far", threads, Some(&dir));
        let records = read_artifact(&artifact);
        assert_eq!(records.len(), 1, "expected one artifact line");
        let metrics = records[0].get("metrics").expect("metrics field").clone();
        metrics_by_threads.push((threads, metrics.to_string(), records[0].clone()));
    }
    let (_, reference, baseline) = &metrics_by_threads[0];
    for (threads, metrics, _) in &metrics_by_threads[1..] {
        assert_eq!(
            metrics, reference,
            "metrics diverged between threads=1 and threads={threads}: \
             the sweep reduction order is no longer stable"
        );
    }
    // Hit-rate floor, checked on the single-threaded child (its counters
    // are not split across per-thread caches): the per-cell epoch fix
    // must keep the snapshot cache alive under churn.
    let hits = counter_of(baseline, "phys.far_cache.hit");
    let recomputes = counter_of(baseline, "phys.far_cache.recompute");
    let rate = hits as f64 / (hits + recomputes).max(1) as f64;
    assert!(
        rate >= 0.5,
        "far-cache hit rate regressed: {hits} hits / {recomputes} recomputes = {rate:.3} < 0.5"
    );
    let _ = std::fs::remove_dir_all(&base);
    println!(
        "determinism OK at n={n}: metrics byte-identical across threads 1/2/8, \
         far-cache hit rate {rate:.3}"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["--one", n, backend] => run_one(n.parse().expect("n"), backend, 1),
        ["--one", n, backend, threads] => run_one(
            n.parse().expect("n"),
            backend,
            threads.parse().expect("threads"),
        ),
        ["--determinism", n] => determinism(n.parse().expect("n")),
        // `cargo test` passes `--test`-style flags to bins it never runs;
        // anything other than `--one` gets the default sweep. A smaller
        // sweep keeps smoke invocations (`--quick`) under a minute.
        ["--quick"] => drive(&[
            (1_000, "dense", 1),
            (1_000, "grid", 1),
            (1_000, "grid-far", 1),
        ]),
        _ => drive(&[
            (1_000, "dense", 1),
            (1_000, "grid-far", 1),
            (10_000, "dense", 1),
            (10_000, "grid-far", 1),
            (100_000, "grid-far", 1),
            (1_000_000, "grid-far", 2),
        ]),
    }
}
