//! A6 — successive interference cancellation (§3.4 footnote 2).
//!
//! The paper's receivers treat all interference as noise; the footnote
//! observes that subtracting "a few of the strongest interfering signals"
//! can beat the Shannon-with-noise bound when interferers are few. This
//! ablation gives the *baseline* MACs SIC receivers (capture effect) and
//! measures how much of ALOHA's collision loss it recovers — and how far
//! that still falls short of the scheme's zero, at zero receiver
//! complexity.

use parn_baseline::{Aloha, BaselineConfig, MacKind, Scenario};
use parn_bench::report::{timed, Reporter, Run};
use parn_core::{DestPolicy, NetConfig, Network};
use parn_sim::Duration;

fn aloha_with_sic(
    reporter: &Reporter,
    depth: usize,
    rate: f64,
    narrowband: bool,
) -> parn_core::Metrics {
    let mut c = BaselineConfig::matched(50, 8, MacKind::PureAloha);
    c.arrivals_per_station_per_sec = rate;
    c.sic_depth = depth;
    c.run_for = Duration::from_secs(10);
    c.warmup = Duration::from_secs(2);
    if narrowband {
        c.criterion = parn_phys::ReceptionCriterion {
            rate_bps: 1e6,
            bandwidth_hz: 1e6,
            margin: 2.0,
        };
    }
    parn_sim::obs::reset();
    let config = c.to_json();
    let (m, wall_s) = timed(|| Aloha::run(Scenario::new(c)));
    let band = if narrowband { "narrowband" } else { "spread" };
    reporter.record(&Run {
        label: format!("aloha sic_depth={depth} rate={rate} {band}"),
        config,
        metrics: m.to_json(),
        wall_s,
    });
    m
}

fn main() {
    println!("# A6: SIC receivers under contention MACs\n");
    let reporter = Reporter::create("abl_sic");

    println!("## narrowband ALOHA (threshold ~2), 8 pkt/s, 50 stations");
    println!(
        "{:<10} {:>11} {:>11} {:>12}",
        "SIC depth", "hop succ%", "collisions", "delivered"
    );
    let mut base = None;
    let mut best_delivered = 0;
    for depth in [0usize, 1, 2, 4] {
        let m = aloha_with_sic(&reporter, depth, 8.0, true);
        println!(
            "{:<10} {:>10.2}% {:>11} {:>12}",
            depth,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            m.delivered
        );
        if depth == 0 {
            base = Some((m.hop_success_rate(), m.delivered));
        }
        best_delivered = best_delivered.max(m.delivered);
    }
    let (base_rate, base_delivered) = base.unwrap();
    // Note: raw collision *counts* are confounded by the retransmission
    // feedback loop (higher success => more admitted traffic); the capture
    // effect shows in the success rate and goodput.
    assert!(base_rate < 0.99, "narrowband ALOHA should collide");
    assert!(
        best_delivered as f64 > 1.2 * base_delivered as f64,
        "SIC bought nothing: {base_delivered} -> {best_delivered}"
    );

    println!("\n## spread-spectrum ALOHA (20 dB gain), 40 pkt/s");
    println!(
        "{:<10} {:>11} {:>11}",
        "SIC depth", "hop succ%", "collisions"
    );
    for depth in [0usize, 2] {
        let m = aloha_with_sic(&reporter, depth, 40.0, false);
        println!(
            "{:<10} {:>10.2}% {:>11}",
            depth,
            100.0 * m.hop_success_rate(),
            m.collision_losses()
        );
    }

    // The reference point: the scheme needs no cancellation at all.
    let mut cfg = NetConfig::paper_default(50, 8);
    cfg.traffic.arrivals_per_station_per_sec = 8.0;
    cfg.traffic.dest = DestPolicy::Neighbors;
    cfg.run_for = Duration::from_secs(10);
    cfg.warmup = Duration::from_secs(2);
    parn_sim::obs::reset();
    let (scheme, scheme_wall) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: "scheme rate=8".into(),
        config: cfg.to_json(),
        metrics: scheme.to_json(),
        wall_s: scheme_wall,
    });
    println!(
        "\nscheme (no SIC, plain receivers): {} collisions, {:.2}% hop success",
        scheme.collision_losses(),
        100.0 * scheme.hop_success_rate()
    );
    assert_eq!(scheme.collision_losses(), 0);
    println!(
        "\nNarrowband: SIC recovers some of ALOHA's losses (capture effect)\n\
         but comparable-power collisions stay undecodable. Spread spectrum:\n\
         the low threshold makes power-controlled interferers mutually\n\
         decodable, so deep-enough SIC can rescue ALOHA here — at receiver\n\
         complexity Verdu warns is exponential in interferer count. The\n\
         scheme gets the same zero with plain receivers and no per-packet\n\
         control traffic."
    );
    println!("\nA6 reproduced: OK");
}
