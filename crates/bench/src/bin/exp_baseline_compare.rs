//! E3 — the scheme vs the MACs it replaces, across offered load.
//!
//! All five MACs run over identical physics (same placement seed, gain
//! matrix, reception criterion, power control, packet size) with
//! single-hop neighbour traffic at increasing offered load. The expected
//! shape: contention MACs lose packets to collisions once load grows —
//! pure ALOHA worst, slotted better, CSMA/MACA better still but paying in
//! deferral delay and control overhead — while the Shepard scheme stays at
//! exactly zero collision losses at every load, trading only delay.

use parn_baseline::{Aloha, BaselineConfig, Csma, MacKind, Maca, Scenario};
use parn_bench::report::{timed, Reporter, Run};
use parn_core::{DestPolicy, Metrics, NetConfig, Network};
use parn_phys::PowerW;
use parn_sim::Duration;

const N: usize = 60;
const SEED: u64 = 3;
const SECS: u64 = 12;

fn baseline(reporter: &Reporter, name: &str, mac: MacKind, rate: f64) -> Metrics {
    let mut c = BaselineConfig::matched(N, SEED, mac);
    c.arrivals_per_station_per_sec = rate;
    c.run_for = Duration::from_secs(SECS);
    c.warmup = Duration::from_secs(2);
    parn_sim::obs::reset();
    let config = c.to_json();
    let (m, wall_s) = timed(|| match c.mac {
        MacKind::Maca { .. } => Maca::run(Scenario::new(c.clone())),
        MacKind::Csma { .. } => Csma::run(Scenario::new(c.clone())),
        _ => Aloha::run(Scenario::new(c.clone())),
    });
    reporter.record(&Run {
        label: format!("rate={rate} mac={name}"),
        config,
        metrics: m.to_json(),
        wall_s,
    });
    m
}

fn shepard(reporter: &Reporter, rate: f64) -> Metrics {
    let mut cfg = NetConfig::paper_default(N, SEED);
    cfg.traffic.arrivals_per_station_per_sec = rate;
    cfg.traffic.dest = DestPolicy::Neighbors;
    cfg.run_for = Duration::from_secs(SECS);
    cfg.warmup = Duration::from_secs(2);
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: format!("rate={rate} mac=shepard"),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });
    m
}

fn main() {
    println!("# E3: scheme vs baselines, {N} stations, single-hop neighbour traffic\n");
    println!(
        "{:<8} {:<14} {:>10} {:>11} {:>11} {:>12} {:>10}",
        "load/s", "MAC", "delivered", "hop succ%", "collisions", "goodput b/s", "delay ms"
    );
    let reporter = Reporter::create("baseline_compare");
    let mut shepard_collisions_total = 0;
    let mut aloha_collisions_heavy = 0;
    for &rate in &[1.0, 5.0, 15.0, 40.0] {
        let rows: Vec<(&str, Metrics)> = vec![
            ("shepard", shepard(&reporter, rate)),
            (
                "pure-aloha",
                baseline(&reporter, "pure-aloha", MacKind::PureAloha, rate),
            ),
            (
                "slot-aloha",
                baseline(
                    &reporter,
                    "slot-aloha",
                    MacKind::SlottedAloha {
                        slot: Duration::from_micros(2500),
                    },
                    rate,
                ),
            ),
            (
                "csma",
                baseline(
                    &reporter,
                    "csma",
                    MacKind::Csma {
                        sense_threshold: PowerW(1e-8),
                    },
                    rate,
                ),
            ),
            (
                "maca",
                baseline(
                    &reporter,
                    "maca",
                    MacKind::Maca {
                        ctrl_airtime: Duration::from_micros(250),
                    },
                    rate,
                ),
            ),
        ];
        for (name, m) in &rows {
            println!(
                "{:<8} {:<14} {:>10} {:>10.2}% {:>11} {:>12.0} {:>10.1}",
                rate,
                name,
                m.delivered,
                100.0 * m.hop_success_rate(),
                m.collision_losses(),
                m.goodput_bps(),
                m.e2e_delay.mean() * 1e3
            );
            if *name == "shepard" {
                shepard_collisions_total += m.collision_losses();
            }
            if *name == "pure-aloha" && rate >= 15.0 {
                aloha_collisions_heavy += m.collision_losses();
            }
        }
        println!();
    }
    assert_eq!(
        shepard_collisions_total, 0,
        "the scheme lost packets to collisions"
    );
    assert!(
        aloha_collisions_heavy > 0,
        "ALOHA should collide under heavy load"
    );
    println!("E3 reproduced: scheme collision-free at every load; contention MACs are not. OK");
}
