//! E1 — collision-free operation at the paper's simulated scales.
//!
//! "Simulations of small networks (consisting of only 100 or 1000
//! stations) were used to demonstrate the effectiveness of the channel
//! access scheme" (§1). This harness runs both sizes with multihop
//! Poisson traffic and reports the full loss ledger. The acceptance
//! criterion is *literal*: zero losses of every collision type, zero
//! schedule violations, and a per-hop wait distribution consistent with
//! the §7.2 Bernoulli model.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{LossCause, NetConfig, Network};
use parn_sim::Duration;

fn run(reporter: &Reporter, n: usize, seed: u64, secs: u64, rate: f64) {
    let mut cfg = NetConfig::paper_default(n, seed);
    cfg.traffic.arrivals_per_station_per_sec = rate;
    cfg.run_for = Duration::from_secs(secs);
    cfg.warmup = Duration::from_secs(2);
    parn_sim::obs::reset();
    let (m, wall_s) = timed(|| Network::run(cfg.clone()));
    reporter.record(&Run {
        label: format!("n={n} seed={seed} rate={rate}"),
        config: cfg.to_json(),
        metrics: m.to_json(),
        wall_s,
    });

    println!("## n = {n}, seed {seed}, {rate} pkt/s/station, {secs} s");
    println!(
        "  generated / delivered : {} / {}",
        m.generated, m.delivered
    );
    println!("  hop attempts          : {}", m.hop_attempts);
    println!(
        "  hop success rate      : {:.4}%",
        100.0 * m.hop_success_rate()
    );
    println!(
        "  per-hop wait          : mean {:.2} slots, p95 {:.2}",
        m.hop_wait_slots.mean().unwrap_or(0.0),
        m.hop_wait_slots.quantile(0.95).unwrap_or(0.0)
    );
    println!(
        "  e2e delay             : mean {:.1} ms over {:.1} hops",
        m.e2e_delay.mean() * 1e3,
        m.hops_per_packet.mean()
    );
    println!(
        "  min SINR margin       : {:.1} dB above threshold (worst successful rx)",
        m.sinr_margin_db.min()
    );
    println!("  losses:");
    for (label, c) in [
        ("type 1", LossCause::CollisionType1),
        ("type 2", LossCause::CollisionType2),
        ("type 3", LossCause::CollisionType3),
        ("despreader", LossCause::DespreaderExhausted),
        ("din", LossCause::Din),
    ] {
        println!("    {label:<11} {}", m.losses.get(&c).copied().unwrap_or(0));
    }
    println!("  schedule violations   : {}", m.schedule_violations);
    println!(
        "  spatial reuse         : {:.2} concurrent transmissions on average",
        m.mean_concurrent_tx
    );
    assert_eq!(m.collision_losses(), 0, "collision-free property FAILED");
    assert_eq!(m.schedule_violations, 0, "schedule violation");
    assert_eq!(m.total_losses(), 0, "unexpected losses: {}", m.summary());
    assert!(m.delivered > 0);
    println!("  => collision-free: OK\n");
}

fn main() {
    println!("# E1: collision-free operation (paper Sec. 1/Sec. 7, thesis ch. 5)\n");
    let reporter = Reporter::create("collision_free");
    // The paper's 100-station scale, three seeds.
    for seed in [1, 2, 3] {
        run(&reporter, 100, seed, 20, 2.0);
    }
    // Heavier offered load at 100 stations.
    run(&reporter, 100, 4, 20, 6.0);
    // The paper's 1000-station scale.
    run(&reporter, 1000, 5, 10, 1.0);
    println!("E1 reproduced: zero collision losses at every scale. OK");
}
