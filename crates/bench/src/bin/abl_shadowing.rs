//! A3 — robustness to non-free-space propagation (paper §3.5's
//! calibration caveat).
//!
//! §3.5 argues the free-space model overestimates distant interference
//! (real obstructed paths are *weaker*), so the analysis errs safe. Here
//! we stop assuming: log-normal shadowing of increasing σ perturbs every
//! path. Because stations *observe* path gains (routing and power control
//! run on the shadowed matrix), the scheme should adapt: stay
//! collision-free, route around shadowed links, and only gradually spend
//! more hops. Connectivity at a fixed reach eventually suffers — that is
//! the honest cost of obstructions.

use parn_bench::report::{timed, Reporter, Run};
use parn_core::{NetConfig, Network};
use parn_sim::Duration;

fn main() {
    let reporter = Reporter::create("abl_shadowing");
    println!("# A3: log-normal shadowing sweep (60 stations, 3 pkt/s)\n");
    println!(
        "{:<10} {:>10} {:>11} {:>11} {:>10} {:>11} {:>10}",
        "sigma dB", "delivered", "hop succ%", "collisions", "avg hops", "delay ms", "reach"
    );
    let mut hops_free = 0.0;
    let mut hops_heavy = 0.0;
    for &sigma in &[0.0, 4.0, 8.0, 12.0] {
        // Give the graph more reach as shadowing grows so it stays
        // connected; this mirrors §6's "doubling the distance should
        // suffice in most situations" reasoning.
        let reach = if sigma >= 8.0 { 3.0 } else { 2.0 };
        let mut cfg = NetConfig::paper_default(60, 33);
        cfg.shadowing_sigma_db = sigma;
        cfg.reach_factor = reach;
        cfg.traffic.arrivals_per_station_per_sec = 3.0;
        cfg.run_for = Duration::from_secs(14);
        cfg.warmup = Duration::from_secs(2);
        parn_sim::obs::reset();
        let (m, wall_s) = timed(|| Network::run(cfg.clone()));
        reporter.record(&Run {
            label: format!("sigma_db={sigma}"),
            config: cfg.to_json(),
            metrics: m.to_json(),
            wall_s,
        });
        println!(
            "{:<10} {:>10} {:>10.2}% {:>11} {:>10.2} {:>11.1} {:>10}",
            sigma,
            m.delivered,
            100.0 * m.hop_success_rate(),
            m.collision_losses(),
            m.hops_per_packet.mean(),
            m.e2e_delay.mean() * 1e3,
            reach
        );
        assert_eq!(
            m.collision_losses(),
            0,
            "shadowing sigma {sigma} broke collision-freedom"
        );
        assert!(m.delivered > 100, "sigma {sigma}: too few deliveries");
        if sigma == 0.0 {
            hops_free = m.hops_per_packet.mean();
        }
        if sigma == 12.0 {
            hops_heavy = m.hops_per_packet.mean();
        }
    }
    println!(
        "\nmean hops move from {hops_free:.2} (free space) to {hops_heavy:.2} (12 dB shadowing):\n\
         log-normal shadowing cuts both ways — half the links come out\n\
         *stronger* than free space and minimum-energy routing exploits\n\
         them, while obstructed links are simply routed around. Either\n\
         way every hop stays collision-free: the schedules don't care\n\
         what the gains are, only that stations observe them."
    );
    assert!(hops_free > 0.0 && hops_heavy > 0.0);
    println!("\nA3 reproduced: OK");
}
