//! A minimal, dependency-free JSON value type with a writer and a strict
//! parser.
//!
//! The workspace builds hermetically (no external crates), so the run
//! artifacts described in `docs/OBSERVABILITY.md` are serialized with this
//! hand-rolled implementation instead of `serde_json`. The subset is
//! deliberately small but *complete* for what the artifact writer needs:
//!
//! * Objects preserve insertion order (reproducible byte-for-byte output);
//! * integers are carried as `i64`/`u64` so counters and seeds round-trip
//!   exactly (an `f64` cannot hold every `u64`);
//! * non-finite floats serialize as `null` (JSON has no NaN/∞) — the
//!   artifact schema documents which fields may be null for this reason;
//! * the parser ([`Json::parse`]) accepts exactly RFC 8259 JSON, which the
//!   test suite uses to prove every emitted artifact line is valid.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A float. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Build an object from `(key, value)` pairs, preserving order.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl std::fmt::Display for Json {
    /// Serialize to a compact JSON string (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Append the serialized form to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` for f64 is the shortest representation that
                    // round-trips; it always contains '.' or 'e' so the
                    // value reads back as a float.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a key in an object; `None` for non-objects / missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parse a complete JSON document. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`]: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not needed by the writer
                            // (it never emits them) but accept them anyway.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(-42),
            Json::UInt(u64::MAX),
            Json::Num(1.5),
            Json::Num(1e-13),
            Json::Str("hello".into()),
        ] {
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}f".into());
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn unicode_passthrough() {
        let s = Json::Str("δ ≈ 0.71/√ρ".into());
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = obj([
            ("name", "scale".into()),
            ("runs", Json::Arr(vec![1u64.into(), 2u64.into()])),
            (
                "inner",
                obj([("x", 0.5.into()), ("flag", false.into()), ("n", Json::Null)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(v.get("name"), Some(&Json::Str("scale".into())));
        assert_eq!(v.get("inner").unwrap().get("x"), Some(&Json::Num(0.5)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = obj([("z", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_exponents() {
        let v = Json::parse(" { \"a\" : [ 1.5e3 , -2 , 18446744073709551615 ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1500.0),
                Json::Int(-2),
                Json::UInt(u64::MAX)
            ]))
        );
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn float_shortest_repr_reads_back_as_float() {
        // `{:?}` always includes '.' or 'e', so integral floats stay floats.
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
    }
}
