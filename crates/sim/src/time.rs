//! Simulation time.
//!
//! Time is an integer count of *ticks* (1 tick = 1 microsecond of simulated
//! time). Integer time gives the event queue a total order with no
//! floating-point drift, which is what makes runs bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of ticks in one simulated second.
pub const TICKS_PER_SECOND: u64 = 1_000_000;

/// An absolute instant of simulated time, in ticks since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The beginning of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole seconds of simulated time.
    pub fn from_secs(s: u64) -> Time {
        Time(s * TICKS_PER_SECOND)
    }

    /// Construct from (possibly fractional) seconds. Rounds to nearest tick.
    pub fn from_secs_f64(s: f64) -> Time {
        debug_assert!(s >= 0.0, "negative time");
        Time((s * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Ticks since time zero.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant. Panics (in debug) if `earlier`
    /// is actually later.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(self >= earlier, "time went backwards");
        Duration(self.0 - earlier.0)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Duration) -> Time {
        Time(self.0.saturating_sub(d.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * TICKS_PER_SECOND)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * (TICKS_PER_SECOND / 1000))
    }

    /// Construct from whole microseconds (= ticks).
    pub fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Construct from fractional seconds. Rounds to nearest tick.
    pub fn from_secs_f64(s: f64) -> Duration {
        debug_assert!(s >= 0.0, "negative duration");
        Duration((s * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Ticks in the span.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// True when the span is empty.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to nearest tick.
    pub fn mul_f64(self, k: f64) -> Duration {
        debug_assert!(k >= 0.0, "negative scale");
        Duration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, d: Duration) -> Time {
        Time(self.0 - d.0)
    }
}

impl SubAssign<Duration> for Time {
    fn sub_assign(&mut self, d: Duration) {
        self.0 -= d.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl Rem<Duration> for Time {
    type Output = Duration;
    fn rem(self, d: Duration) -> Duration {
        Duration(self.0 % d.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        debug_assert!(self >= other, "duration underflow");
        Duration(self.0 - other.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    fn div(self, other: Duration) -> u64 {
        self.0 / other.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = Time::from_secs_f64(1.25);
        assert_eq!(t.ticks(), 1_250_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::from_millis(3);
        assert_eq!(d.ticks(), 3000);
        assert!((d.as_secs_f64() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_secs(1);
        let d = Duration::from_millis(500);
        assert_eq!(t + d, Time(1_500_000));
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_secs(2);
        assert_eq!(d * 3, Duration::from_secs(6));
        assert_eq!(d / 4, Duration::from_millis(500));
        assert_eq!(d.mul_f64(0.25), Duration::from_millis(500));
        assert_eq!(Duration::from_secs(7) / Duration::from_secs(2), 3);
    }

    #[test]
    fn rem_gives_phase() {
        let slot = Duration::from_millis(10);
        let t = Time(25_000); // 25 ms
        assert_eq!(t % slot, Duration::from_millis(5));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time(5).saturating_sub(Duration(10)), Time::ZERO);
        assert_eq!(Duration(5).saturating_sub(Duration(10)), Duration::ZERO);
        assert_eq!(Time::MAX.checked_add(Duration(1)), None);
        assert_eq!(Time(1).checked_add(Duration(1)), Some(Time(2)));
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert!(Duration(3) > Duration(2));
        assert!(!Duration(1).is_zero());
        assert!(Duration::ZERO.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_secs(1)), "1.000000s");
        assert_eq!(format!("{}", Duration::from_millis(1)), "0.001000s");
    }
}
