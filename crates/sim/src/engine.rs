//! A minimal generic simulation driver.
//!
//! Most of the project drives [`crate::events::EventQueue`]
//! directly, but the [`Model`] trait + [`run`] loop standardize the common
//! pattern: pop the next event, dispatch it to the model, let the model
//! schedule follow-ups, stop at a horizon.

use crate::events::EventQueue;
use crate::time::Time;

/// A simulation model driven by events of type `Self::Event`.
pub trait Model {
    /// Event payload type.
    type Event;

    /// Handle one event at time `now`, scheduling any follow-up events.
    fn handle(&mut self, now: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a [`run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events dispatched.
    pub events_processed: u64,
    /// Time of the last dispatched event (queue position at exit).
    pub final_time: Time,
    /// True when the run stopped because the queue drained.
    pub drained: bool,
}

/// Run `model` until the queue drains or the next event is past `horizon`.
///
/// Events exactly at the horizon are processed; events after it are left in
/// the queue (so a model can be resumed).
pub fn run<M: Model>(model: &mut M, queue: &mut EventQueue<M::Event>, horizon: Time) -> RunSummary {
    let mut processed = 0u64;
    let summary = loop {
        match queue.peek_time() {
            None => {
                break RunSummary {
                    events_processed: processed,
                    final_time: queue.now(),
                    drained: true,
                }
            }
            Some(t) if t > horizon => {
                break RunSummary {
                    events_processed: processed,
                    final_time: queue.now(),
                    drained: false,
                }
            }
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event vanished");
                model.handle(now, ev, queue);
                processed += 1;
            }
        }
    };
    // One registry update per run() call, not per event: the hot loop above
    // stays untouched by observability.
    crate::counter_inc!("sim.events_processed", processed);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// A model that re-schedules itself `remaining` times at fixed spacing.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<Time>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, now: Time, _: (), q: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                q.schedule(now + Duration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn runs_until_drained() {
        let mut m = Ticker {
            remaining: 3,
            fired_at: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, ());
        let s = run(&mut m, &mut q, Time::MAX);
        assert!(s.drained);
        assert_eq!(s.events_processed, 4);
        assert_eq!(
            m.fired_at,
            vec![
                Time::ZERO,
                Time::from_secs(1),
                Time::from_secs(2),
                Time::from_secs(3)
            ]
        );
    }

    #[test]
    fn horizon_stops_run_and_preserves_queue() {
        let mut m = Ticker {
            remaining: 100,
            fired_at: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, ());
        let s = run(&mut m, &mut q, Time::from_secs(5));
        assert!(!s.drained);
        assert_eq!(s.events_processed, 6); // t=0..=5
        assert_eq!(q.len(), 1); // t=6 still pending
                                // Resume to t=7.
        let s2 = run(&mut m, &mut q, Time::from_secs(7));
        assert_eq!(s2.events_processed, 2);
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut m = Ticker {
            remaining: 0,
            fired_at: vec![],
        };
        let mut q = EventQueue::new();
        let s = run(&mut m, &mut q, Time::from_secs(1));
        assert!(s.drained);
        assert_eq!(s.events_processed, 0);
    }
}
