//! Deterministic random number generation.
//!
//! All randomness in the simulator flows through [`Rng`], a
//! xoshiro256**-style generator seeded via splitmix64. Named substreams
//! ([`Rng::substream`]) let independent parts of a simulation (placement,
//! traffic, clock offsets, ...) draw from decorrelated sequences while the
//! whole run stays reproducible from a single root seed.
//!
//! We implement the generator by hand rather than pulling in `rand` so the
//! core simulation has zero external dependencies and its behaviour is
//! pinned by this crate's own tests.

/// splitmix64 step: the standard seeding/stream-splitting mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One-shot stateless mix of a 64-bit value (used for schedule hashing too).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Deterministic xoshiro256** generator.
///
/// ```
/// use parn_sim::Rng;
/// let mut a = Rng::new(7).substream("traffic");
/// let mut b = Rng::new(7).substream("traffic");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed+label => same stream
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for v in s.iter_mut() {
            *v = splitmix64(&mut sm);
        }
        // xoshiro must not start in the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Derive an independent substream identified by a label.
    ///
    /// The label is hashed (FNV-1a) together with this generator's seed
    /// material, so `substream("traffic")` and `substream("placement")`
    /// produce decorrelated sequences, stable across runs.
    pub fn substream(&self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng::new(self.s[0] ^ h.rotate_left(17) ^ self.s[2].wrapping_mul(3))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire rejection method: unbiased and fast.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; simple and fine
    /// for our volumes).
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + sd * z
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Knuth's product method for small means, normal approximation
    /// (clamped at zero) for large ones.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        if mean < 64.0 {
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let v = self.normal(mean, mean.sqrt()).round();
            if v < 0.0 {
                0
            } else {
                v as u64
            }
        }
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let root = Rng::new(7);
        let mut a1 = root.substream("traffic");
        let mut a2 = root.substream("traffic");
        let mut b = root.substream("placement");
        assert_eq!(a1.next_u64(), a2.next_u64());
        let mut a3 = root.substream("traffic");
        assert_ne!(a3.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::new(1).below(0);
    }

    #[test]
    fn exp_mean() {
        let mut r = Rng::new(9);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = Rng::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.poisson(2.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_path() {
        let mut r = Rng::new(19);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.poisson(200.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(23);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn mix64_stateless() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_ne!(mix64(1), mix64(2));
    }
}
