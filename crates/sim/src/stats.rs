//! Statistics collection for simulation outputs.
//!
//! Three collectors cover what the experiment harnesses need:
//!
//! * [`Tally`] — streaming mean/variance/min/max of point samples
//!   (Welford's algorithm).
//! * [`Histogram`] — fixed-width bins plus exact quantiles from retained
//!   samples.
//! * [`TimeWeighted`] — time-average of a piecewise-constant signal (queue
//!   lengths, number of active transmissions, ...).

use crate::time::Time;

/// Streaming mean / variance / extrema over point samples.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Tally {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN-free; infinite when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Summary as a JSON object (`count`/`mean`/`std_dev`/`min`/`max`).
    ///
    /// An empty tally's infinite extrema serialize as `null` (JSON has no
    /// infinities).
    pub fn to_json(&self) -> crate::json::Json {
        crate::json::obj([
            ("count", self.count().into()),
            ("mean", self.mean().into()),
            ("std_dev", self.std_dev().into()),
            ("min", self.min().into()),
            ("max", self.max().into()),
        ])
    }
}

/// Fixed-width-bin histogram that also retains samples for exact quantiles.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    samples: Vec<f64>,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `nbins` equal bins.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(hi > lo && nbins > 0, "bad histogram bounds");
        Histogram {
            lo,
            width: (hi - lo) / nbins as f64,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            samples: Vec::new(),
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            if idx >= self.bins.len() {
                self.overflow += 1;
            } else {
                self.bins[idx] += 1;
            }
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// `(lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + self.width * i as f64;
        (lo, lo + self.width)
    }

    /// Samples below range / above range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Exact q-quantile (0 ≤ q ≤ 1) using nearest-rank on retained samples.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        Some(sorted[rank])
    }

    /// Sample mean. Returns `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Summary as a JSON object (`count`/`mean`/`p50`/`p90`/`p99`/`max`);
    /// statistics of an empty histogram serialize as `null`.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        crate::json::obj([
            ("count", self.count().into()),
            ("mean", opt(self.mean())),
            ("p50", opt(self.quantile(0.5))),
            ("p90", opt(self.quantile(0.9))),
            ("p99", opt(self.quantile(0.99))),
            ("max", opt(self.quantile(1.0))),
        ])
    }
}

/// Time-average of a piecewise-constant signal.
///
/// Call [`set`](TimeWeighted::set) whenever the tracked value changes; the
/// collector integrates value × elapsed-time between changes.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    value: f64,
    last_change: Time,
    integral: f64,
    start: Time,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with an initial value.
    pub fn new(start: Time, initial: f64) -> TimeWeighted {
        TimeWeighted {
            value: initial,
            last_change: start,
            integral: 0.0,
            start,
            max: initial,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: Time, value: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.integral += self.value * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Add `delta` to the current value at time `now`.
    pub fn adjust(&mut self, now: Time, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-average of the signal from start to `now`.
    pub fn average(&self, now: Time) -> f64 {
        let total = now.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * now.since(self.last_change).as_secs_f64();
        integral / total
    }
}

/// Time-weighted histogram of a piecewise-constant signal.
///
/// Where [`TimeWeighted`] reduces the signal to its average and peak, this
/// collector keeps the full *dwell-time distribution*: how long the signal
/// spent at each integer level (queue depths, outstanding transmissions).
/// Levels at or above the bin count accumulate in a shared overflow bin,
/// so memory stays bounded however deep a saturated queue grows.
///
/// Quantiles are over **time**, not samples: `quantile(0.95)` is the
/// smallest level the signal stayed at-or-below for 95% of the observed
/// span. Call [`freeze`](TimeWeightedHist::freeze) once at the end of the
/// run to fold in the final dwell before reading statistics.
#[derive(Clone, Debug)]
pub struct TimeWeightedHist {
    value: f64,
    last_change: Time,
    max: f64,
    /// Seconds spent at level `i` (the signal floored to an integer).
    dwell_s: Vec<f64>,
    /// Seconds spent at levels `>= dwell_s.len()`.
    overflow_s: f64,
    /// Time-weighted integral of the signal (for the mean).
    integral: f64,
    total_s: f64,
}

impl TimeWeightedHist {
    /// Start tracking at `start` with an initial value, binning levels
    /// `0..levels` individually (higher levels pool in overflow).
    pub fn new(start: Time, initial: f64, levels: usize) -> TimeWeightedHist {
        assert!(levels > 0, "need at least one level bin");
        TimeWeightedHist {
            value: initial,
            last_change: start,
            max: initial,
            dwell_s: vec![0.0; levels],
            overflow_s: 0.0,
            integral: 0.0,
            total_s: 0.0,
        }
    }

    fn accumulate(&mut self, now: Time) {
        debug_assert!(now >= self.last_change, "time went backwards");
        let dt = now.since(self.last_change).as_secs_f64();
        if dt > 0.0 {
            let level = self.value.max(0.0).floor() as usize;
            match self.dwell_s.get_mut(level) {
                Some(slot) => *slot += dt,
                None => self.overflow_s += dt,
            }
            self.integral += self.value * dt;
            self.total_s += dt;
        }
        self.last_change = now;
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: Time, value: f64) {
        self.accumulate(now);
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Add `delta` to the current value at time `now`.
    pub fn adjust(&mut self, now: Time, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Fold the dwell since the last change into the books, up to `now`.
    /// Statistics read after this reflect the whole `[start, now]` span.
    pub fn freeze(&mut self, now: Time) {
        self.accumulate(now);
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Total observed span in seconds (through the last `set`/`freeze`).
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// Time-weighted mean of the signal (0 before any time has passed).
    pub fn mean(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            self.integral / self.total_s
        }
    }

    /// Seconds the signal spent at integer level `i`.
    pub fn dwell_at(&self, i: usize) -> f64 {
        self.dwell_s.get(i).copied().unwrap_or(0.0)
    }

    /// Seconds spent at levels beyond the last tracked bin.
    pub fn overflow_s(&self) -> f64 {
        self.overflow_s
    }

    /// Time-weighted q-quantile: the smallest level such that the signal
    /// was at-or-below it for at least fraction `q` of the span. Levels in
    /// the overflow pool report as the first untracked level. `None`
    /// before any time has passed.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total_s <= 0.0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.total_s;
        let mut cum = 0.0;
        for (level, &dt) in self.dwell_s.iter().enumerate() {
            cum += dt;
            // Tolerate last-bit rounding so quantile(1.0) lands on the
            // deepest occupied bin instead of spilling to overflow.
            if cum + 1e-12 >= target {
                return Some(level as f64);
            }
        }
        Some(self.dwell_s.len() as f64)
    }

    /// Summary as a JSON object (`mean`/`p50`/`p95`/`p99`/`max`, plus the
    /// observed span and overflow dwell); quantiles of an unobserved
    /// signal serialize as `null`.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        crate::json::obj([
            ("mean", self.mean().into()),
            ("p50", opt(self.quantile(0.5))),
            ("p95", opt(self.quantile(0.95))),
            ("p99", opt(self.quantile(0.99))),
            ("max", self.max().into()),
            ("span_s", self.total_s.into()),
            ("overflow_s", self.overflow_s.into()),
        ])
    }
}

/// A labelled monotonic counter, convenient for loss/cause accounting.
#[derive(Clone, Debug, Default)]
pub struct Counter(u64);

impl Counter {
    /// Zero.
    pub fn new() -> Counter {
        Counter(0)
    }
    /// Add one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn tally_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.add(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 4.0).abs() < 1e-12);
        assert!((t.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
    }

    #[test]
    fn tally_empty() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.count(), 7);
        assert_eq!(h.bin_bounds(1), (1.0, 2.0));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.add(i as f64);
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(99.0));
        let med = h.quantile(0.5).unwrap();
        assert!((49.0..=50.0).contains(&med));
        assert!((h.mean().unwrap() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut w = TimeWeighted::new(Time::ZERO, 0.0);
        w.set(Time::from_secs(1), 10.0); // 0 for 1s
        w.set(Time::from_secs(3), 20.0); // 10 for 2s
                                         // value 20 for 1s, queried at t=4: integral = 0 + 20 + 20 = 40
        let avg = w.average(Time::from_secs(4));
        assert!((avg - 10.0).abs() < 1e-12, "avg {avg}");
        assert_eq!(w.current(), 20.0);
        assert_eq!(w.max(), 20.0);
    }

    #[test]
    fn time_weighted_adjust() {
        let mut w = TimeWeighted::new(Time::ZERO, 5.0);
        w.adjust(Time::from_secs(2), -3.0);
        assert_eq!(w.current(), 2.0);
        let avg = w.average(Time::from_secs(4));
        // 5 for 2s, 2 for 2s => 14/4
        assert!((avg - 3.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_span() {
        let w = TimeWeighted::new(Time::from_secs(5), 7.0);
        assert_eq!(w.average(Time::from_secs(5)), 7.0);
        let _ = Duration::ZERO;
    }

    #[test]
    fn time_weighted_hist_dwell_and_quantiles() {
        let mut h = TimeWeightedHist::new(Time::ZERO, 0.0, 8);
        h.set(Time::from_secs(5), 1.0); // level 0 for 5 s
        h.set(Time::from_secs(9), 3.0); // level 1 for 4 s
        h.freeze(Time::from_secs(10)); // level 3 for 1 s
        assert!((h.dwell_at(0) - 5.0).abs() < 1e-12);
        assert!((h.dwell_at(1) - 4.0).abs() < 1e-12);
        assert!((h.dwell_at(3) - 1.0).abs() < 1e-12);
        assert!((h.total_s() - 10.0).abs() < 1e-12);
        // integral = 0*5 + 1*4 + 3*1 = 7 over 10 s.
        assert!((h.mean() - 0.7).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(0.9), Some(1.0));
        assert_eq!(h.quantile(0.95), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(3.0));
        assert_eq!(h.max(), 3.0);
    }

    #[test]
    fn time_weighted_hist_overflow_and_adjust() {
        let mut h = TimeWeightedHist::new(Time::ZERO, 0.0, 2);
        h.adjust(Time::from_secs(1), 5.0); // level 0 for 1 s
        h.adjust(Time::from_secs(3), -5.0); // level 5 (overflow) for 2 s
        h.freeze(Time::from_secs(4)); // level 0 for 1 s
        assert!((h.overflow_s() - 2.0).abs() < 1e-12);
        assert!((h.dwell_at(0) - 2.0).abs() < 1e-12);
        // Half the span sits in overflow: p99 reports the first untracked
        // level.
        assert_eq!(h.quantile(0.99), Some(2.0));
        let s = h.to_json().to_string();
        assert!(s.contains("\"p95\""), "{s}");
        assert!(s.contains("\"overflow_s\":2"), "{s}");
    }

    #[test]
    fn time_weighted_hist_empty() {
        let h = TimeWeightedHist::new(Time::ZERO, 0.0, 4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().to_string().contains("\"p50\":null"));
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
