//! `parn-sim`: deterministic discrete-event simulation substrate.
//!
//! This crate supplies the simulation machinery the rest of the `parn`
//! workspace is built on:
//!
//! * [`time`] — integer-tick simulated [`time::Time`] and
//!   [`time::Duration`];
//! * [`events`] — a deterministic future-event list with FIFO tie-breaking;
//! * [`engine`] — a minimal model/driver loop;
//! * [`rng`] — a self-contained, seedable xoshiro256** generator with named
//!   substreams so every run is bit-reproducible;
//! * [`stats`] — tallies, histograms and time-weighted averages;
//! * [`trace`] — a bounded in-memory trace of typed events (see
//!   [`trace_event!`]);
//! * [`obs`] — a process-wide counter/timer registry for hot-path
//!   observability (see [`counter_inc!`] and [`time_scope!`]);
//! * [`pool`] — a persistent worker pool with a scoped-borrow barrier API,
//!   used by the cell-sharded far-field SINR sweep;
//! * [`json`] — a dependency-free JSON value/writer/parser used by the
//!   run-artifact layer (`BENCH_*.json`, see `docs/OBSERVABILITY.md`).
//!
//! Design note: the simulator's *event loop* is intentionally synchronous
//! and single-threaded. A discrete-event radio simulation is CPU-bound and
//! needs a total order over events; an async runtime would add overhead and
//! nondeterminism for no benefit (see DESIGN.md §2). The one concession to
//! parallelism is [`pool::WorkerPool`]: within a single event, embarrassingly
//! parallel per-receiver work may fan out and rejoin behind a barrier, with
//! results merged in a fixed order so runs stay bit-reproducible at any
//! thread count.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod json;
pub mod obs;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{run, Model, RunSummary};
pub use events::EventQueue;
pub use json::Json;
pub use rng::Rng;
pub use time::{Duration, Time};
pub use trace::{Level, TraceEvent, Tracer};
