//! The event queue.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number breaks
//! ties in insertion order, which makes event processing deterministic even
//! when many events share a timestamp.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` due at a given instant.
struct Scheduled<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use parn_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.schedule(Time(20), "later");
/// q.schedule(Time(10), "sooner");
/// assert_eq!(q.pop(), Some((Time(10), "sooner")));
/// assert_eq!(q.now(), Time(10));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics (in debug builds) when scheduling into the past: a simulator
    /// bug that must not be silently reordered.
    pub fn schedule(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), "c");
        q.schedule(Time(10), "a");
        q.schedule(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time(42), ());
        q.pop();
        assert_eq!(q.now(), Time(42));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time(9), 1);
        q.schedule(Time(3), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time(3)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time(10), ());
        q.pop();
        q.schedule(Time(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time(1), 1);
        q.schedule(Time(5), 5);
        assert_eq!(q.pop(), Some((Time(1), 1)));
        q.schedule(Time(3), 3);
        assert_eq!(q.pop(), Some((Time(3), 3)));
        assert_eq!(q.pop(), Some((Time(5), 5)));
    }
}
