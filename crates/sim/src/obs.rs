//! Process-wide counter and timer registry for hot-path observability.
//!
//! Hot paths (SINR re-evaluations, grid gain-cache probes, schedule-window
//! scans, route lookups) live in crates that have no channel for threading a
//! metrics handle through, so the registry is a global: counters are named
//! `&'static` atomics registered on first use and leaked for the life of the
//! process. The design budget is "cheap enough to leave on":
//!
//! * [`counter_inc!`](crate::counter_inc) caches its registered handle in a per-call-site
//!   `OnceLock`, so the steady-state cost is one relaxed atomic add — about a
//!   nanosecond, and free of contention in the single-threaded simulator.
//! * [`time_scope!`](crate::time_scope) adds one `Instant::now()` on entry and one on drop; use
//!   it around phases (build, run, route recompute), not per-event work.
//! * Counters never affect simulation behaviour — they are strictly
//!   write-only from the simulator's perspective, so determinism is
//!   preserved.
//!
//! Snapshots ([`counters_snapshot`], [`timers_snapshot`]) return sorted
//! `(name, value)` pairs for the artifact writer. [`reset`] zeroes all
//! registered slots (the names stay registered), which experiment drivers
//! call between configs so each artifact line reports per-run deltas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A registered timer: total nanoseconds and number of completed scopes.
#[derive(Debug)]
pub struct TimerSlot {
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl TimerSlot {
    const fn new() -> TimerSlot {
        TimerSlot {
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Start a scope; elapsed time is accumulated when the guard drops.
    pub fn start(&'static self) -> TimerGuard {
        TimerGuard {
            slot: self,
            started: Instant::now(),
        }
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Number of completed scopes.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Drop guard returned by [`TimerSlot::start`].
#[must_use = "the scope is timed until this guard drops"]
pub struct TimerGuard {
    slot: &'static TimerSlot,
    started: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos() as u64;
        self.slot.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.slot.count.fetch_add(1, Ordering::Relaxed);
    }
}

struct Registry {
    counters: Mutex<Vec<(&'static str, &'static AtomicU64)>>,
    timers: Mutex<Vec<(&'static str, &'static TimerSlot)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        timers: Mutex::new(Vec::new()),
    })
}

/// Look up or register the counter named `name`.
///
/// The returned atomic lives for the whole process; callers should cache it
/// (as [`counter_inc!`](crate::counter_inc) does) rather than re-resolving by name on a hot path.
pub fn counter(name: &'static str) -> &'static AtomicU64 {
    let mut counters = registry().counters.lock().unwrap();
    if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let slot: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    counters.push((name, slot));
    slot
}

/// Look up or register the timer named `name`.
pub fn timer(name: &'static str) -> &'static TimerSlot {
    let mut timers = registry().timers.lock().unwrap();
    if let Some((_, t)) = timers.iter().find(|(n, _)| *n == name) {
        return t;
    }
    let slot: &'static TimerSlot = Box::leak(Box::new(TimerSlot::new()));
    timers.push((name, slot));
    slot
}

/// Snapshot all counters as `(name, value)`, sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    let counters = registry().counters.lock().unwrap();
    let mut out: Vec<_> = counters
        .iter()
        .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
        .collect();
    out.sort_unstable_by_key(|(n, _)| *n);
    out
}

/// Snapshot all timers as `(name, total_ns, count)`, sorted by name.
pub fn timers_snapshot() -> Vec<(&'static str, u64, u64)> {
    let timers = registry().timers.lock().unwrap();
    let mut out: Vec<_> = timers
        .iter()
        .map(|(n, t)| (*n, t.total_ns(), t.count()))
        .collect();
    out.sort_unstable_by_key(|(n, _, _)| *n);
    out
}

/// Zero every registered counter and timer (names stay registered).
///
/// Experiment drivers call this between configurations so each artifact line
/// carries per-run values rather than process-lifetime accumulations.
pub fn reset() {
    let counters = registry().counters.lock().unwrap();
    for (_, c) in counters.iter() {
        c.store(0, Ordering::Relaxed);
    }
    drop(counters);
    let timers = registry().timers.lock().unwrap();
    for (_, t) in timers.iter() {
        t.total_ns.store(0, Ordering::Relaxed);
        t.count.store(0, Ordering::Relaxed);
    }
}

/// Increment a named counter by 1 (or by an explicit amount).
///
/// The counter handle is resolved once per call site and cached in a local
/// `OnceLock`; after the first hit the cost is a single relaxed atomic add.
///
/// ```
/// parn_sim::counter_inc!("doc.example.hits");
/// parn_sim::counter_inc!("doc.example.bytes", 128);
/// let snap = parn_sim::obs::counters_snapshot();
/// assert!(snap.iter().any(|&(n, v)| n == "doc.example.hits" && v >= 1));
/// ```
#[macro_export]
macro_rules! counter_inc {
    ($name:literal) => {
        $crate::counter_inc!($name, 1)
    };
    ($name:literal, $amount:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static ::std::sync::atomic::AtomicU64> =
            ::std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::obs::counter($name))
            .fetch_add($amount as u64, ::std::sync::atomic::Ordering::Relaxed);
    }};
}

/// Time the rest of the enclosing scope under a named timer.
///
/// Expands to a guard bound to a hidden local; elapsed wall time is added to
/// the timer when the scope exits (including on early return / panic).
///
/// ```
/// fn build() {
///     parn_sim::time_scope!("doc.example.build");
///     // ... work ...
/// }
/// build();
/// let snap = parn_sim::obs::timers_snapshot();
/// assert!(snap.iter().any(|&(n, _, c)| n == "doc.example.build" && c >= 1));
/// ```
#[macro_export]
macro_rules! time_scope {
    ($name:literal) => {
        let _obs_timer_guard = {
            static SLOT: ::std::sync::OnceLock<&'static $crate::obs::TimerSlot> =
                ::std::sync::OnceLock::new();
            SLOT.get_or_init(|| $crate::obs::timer($name)).start()
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the registry is process-global and `cargo test` runs tests in
    // parallel, so every test uses counter/timer names unique to itself and
    // never calls `reset()` (which would race with other tests' counters).

    #[test]
    fn counter_registers_once_and_accumulates() {
        let a = counter("test.obs.alpha");
        let b = counter("test.obs.alpha");
        assert!(std::ptr::eq(a, b));
        a.fetch_add(2, Ordering::Relaxed);
        b.fetch_add(3, Ordering::Relaxed);
        let snap = counters_snapshot();
        let v = snap.iter().find(|(n, _)| *n == "test.obs.alpha").unwrap().1;
        assert_eq!(v, 5);
    }

    #[test]
    fn counter_inc_macro_caches_handle() {
        for _ in 0..10 {
            counter_inc!("test.obs.macro_hits");
        }
        counter_inc!("test.obs.macro_hits", 5);
        let snap = counters_snapshot();
        let v = snap
            .iter()
            .find(|(n, _)| *n == "test.obs.macro_hits")
            .unwrap()
            .1;
        assert_eq!(v, 15);
    }

    #[test]
    fn timer_accumulates_scopes() {
        let t = timer("test.obs.timer");
        {
            let _g = t.start();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _g = t.start();
        }
        assert_eq!(t.count(), 2);
        assert!(t.total_ns() >= 2_000_000);
        let snap = timers_snapshot();
        let (_, total, count) = *snap
            .iter()
            .find(|(n, _, _)| *n == "test.obs.timer")
            .unwrap();
        assert_eq!(count, 2);
        assert_eq!(total, t.total_ns());
    }

    #[test]
    fn time_scope_macro_times_enclosing_scope() {
        fn work() {
            time_scope!("test.obs.scope");
        }
        work();
        work();
        let snap = timers_snapshot();
        let (_, _, count) = *snap
            .iter()
            .find(|(n, _, _)| *n == "test.obs.scope")
            .unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn snapshot_is_sorted() {
        counter("test.obs.zz");
        counter("test.obs.aa");
        let snap = counters_snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
