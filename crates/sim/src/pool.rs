//! A small persistent worker pool with a scoped-borrow, barrier-style API.
//!
//! The far-field SINR sweep (see `parn-phys`) partitions its per-cell work
//! into shards and wants to run them on threads *without* respawning OS
//! threads on every simulated transmission (a sweep fires millions of times
//! per run, and fresh threads would also lose the per-thread gain caches).
//! `std::thread::scope` spawns per call, so this module provides the same
//! borrow-friendly contract on top of long-lived workers:
//!
//! * [`WorkerPool::run`] accepts closures that may borrow from the caller's
//!   stack, dispatches all but the first to the workers, runs the first on
//!   the calling thread, and **blocks until every job has finished** before
//!   returning. That barrier is what makes lending non-`'static` borrows to
//!   the workers sound (the borrows cannot outlive the call).
//! * Results come back in job order regardless of which worker ran what, so
//!   callers get a stable reduction order for free.
//! * A panic inside any job is re-raised on the calling thread — after the
//!   barrier, so no job is ever left running against a dead stack frame.
//!
//! The pool is deliberately dumb: one `mpsc` channel per worker, round-robin
//! assignment, no work stealing. Shards are pre-balanced by the caller, and
//! determinism matters more than utilisation here.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// A job with its lifetime erased; see the safety argument in [`WorkerPool::run`].
type ErasedJob = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

/// A finished job's payload: its return value or the panic it raised.
type JobOutcome = Result<Box<dyn Any + Send>, Box<dyn Any + Send>>;

/// What a worker sends back: the job's index and its outcome.
type JobResult = (usize, JobOutcome);

struct Inner {
    /// One submission channel per worker (round-robin assignment).
    job_txs: Vec<mpsc::Sender<(usize, ErasedJob)>>,
    /// Shared completion channel all workers report into.
    done_rx: mpsc::Receiver<JobResult>,
}

/// Persistent worker threads executing borrowed jobs behind a per-call barrier.
///
/// See the [module docs](self) for the contract. The pool holds `workers`
/// OS threads for its whole lifetime; dropping the pool shuts them down and
/// joins them.
pub struct WorkerPool {
    /// `Mutex` both for interior mutability (`Receiver` is not `Sync`) and to
    /// serialise concurrent `run` calls, which keeps job/result matching sound.
    inner: Option<Mutex<Inner>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (clamped to at least 1).
    ///
    /// A caller that wants `t`-way parallelism should spawn `t - 1` workers
    /// and let [`WorkerPool::run`] use the calling thread as the `t`-th lane.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (done_tx, done_rx) = mpsc::channel::<JobResult>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<(usize, ErasedJob)>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("parn-pool-{w}"))
                .spawn(move || {
                    while let Ok((idx, job)) = job_rx.recv() {
                        let result = catch_unwind(AssertUnwindSafe(job));
                        if done_tx.send((idx, result)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn pool worker");
            job_txs.push(job_tx);
            handles.push(handle);
        }
        WorkerPool {
            inner: Some(Mutex::new(Inner { job_txs, done_rx })),
            handles,
        }
    }

    /// Number of worker threads (not counting the caller's lane).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `jobs` to completion and return their results in job order.
    ///
    /// Job 0 runs on the calling thread; the rest are dispatched round-robin
    /// to the workers. The call returns only after *every* job has completed,
    /// and re-raises the first panic (by job order) after that barrier.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send,
    {
        let mut jobs = jobs;
        if jobs.is_empty() {
            return Vec::new();
        }
        if jobs.len() == 1 {
            let job = jobs.pop().unwrap();
            return vec![job()];
        }
        let inner = self
            .inner
            .as_ref()
            .expect("pool used after shutdown")
            .lock()
            .unwrap();
        let n = jobs.len();
        let mut results: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
        let mut drained = jobs.drain(..);
        let first = drained.next().unwrap();
        for (i, job) in drained.enumerate() {
            let idx = i + 1;
            let erased: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send + '_> =
                Box::new(move || Box::new(job()) as Box<dyn Any + Send>);
            // SAFETY: only the trait object's lifetime parameter is changed;
            // the layout of `Box<dyn FnOnce ...>` is identical. The closure
            // may borrow from the caller's stack, but this function blocks
            // (below) until the worker has reported the job's completion, so
            // the borrow cannot be outlived. The `Mutex` around `Inner`
            // serialises concurrent `run` calls, so completions on the shared
            // channel always belong to this call.
            let erased: ErasedJob = unsafe { std::mem::transmute(erased) };
            inner.job_txs[i % inner.job_txs.len()]
                .send((idx, erased))
                .expect("pool worker exited unexpectedly");
        }
        // The caller's thread is lane 0; running it after dispatch overlaps
        // with the workers.
        results[0] =
            Some(catch_unwind(AssertUnwindSafe(first)).map(|v| Box::new(v) as Box<dyn Any + Send>));
        for _ in 1..n {
            let (idx, result) = inner
                .done_rx
                .recv()
                .expect("pool worker exited unexpectedly");
            results[idx] = Some(result);
        }
        drop(inner);
        // Barrier passed: every job is done. Now surface panics (first by
        // job order, for determinism) and unpack results.
        let mut out = Vec::with_capacity(n);
        for slot in results {
            match slot.expect("every job reports exactly once") {
                Ok(value) => out.push(*value.downcast::<T>().expect("job result type")),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.inner = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_jobs_and_preserves_order() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<_> = (0..10u64).map(|i| move || i * i).collect();
        assert_eq!(
            pool.run(jobs),
            (0..10u64).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jobs_may_borrow_from_the_callers_stack() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(137).collect();
        let jobs: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let chunk: &[u64] = chunk;
                move || chunk.iter().sum::<u64>()
            })
            .collect();
        let total: u64 = pool.run(jobs).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn result_is_independent_of_worker_count() {
        let reference: Vec<u64> = (0..40u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        for workers in [1, 2, 7] {
            let pool = WorkerPool::new(workers);
            let jobs: Vec<_> = (0..40u64).map(|i| move || i.wrapping_mul(0x9e37)).collect();
            assert_eq!(pool.run(jobs), reference, "workers={workers}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        let pool = WorkerPool::new(2);
        for round in 0..100u64 {
            let jobs: Vec<_> = (0..4u64).map(|i| move || round + i).collect();
            assert_eq!(pool.run(jobs), vec![round, round + 1, round + 2, round + 3]);
        }
    }

    #[test]
    fn single_job_runs_inline() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.run(vec![|| 7u32]), vec![7]);
    }

    #[test]
    #[should_panic(expected = "job 2 panicked")]
    fn job_panics_propagate_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| 2),
            Box::new(|| panic!("job 2 panicked")),
        ];
        pool.run(jobs);
    }
}
