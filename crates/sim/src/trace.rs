//! Lightweight event tracing.
//!
//! A bounded in-memory trace of `(time, category, message)` records. Traces
//! are cheap to keep off (a disabled tracer does no formatting) and useful
//! both in tests (assert that an event sequence occurred) and when debugging
//! protocol behaviour.

use crate::time::Time;
use std::fmt;

/// Severity/kind of a trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose per-event detail.
    Debug,
    /// Normal protocol milestones.
    Info,
    /// Anomalies worth surfacing.
    Warn,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Simulated time of the event.
    pub time: Time,
    /// Record severity.
    pub level: Level,
    /// Static category tag (e.g. `"mac"`, `"phy"`).
    pub category: &'static str,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} {}] {}",
            self.time, self.level, self.category, self.message
        )
    }
}

/// A bounded ring-buffer trace sink.
pub struct Tracer {
    enabled: bool,
    min_level: Level,
    capacity: usize,
    records: Vec<Record>,
    dropped: u64,
    echo: bool,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that stores nothing.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            min_level: Level::Warn,
            capacity: 0,
            records: Vec::new(),
            dropped: 0,
            echo: false,
        }
    }

    /// A tracer keeping the last `capacity` records at or above `min_level`.
    pub fn new(capacity: usize, min_level: Level) -> Tracer {
        Tracer {
            enabled: true,
            min_level,
            capacity,
            records: Vec::new(),
            dropped: 0,
            echo: false,
        }
    }

    /// Also print each record to stdout as it is traced.
    pub fn with_echo(mut self) -> Tracer {
        self.echo = true;
        self
    }

    /// Whether records at `level` would be kept — callers can use this to
    /// skip building expensive messages.
    #[inline]
    pub fn wants(&self, level: Level) -> bool {
        self.enabled && level >= self.min_level
    }

    /// Record an event. `message` is only invoked when the record is kept.
    pub fn emit<F: FnOnce() -> String>(
        &mut self,
        time: Time,
        level: Level,
        category: &'static str,
        message: F,
    ) {
        if !self.wants(level) {
            return;
        }
        let rec = Record {
            time,
            level,
            category,
            message: message(),
        };
        if self.echo {
            println!("{rec}");
        }
        if self.records.len() >= self.capacity {
            // Ring behaviour: drop the oldest.
            if !self.records.is_empty() {
                self.records.remove(0);
            }
            self.dropped += 1;
        }
        if self.capacity > 0 {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Records filtered by category.
    pub fn by_category(&self, category: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.category == category)
            .collect()
    }

    /// Number of records dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stores_nothing() {
        let mut t = Tracer::disabled();
        t.emit(Time(1), Level::Warn, "x", || "boom".into());
        assert!(t.records().is_empty());
        assert!(!t.wants(Level::Warn));
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(10, Level::Info);
        t.emit(Time(1), Level::Debug, "a", || "d".into());
        t.emit(Time(2), Level::Info, "a", || "i".into());
        t.emit(Time(3), Level::Warn, "b", || "w".into());
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].message, "i");
        assert_eq!(t.by_category("b").len(), 1);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Tracer::new(3, Level::Debug);
        for i in 0..5 {
            t.emit(Time(i), Level::Info, "c", || format!("m{i}"));
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.records()[0].message, "m2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn lazy_message_not_built_when_filtered() {
        let mut t = Tracer::new(10, Level::Warn);
        let mut called = false;
        t.emit(Time(1), Level::Debug, "c", || {
            called = true;
            String::new()
        });
        assert!(!called);
    }

    #[test]
    fn display_format() {
        let r = Record {
            time: Time::from_secs(1),
            level: Level::Info,
            category: "mac",
            message: "hello".into(),
        };
        assert_eq!(format!("{r}"), "[1.000000s Info mac] hello");
    }
}
