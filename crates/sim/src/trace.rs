//! Typed, bounded event tracing.
//!
//! A trace is a ring of [`Record`]s, each holding a structured
//! [`TraceEvent`] rather than a pre-rendered string: a disabled tracer (or a
//! filtered level) costs one branch — no formatting, no allocation — which
//! the `trace_zero_cost` integration test verifies with a counting
//! allocator. Events render to text only on demand (`Display`), e.g. when
//! the CLI echoes them or a test inspects them.
//!
//! Use the [`crate::trace_event!`] macro at emission sites: it checks
//! [`Tracer::wants`] *before* evaluating the event expression, so arguments
//! that are expensive to compute (or that allocate, like [`TraceEvent::Note`]
//! messages) are never touched on the disabled path.

use crate::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// Severity/kind of a trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose per-event detail.
    Debug,
    /// Normal protocol milestones.
    Info,
    /// Anomalies worth surfacing.
    Warn,
}

/// A structured trace event.
///
/// The variants cover the protocol milestones the simulator emits today;
/// [`TraceEvent::Note`] is the escape hatch for one-off annotations. Each
/// variant maps to a stable category string (see [`TraceEvent::category`])
/// used for filtering in tests and tooling.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// The MAC committed a packet to a future transmit window.
    MacPlanned {
        /// Transmitting station.
        station: usize,
        /// Packet id.
        packet: u64,
        /// Chosen next hop.
        next_hop: usize,
        /// Scheduled transmission start.
        start: Time,
    },
    /// A transmission attempt completed at the PHY.
    HopOutcome {
        /// Transmitting station.
        src: usize,
        /// Intended receiver.
        dst: usize,
        /// Packet id.
        packet: u64,
        /// Whether the receiver captured the packet.
        success: bool,
    },
    /// A station went permanently silent (injected failure).
    StationFailed {
        /// The failed station.
        station: usize,
    },
    /// A scripted fault struck a station (crash / clock jump / jammer
    /// window opening).
    FaultInjected {
        /// The afflicted station (jam: the jammer's anchor).
        station: usize,
        /// Fault tag (`"crash"`, `"clock_jump"`, `"jam"`).
        kind: &'static str,
    },
    /// Local failure detection: an observer saw enough consecutive hop
    /// failures to suspect a neighbor.
    NeighborSuspected {
        /// The suspecting station.
        observer: usize,
        /// The neighbor under suspicion.
        suspect: usize,
    },
    /// Local failure detection: a suspected neighbor kept failing past
    /// the eviction timeout and was removed from the routing view.
    NeighborEvicted {
        /// The evicting station.
        observer: usize,
        /// The evicted neighbor.
        evicted: usize,
    },
    /// A crashed station rebooted and rejoined with a fresh clock and
    /// schedule.
    StationRecovered {
        /// The rebooted station.
        station: usize,
    },
    /// Distributed routing: a station put a distance-vector advertisement
    /// on the air.
    RouteUpdateSent {
        /// The advertising station.
        station: usize,
        /// The neighbor addressed.
        neighbor: usize,
        /// Packet id of the update.
        packet: u64,
    },
    /// Distributed routing: a convergence episode quiesced — no table
    /// changed anywhere for the configured quiet period.
    RouteConverged {
        /// 1-based episode number within the run.
        episode: u64,
        /// Time of the last table change in the episode.
        quiesced_at: Time,
    },
    /// A geographic partition transient ended: the shadowing cut lifted
    /// and gains across it are restored.
    PartitionHealed {
        /// Index of the partition fault in the run's fault plan.
        index: usize,
    },
    /// Byzantine misbehavior detected and neutralized: the observer
    /// rejected provably poisoned distance-vector entries from a sender.
    ViolationDetected {
        /// The detecting station.
        observer: usize,
        /// The misbehaving sender.
        source: usize,
    },
    /// A budget-limited reactive jammer fired one burst against an
    /// ongoing reception.
    ReactiveJamBurst {
        /// The jammer's anchor station.
        station: usize,
        /// The receiver whose reception is being jammed.
        target: usize,
    },
    /// A motion epoch relocated a station (dynamic topology).
    StationMoved {
        /// The moved station.
        station: usize,
    },
    /// A departed station was re-admitted by the churn plan (at a new
    /// position, or back at its old one after a timed outage).
    StationJoined {
        /// The joining station.
        station: usize,
    },
    /// A station cleanly left the network per the churn plan.
    StationLeft {
        /// The departing station.
        station: usize,
    },
    /// Free-form annotation under a caller-chosen category.
    Note {
        /// Category tag (e.g. `"route"`).
        category: &'static str,
        /// Rendered message.
        message: String,
    },
}

impl TraceEvent {
    /// Stable category tag for filtering (`"mac"`, `"phy"`, `"fail"`,
    /// `"fault"`, `"heal"`, `"route"`, `"topo"`, or the note's own
    /// category).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::MacPlanned { .. } => "mac",
            TraceEvent::HopOutcome { .. } => "phy",
            TraceEvent::StationFailed { .. } => "fail",
            TraceEvent::FaultInjected { .. } => "fault",
            TraceEvent::NeighborSuspected { .. }
            | TraceEvent::NeighborEvicted { .. }
            | TraceEvent::StationRecovered { .. } => "heal",
            TraceEvent::RouteUpdateSent { .. } | TraceEvent::RouteConverged { .. } => "route",
            TraceEvent::PartitionHealed { .. }
            | TraceEvent::ViolationDetected { .. }
            | TraceEvent::ReactiveJamBurst { .. } => "fault",
            TraceEvent::StationMoved { .. }
            | TraceEvent::StationJoined { .. }
            | TraceEvent::StationLeft { .. } => "topo",
            TraceEvent::Note { category, .. } => category,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::MacPlanned {
                station,
                packet,
                next_hop,
                start,
            } => write!(
                f,
                "station {station} planned pkt {packet} -> {next_hop} at {start}"
            ),
            TraceEvent::HopOutcome {
                src,
                dst,
                packet,
                success,
            } => write!(
                f,
                "pkt {packet} {src} -> {dst}: {}",
                if *success { "received" } else { "failed" }
            ),
            TraceEvent::StationFailed { station } => write!(f, "station {station} failed"),
            TraceEvent::FaultInjected { station, kind } => {
                write!(f, "fault {kind} injected at station {station}")
            }
            TraceEvent::NeighborSuspected { observer, suspect } => {
                write!(f, "station {observer} suspects neighbor {suspect}")
            }
            TraceEvent::NeighborEvicted { observer, evicted } => {
                write!(f, "station {observer} evicted neighbor {evicted}")
            }
            TraceEvent::StationRecovered { station } => {
                write!(f, "station {station} recovered")
            }
            TraceEvent::RouteUpdateSent {
                station,
                neighbor,
                packet,
            } => write!(
                f,
                "station {station} advertised routes to {neighbor} (pkt {packet})"
            ),
            TraceEvent::RouteConverged {
                episode,
                quiesced_at,
            } => write!(f, "routing converged (episode {episode}) at {quiesced_at}"),
            TraceEvent::PartitionHealed { index } => {
                write!(f, "partition (fault {index}) healed")
            }
            TraceEvent::ViolationDetected { observer, source } => {
                write!(
                    f,
                    "station {observer} rejected poisoned routes from {source}"
                )
            }
            TraceEvent::ReactiveJamBurst { station, target } => {
                write!(f, "reactive jammer at {station} burst against rx {target}")
            }
            TraceEvent::StationMoved { station } => write!(f, "station {station} moved"),
            TraceEvent::StationJoined { station } => write!(f, "station {station} joined"),
            TraceEvent::StationLeft { station } => write!(f, "station {station} left"),
            TraceEvent::Note { message, .. } => f.write_str(message),
        }
    }
}

/// One trace record: a timestamped, levelled [`TraceEvent`].
#[derive(Clone, Debug)]
pub struct Record {
    /// Simulated time of the event.
    pub time: Time,
    /// Record severity.
    pub level: Level,
    /// The structured event.
    pub event: TraceEvent,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} {}] {}",
            self.time,
            self.level,
            self.event.category(),
            self.event
        )
    }
}

/// A bounded ring-buffer trace sink.
pub struct Tracer {
    enabled: bool,
    min_level: Level,
    capacity: usize,
    records: VecDeque<Record>,
    dropped: u64,
    echo: bool,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that stores nothing.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            min_level: Level::Warn,
            capacity: 0,
            records: VecDeque::new(),
            dropped: 0,
            echo: false,
        }
    }

    /// A tracer keeping the last `capacity` records at or above `min_level`.
    pub fn new(capacity: usize, min_level: Level) -> Tracer {
        Tracer {
            enabled: true,
            min_level,
            capacity,
            records: VecDeque::new(),
            dropped: 0,
            echo: false,
        }
    }

    /// Also print each record to stdout as it is traced.
    pub fn with_echo(mut self) -> Tracer {
        self.echo = true;
        self
    }

    /// Whether records at `level` would be kept — [`crate::trace_event!`]
    /// checks this before building the event, so a disabled tracer pays one
    /// branch and nothing else.
    #[inline]
    pub fn wants(&self, level: Level) -> bool {
        self.enabled && level >= self.min_level
    }

    /// Store a pre-built event.
    ///
    /// Prefer [`crate::trace_event!`], which skips event construction when
    /// the record would be filtered; calling `record` directly still filters
    /// correctly but has already paid for the event.
    pub fn record(&mut self, time: Time, level: Level, event: TraceEvent) {
        if !self.wants(level) {
            return;
        }
        let rec = Record { time, level, event };
        if self.echo {
            println!("{rec}");
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Record a [`TraceEvent::Note`]; the message closure is only invoked
    /// when the record is kept.
    pub fn note<F: FnOnce() -> String>(
        &mut self,
        time: Time,
        level: Level,
        category: &'static str,
        message: F,
    ) {
        if !self.wants(level) {
            return;
        }
        self.record(
            time,
            level,
            TraceEvent::Note {
                category,
                message: message(),
            },
        );
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> &VecDeque<Record> {
        &self.records
    }

    /// Retained records filtered by category.
    pub fn by_category(&self, category: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.event.category() == category)
            .collect()
    }

    /// Number of records dropped due to capacity (or a zero-capacity sink).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Trace a [`TraceEvent`] if the tracer wants `level`.
///
/// The event expression is evaluated **only** when the record will be kept,
/// so emission sites can build events (including allocating `Note` messages)
/// with zero cost on the disabled path:
///
/// ```
/// use parn_sim::trace::{Level, TraceEvent, Tracer};
/// use parn_sim::{trace_event, Time};
///
/// let mut t = Tracer::new(8, Level::Info);
/// trace_event!(t, Time(5), Level::Info, TraceEvent::HopOutcome {
///     src: 0, dst: 1, packet: 42, success: true,
/// });
/// assert_eq!(t.records().len(), 1);
///
/// let mut off = Tracer::disabled();
/// trace_event!(off, Time(5), Level::Warn, TraceEvent::Note {
///     category: "x",
///     message: "never built".to_string(), // not evaluated
/// });
/// assert!(off.records().is_empty());
/// ```
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $time:expr, $level:expr, $event:expr) => {
        if $tracer.wants($level) {
            $tracer.record($time, $level, $event);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(i: u64) -> TraceEvent {
        TraceEvent::Note {
            category: "c",
            message: format!("m{i}"),
        }
    }

    #[test]
    fn disabled_stores_nothing() {
        let mut t = Tracer::disabled();
        t.record(
            Time(1),
            Level::Warn,
            TraceEvent::StationFailed { station: 3 },
        );
        assert!(t.records().is_empty());
        assert!(!t.wants(Level::Warn));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(10, Level::Info);
        t.record(Time(1), Level::Debug, note(0));
        t.record(
            Time(2),
            Level::Info,
            TraceEvent::MacPlanned {
                station: 1,
                packet: 7,
                next_hop: 2,
                start: Time(10),
            },
        );
        t.record(
            Time(3),
            Level::Warn,
            TraceEvent::StationFailed { station: 9 },
        );
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].event.category(), "mac");
        assert_eq!(t.by_category("fail").len(), 1);
        assert!(t.by_category("c").is_empty());
    }

    #[test]
    fn ring_never_exceeds_capacity_and_drops_oldest() {
        let mut t = Tracer::new(3, Level::Debug);
        for i in 0..100 {
            t.record(Time(i), Level::Info, note(i));
            assert!(t.records().len() <= 3, "ring exceeded capacity");
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.records()[0].event.to_string(), "m97");
        assert_eq!(t.records()[2].event.to_string(), "m99");
        assert_eq!(t.dropped(), 97);
    }

    #[test]
    fn macro_skips_event_construction_when_filtered() {
        let mut t = Tracer::new(10, Level::Warn);
        let mut built = false;
        trace_event!(t, Time(1), Level::Debug, {
            built = true;
            note(0)
        });
        assert!(!built);
        assert!(t.records().is_empty());
    }

    #[test]
    fn note_closure_is_lazy() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.note(Time(1), Level::Warn, "c", || {
            called = true;
            String::new()
        });
        assert!(!called);
    }

    #[test]
    fn display_formats() {
        let r = Record {
            time: Time::from_secs(1),
            level: Level::Info,
            event: TraceEvent::Note {
                category: "mac",
                message: "hello".into(),
            },
        };
        assert_eq!(format!("{r}"), "[1.000000s Info mac] hello");
        let e = TraceEvent::HopOutcome {
            src: 2,
            dst: 5,
            packet: 11,
            success: false,
        };
        assert_eq!(e.to_string(), "pkt 11 2 -> 5: failed");
        let e = TraceEvent::MacPlanned {
            station: 1,
            packet: 7,
            next_hop: 2,
            start: Time::from_secs(2),
        };
        assert_eq!(e.to_string(), "station 1 planned pkt 7 -> 2 at 2.000000s");
    }

    #[test]
    fn zero_capacity_counts_drops() {
        let mut t = Tracer::new(0, Level::Debug);
        t.record(Time(1), Level::Info, note(1));
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
