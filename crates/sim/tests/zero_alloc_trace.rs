//! Regression test: the observability layer must be free when it is off.
//!
//! A counting global allocator wraps the system allocator; the test then
//! drives the disabled-tracer path and the warmed-up counter/timer macros
//! and asserts that *zero* heap allocations happen. This pins down the
//! two guarantees the hot paths rely on:
//!
//! * `trace_event!` must not evaluate (and therefore not format or
//!   allocate) its event expression when the tracer filters the level;
//! * `counter_inc!` / `time_scope!` after their one-time registration
//!   cost exactly one relaxed atomic op, never an allocation.
//!
//! All assertions live in a single `#[test]` so no parallel test can
//! perturb the allocation counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use parn_sim::trace::{Level, TraceEvent, Tracer};
use parn_sim::{counter_inc, time_scope, trace_event, Time};

struct CountingAlloc;

// Per-thread count: the libtest harness thread allocates at its own
// rhythm, so a process-global counter would be flaky. Const-initialized
// TLS so the counter itself never allocates; `try_with` so the allocator
// stays safe during thread teardown.
thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    TL_ALLOCS.try_with(|c| c.get()).unwrap_or(0)
}

#[test]
fn disabled_observability_is_allocation_free() {
    // -- disabled tracer: the event expression must never run -----------
    let mut tracer = Tracer::disabled();
    let mut evaluated = 0u32;

    let before = alloc_count();
    for i in 0..10_000u64 {
        trace_event!(tracer, Time::ZERO, Level::Debug, {
            // Were this expression evaluated, it would both bump the
            // side-effect counter and heap-allocate a formatted String.
            evaluated += 1;
            TraceEvent::Note {
                category: "hot",
                message: format!("expensive formatting of step {i}"),
            }
        });
    }
    let after = alloc_count();
    assert_eq!(evaluated, 0, "filtered trace_event! evaluated its event");
    assert_eq!(
        after - before,
        0,
        "disabled tracer allocated on the hot path"
    );
    assert!(tracer.records().is_empty());

    // Same guarantee for an enabled-but-filtering tracer: Warn threshold
    // drops Debug events without constructing them.
    let mut warn_tracer = Tracer::new(8, Level::Warn);
    let before = alloc_count();
    for _ in 0..10_000u64 {
        trace_event!(warn_tracer, Time::ZERO, Level::Debug, {
            evaluated += 1;
            TraceEvent::StationFailed { station: 0 }
        });
    }
    let after = alloc_count();
    assert_eq!(evaluated, 0, "level-filtered event was still constructed");
    assert_eq!(after - before, 0, "level filtering allocated");

    // Lazy notes: the closure must not run when filtered.
    let before = alloc_count();
    for _ in 0..10_000u64 {
        warn_tracer.note(Time::ZERO, Level::Debug, "hot", || {
            format!("never built {}", alloc_count())
        });
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "filtered note() allocated");

    // -- counters and timers: steady state is one atomic op -------------
    // First use pays a one-time registration (Box::leak + registry push);
    // warm both macros up, then measure the steady state.
    counter_inc!("test.zero_alloc.counter");
    {
        time_scope!("test.zero_alloc.timer");
    }

    let before = alloc_count();
    for _ in 0..10_000u64 {
        counter_inc!("test.zero_alloc.counter");
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "warm counter_inc! allocated");

    let before = alloc_count();
    for _ in 0..10_000u64 {
        time_scope!("test.zero_alloc.timer");
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "warm time_scope! allocated");
}
