//! Noise growth as the system scales (paper §4, Figure 1).
//!
//! With `M` stations of unit transmit power and duty cycle η scattered
//! uniformly (density ρ) in a disk of radius `R`, the interference power at
//! a central receiver — integrating `1/r²` loss over the annulus from the
//! local-exclusion radius `R₀ = 1/(2√ρ)` to `R` — is
//!
//! ```text
//! N = 2π·κ·ρ·η·ln(R/R₀) ≈ π·κ·ρ·η·ln M        (Eq. 11–13)
//! ```
//!
//! and the signal from a characteristic neighbour at distance `1/√ρ`
//! (π ≈ 3 expected stations within that range, §6) is `S = κ·ρ`, giving
//!
//! ```text
//! S/N ≈ 1 / (π·η·ln M)                         (Eq. 15)
//! ```
//!
//! — declining only with the *logarithm* of the station count: ≈ −20 dB at
//! M = 10¹², η = 1. (OCR note: the published text's constants are garbled;
//! this form reproduces every numeric anchor in the prose — −20 dB at
//! 10¹²/η=1, −14 dB at η=0.25, 14 and 56 bit/s/kHz — see EXPERIMENTS.md.)
//!
//! The module also exposes the divergent infinite-plane integral (the
//! "Olbers' paradox" observation) and the exact finite-annulus form used to
//! cross-check Monte-Carlo placements.

use std::f64::consts::PI;

/// The paper's Eq. 15: expected SNR of a transmission from a neighbour at
/// the characteristic distance `1/√ρ`, in a uniform system of `m` stations
/// at transmit duty cycle `eta`. Scale-free (independent of ρ and area).
///
/// ```
/// use parn_phys::noise::snr_vs_scale;
/// // A trillion stations at full duty: about -19.4 dB — the paper's
/// // "approaching -20 dB".
/// let snr = snr_vs_scale(1.0, 1e12);
/// assert!((10.0 * snr.log10() + 19.4).abs() < 0.1);
/// ```
pub fn snr_vs_scale(eta: f64, m: f64) -> f64 {
    debug_assert!(eta > 0.0 && m > 1.0);
    1.0 / (PI * eta * m.ln())
}

/// Eq. 15 in decibels.
pub fn snr_vs_scale_db(eta: f64, m: f64) -> f64 {
    10.0 * snr_vs_scale(eta, m).log10()
}

/// Exact expected interference power at the center of an annulus
/// `[r0, r1]` filled with transmitters of density `rho`, each at power
/// `p` and duty cycle `eta`, under `κ/r²` loss (Eq. 11–12):
/// `N = 2π·κ·ρ·η·p·ln(r1/r0)`.
pub fn annulus_interference(kappa: f64, rho: f64, eta: f64, p: f64, r0: f64, r1: f64) -> f64 {
    debug_assert!(r1 >= r0 && r0 > 0.0);
    2.0 * PI * kappa * rho * eta * p * (r1 / r0).ln()
}

/// The paper's local-exclusion radius `R₀ = 1/(2√ρ)` (footnote 7): sources
/// closer than this are "clearly local" and handled by the access scheme,
/// not the din statistics.
pub fn exclusion_radius(rho: f64) -> f64 {
    debug_assert!(rho > 0.0);
    1.0 / (2.0 * rho.sqrt())
}

/// Disk radius holding `m` stations at density `rho`.
pub fn disk_radius(m: f64, rho: f64) -> f64 {
    (m / (PI * rho)).sqrt()
}

/// The exact (un-approximated) SNR for a neighbour at distance `d`, in a
/// disk of `m` stations at density `rho`, duty cycle `eta`, unit powers:
/// `S = κ/d²` over `N = 2π·κ·ρ·η·ln(R/R₀)`.
pub fn snr_exact(eta: f64, m: f64, rho: f64, d: f64) -> f64 {
    let r0 = exclusion_radius(rho);
    let r = disk_radius(m, rho);
    let s = 1.0 / (d * d);
    let n = 2.0 * PI * rho * eta * (r / r0).ln();
    s / n
}

/// Partial sums of the infinite-plane interference integral out to radius
/// `r` (relative to `r0`): demonstrates the logarithmic divergence the
/// paper opens §4 with ("the integral just barely diverges").
pub fn infinite_plane_partial(rho: f64, eta: f64, r0: f64, r: f64) -> f64 {
    annulus_interference(1.0, rho, eta, 1.0, r0, r)
}

/// A row of the Figure 1 data: `(log10(M), snr_db per eta)`.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// log₁₀ of the station count.
    pub log10_m: f64,
    /// SNR in dB for each duty cycle, in the same order as the `etas`
    /// passed to [`figure1`].
    pub snr_db: Vec<f64>,
}

/// Generate the Figure 1 family of curves: SNR vs log₁₀(M) for the given
/// duty cycles, sampled at every integer decade in `[decade_lo, decade_hi]`.
pub fn figure1(etas: &[f64], decade_lo: u32, decade_hi: u32) -> Vec<Fig1Row> {
    (decade_lo..=decade_hi)
        .map(|d| {
            let m = 10f64.powi(d as i32);
            Fig1Row {
                log10_m: d as f64,
                snr_db: etas.iter().map(|&e| snr_vs_scale_db(e, m)).collect(),
            }
        })
        .collect()
}

/// Throughput-neutrality of the duty cycle (§4): in the low-SNR regime the
/// achievable rate while transmitting is ∝ SNR ∝ 1/η, but air time is ∝ η,
/// so net throughput is ~constant. Returns relative net throughput
/// (rate × η), normalized so η = 1 gives 1.0, for comparison across η.
pub fn relative_net_throughput(eta: f64, m: f64) -> f64 {
    let rate = (1.0 + snr_vs_scale(eta, m)).log2();
    let rate_at_1 = (1.0 + snr_vs_scale(1.0, m)).log2();
    eta * rate / rate_at_1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq15_anchor_minus_20db_at_1e12() {
        // Paper: "approaching −20 dB for η = 1 as the number of stations
        // approaches 10¹²".
        let db = snr_vs_scale_db(1.0, 1e12);
        assert!((-20.5..=-19.0).contains(&db), "got {db} dB");
    }

    #[test]
    fn eq15_anchor_low_eta_small_m() {
        // Figure 1's top-left: η = 0.05 at M = 10 sits near +4..5 dB.
        let db = snr_vs_scale_db(0.05, 10.0);
        assert!((4.0..=5.0).contains(&db), "got {db} dB");
    }

    #[test]
    fn quarter_duty_gains_6db() {
        // §4: "at η = 0.25 the SNR is better by a factor of four, +6 dB".
        let gain = snr_vs_scale_db(0.25, 1e12) - snr_vs_scale_db(1.0, 1e12);
        assert!((gain - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn snr_declines_slowly() {
        // Growing M by 10^6 × costs only a few dB.
        let drop = snr_vs_scale_db(1.0, 1e6) - snr_vs_scale_db(1.0, 1e12);
        assert!((2.9..=3.1).contains(&drop), "drop {drop} dB");
    }

    #[test]
    fn snr_monotonic_in_m_and_eta() {
        assert!(snr_vs_scale(0.5, 1e3) > snr_vs_scale(0.5, 1e6));
        assert!(snr_vs_scale(0.1, 1e6) > snr_vs_scale(0.5, 1e6));
    }

    #[test]
    fn annulus_integral_closed_form() {
        // Doubling the outer radius adds a fixed increment: N(r0,4) − N(r0,2)
        // = 2πρη ln 2.
        let a = annulus_interference(1.0, 0.01, 0.5, 1.0, 1.0, 2.0);
        let b = annulus_interference(1.0, 0.01, 0.5, 1.0, 1.0, 4.0);
        let inc = b - a;
        let expected = 2.0 * PI * 0.01 * 0.5 * std::f64::consts::LN_2;
        assert!((inc - expected).abs() < 1e-12);
    }

    #[test]
    fn infinite_plane_diverges_logarithmically() {
        // Partial sums grow without bound, but painfully slowly — each
        // decade of radius adds the same amount.
        let per_decade: Vec<f64> = (0..5)
            .map(|k| {
                infinite_plane_partial(0.01, 1.0, 1.0, 10f64.powi(k + 1))
                    - infinite_plane_partial(0.01, 1.0, 1.0, 10f64.powi(k))
            })
            .collect();
        for w in per_decade.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "decades differ: {w:?}");
        }
        assert!(per_decade[0] > 0.0);
    }

    #[test]
    fn exact_vs_approx_at_characteristic_distance() {
        // The exact annulus SNR at d = 1/√ρ should track Eq. 15 within a dB
        // or so for large M (the approximation drops a ln(4/π)/ln M term).
        let rho: f64 = 1e-4;
        let m = 1e9;
        let d = 1.0 / rho.sqrt();
        let exact = snr_exact(1.0, m, rho, d);
        let approx = snr_vs_scale(1.0, m);
        let diff_db = 10.0 * (exact / approx).log10();
        assert!(diff_db.abs() < 1.0, "diff {diff_db} dB");
    }

    #[test]
    fn exact_snr_scale_free() {
        // Changing ρ (with d scaled accordingly) must not change the SNR.
        let m = 1e6;
        let a = snr_exact(0.5, m, 1e-2, 10.0);
        let b = snr_exact(0.5, m, 1e-6, 1000.0);
        assert!((a - b).abs() / a < 1e-12);
    }

    #[test]
    fn figure1_shape() {
        let rows = figure1(&[0.05, 0.1, 0.2, 0.5, 1.0], 1, 12);
        assert_eq!(rows.len(), 12);
        for row in &rows {
            // Lower duty cycle ⇒ higher SNR, strictly ordered.
            for pair in row.snr_db.windows(2) {
                assert!(pair[0] > pair[1], "row {row:?}");
            }
        }
        // Curves decline along M.
        for c in 0..5 {
            for w in rows.windows(2) {
                assert!(w[0].snr_db[c] > w[1].snr_db[c]);
            }
        }
    }

    #[test]
    fn duty_cycle_throughput_neutral_when_noisy() {
        // §4: "no gain in throughput by further reducing the transmit duty
        // cycle in a large noisy system" — at M = 10¹², halving η from 0.5
        // to 0.25 changes net throughput by only a few percent.
        let t50 = relative_net_throughput(0.5, 1e12);
        let t25 = relative_net_throughput(0.25, 1e12);
        assert!(((t25 / t50) - 1.0).abs() < 0.05, "{t25} vs {t50}");
    }

    #[test]
    fn duty_cycle_matters_when_quiet() {
        // In a small system the SNR is high and capacity is log-like, so
        // higher duty cycle *does* win.
        let t100 = relative_net_throughput(1.0, 5.0);
        let t10 = relative_net_throughput(0.1, 5.0);
        assert!(t100 > t10 * 1.4, "{t100} vs {t10}");
    }

    #[test]
    fn exclusion_radius_footnote() {
        let rho = 0.04;
        assert!((exclusion_radius(rho) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn disk_radius_inverts_density() {
        let r = disk_radius(1000.0, 0.01);
        let m = PI * r * r * 0.01;
        assert!((m - 1000.0).abs() < 1e-9);
    }
}
