//! Geographic partition faults: link-level shadowing transients.
//!
//! A [`GeoCut`] is a straight line (vertical or horizontal) across the
//! deployment area; while a cut is active, every path that *crosses* it
//! is attenuated by a fixed factor — a moving obstruction (weather
//! front, structural shadowing) that severs two regions of the network
//! from each other **without any station dying**. Both sides keep
//! transmitting, clocks keep running, schedules stay published; only
//! the cross-cut links fade.
//!
//! [`PartitionOverlay`] implements [`GainModel`] by composing the cut
//! attenuations *on top of* an inner backend. With no active cuts every
//! query delegates verbatim (identical floats, identical orderings), so
//! wrapping a model in an overlay that never activates is behaviorally
//! invisible — the property the golden-metrics byte-identity tests rely
//! on. Activation and deactivation are explicit; the simulator is
//! responsible for invalidating any SINR caches built over the previous
//! gain field (see `SinrTracker::gains_changed`).

use crate::gainmodel::{GainModel, GridGainModel};
use crate::gains::StationId;
use crate::geom::Point;
use crate::units::Gain;
use std::sync::{Arc, RwLock};

/// Orientation of a partition cut line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutAxis {
    /// The line `x = offset`: severs east from west.
    Vertical,
    /// The line `y = offset`: severs north from south.
    Horizontal,
}

/// A straight cut across the deployment plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoCut {
    /// Orientation of the cut line.
    pub axis: CutAxis,
    /// Position of the line along its perpendicular axis (meters).
    pub offset: f64,
}

impl GeoCut {
    /// True when the segment `a`–`b` crosses the cut line (endpoints
    /// strictly on opposite sides; a station sitting exactly on the line
    /// is attenuated toward both sides).
    pub fn severs(&self, a: Point, b: Point) -> bool {
        let (ca, cb) = match self.axis {
            CutAxis::Vertical => (a.x, b.x),
            CutAxis::Horizontal => (a.y, b.y),
        };
        (ca - self.offset) * (cb - self.offset) < 0.0
    }
}

/// One active attenuation region: the fault index that raised it, the
/// cut geometry, and the linear power attenuation (< 1) applied to every
/// severed path.
#[derive(Clone, Copy, Debug)]
struct ActiveCut {
    index: usize,
    cut: GeoCut,
    atten: f64,
}

/// A [`GainModel`] decorator applying partition-cut attenuations.
///
/// Queries delegate to `inner` and multiply in the attenuation of every
/// active cut the path crosses. The inner backend's own gain cache (the
/// thread-local cache in [`GridGainModel`]) stays correct because it only
/// ever stores *inner* gains — the overlay's attenuation is applied after
/// the cached lookup.
pub struct PartitionOverlay {
    inner: Arc<dyn GainModel>,
    cuts: RwLock<Vec<ActiveCut>>,
}

impl std::fmt::Debug for PartitionOverlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionOverlay")
            .field("inner", &self.inner)
            .field("active_cuts", &self.cuts.read().unwrap().len())
            .finish()
    }
}

impl PartitionOverlay {
    /// Wrap `inner`; no cuts are active initially.
    pub fn new(inner: Arc<dyn GainModel>) -> PartitionOverlay {
        PartitionOverlay {
            inner,
            cuts: RwLock::new(Vec::new()),
        }
    }

    /// Activate a cut raised by fault `index` with linear power
    /// attenuation `atten` (0 < atten < 1) on severed paths.
    pub fn activate(&self, index: usize, cut: GeoCut, atten: f64) {
        debug_assert!(atten > 0.0 && atten < 1.0, "attenuation must be in (0,1)");
        let mut cuts = self.cuts.write().unwrap();
        cuts.retain(|c| c.index != index);
        cuts.push(ActiveCut { index, cut, atten });
    }

    /// Deactivate the cut raised by fault `index` (the partition heals).
    pub fn deactivate(&self, index: usize) {
        self.cuts.write().unwrap().retain(|c| c.index != index);
    }

    /// Number of currently active cuts.
    pub fn active_cuts(&self) -> usize {
        self.cuts.read().unwrap().len()
    }

    /// Combined attenuation of the path `tx → rx` under the active cuts
    /// (1.0 when no cut severs it).
    fn attenuation(&self, a: Point, b: Point) -> f64 {
        let cuts = self.cuts.read().unwrap();
        let mut f = 1.0;
        for c in cuts.iter() {
            if c.cut.severs(a, b) {
                f *= c.atten;
            }
        }
        f
    }
}

impl GainModel for PartitionOverlay {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn gain(&self, rx: StationId, tx: StationId) -> Gain {
        let g = self.inner.gain(rx, tx);
        if self.cuts.read().unwrap().is_empty() || rx == tx {
            return g;
        }
        let f = self.attenuation(self.inner.position(tx), self.inner.position(rx));
        if f == 1.0 {
            g
        } else {
            Gain(g.value() * f)
        }
    }

    fn position(&self, id: StationId) -> Point {
        self.inner.position(id)
    }

    fn relocate(&self, id: StationId, to: Point) {
        // Cuts are pure geometry over current positions, so a move needs
        // no overlay bookkeeping — attenuation re-derives from the new
        // endpoints on the next query.
        self.inner.relocate(id, to)
    }

    fn hearable_by(&self, rx: StationId, threshold: Gain) -> Vec<StationId> {
        // Attenuation only ever *reduces* gains, so the inner model's
        // candidate set is a superset of ours; re-filter it through the
        // overlaid gain.
        if self.cuts.read().unwrap().is_empty() {
            return self.inner.hearable_by(rx, threshold);
        }
        let mut ids = self.inner.hearable_by(rx, threshold);
        ids.retain(|&tx| self.gain(rx, tx) >= threshold);
        ids
    }

    fn strongest_neighbors(&self, rx: StationId, k: usize) -> Vec<StationId> {
        if self.cuts.read().unwrap().is_empty() {
            return self.inner.strongest_neighbors(rx, k);
        }
        // Attenuation reorders paths, so the inner ranking is unusable;
        // full scan with the dense backend's tie-break (ascending id).
        let n = self.len();
        let mut ids: Vec<StationId> = (0..n).filter(|&j| j != rx).collect();
        ids.sort_by(|&a, &b| {
            self.gain(rx, b)
                .value()
                .total_cmp(&self.gain(rx, a).value())
        });
        ids.truncate(k);
        ids
    }

    fn total_exposure(&self, rx: StationId) -> f64 {
        if self.cuts.read().unwrap().is_empty() {
            return self.inner.total_exposure(rx);
        }
        (0..self.len())
            .filter(|&j| j != rx)
            .map(|j| self.gain(rx, j).value())
            .sum()
    }

    fn as_grid(&self) -> Option<&GridGainModel> {
        // The far-field sweep uses the grid index for cell geometry and
        // the *propagation model* for wholly-far cell aggregates; those
        // aggregates ignore the cut (a bounded, conservative
        // approximation on the far tail — near-field and boundary-cell
        // paths go through `gain()` and see the cut exactly).
        self.inner.as_grid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gains::GainMatrix;
    use crate::propagation::FreeSpace;

    fn line_model() -> Arc<dyn GainModel> {
        // Three stations on the x axis at 0, 10, 20.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        Arc::new(GainMatrix::build(&pts, &FreeSpace::unit()))
    }

    #[test]
    fn severs_requires_strict_straddle() {
        let cut = GeoCut {
            axis: CutAxis::Vertical,
            offset: 5.0,
        };
        assert!(cut.severs(Point::new(0.0, 0.0), Point::new(10.0, 0.0)));
        assert!(!cut.severs(Point::new(6.0, 0.0), Point::new(10.0, 0.0)));
        assert!(!cut.severs(Point::new(5.0, 0.0), Point::new(10.0, 0.0)));
        let h = GeoCut {
            axis: CutAxis::Horizontal,
            offset: 0.0,
        };
        assert!(h.severs(Point::new(0.0, -1.0), Point::new(0.0, 1.0)));
        assert!(!h.severs(Point::new(0.0, 1.0), Point::new(3.0, 2.0)));
    }

    #[test]
    fn inactive_overlay_is_transparent() {
        let inner = line_model();
        let ov = PartitionOverlay::new(inner.clone());
        for rx in 0..3 {
            for tx in 0..3 {
                assert_eq!(ov.gain(rx, tx), inner.gain(rx, tx));
            }
            assert_eq!(
                ov.hearable_by(rx, Gain(1e-6)),
                inner.hearable_by(rx, Gain(1e-6))
            );
            assert_eq!(
                ov.strongest_neighbors(rx, 2),
                inner.strongest_neighbors(rx, 2)
            );
            assert_eq!(ov.total_exposure(rx), inner.total_exposure(rx));
        }
    }

    #[test]
    fn active_cut_attenuates_only_crossing_paths() {
        let inner = line_model();
        let ov = PartitionOverlay::new(inner.clone());
        let cut = GeoCut {
            axis: CutAxis::Vertical,
            offset: 15.0,
        };
        ov.activate(0, cut, 1e-6);
        // 0↔1 both west of the cut: untouched.
        assert_eq!(ov.gain(1, 0), inner.gain(1, 0));
        // 1↔2 and 0↔2 cross it: attenuated a million-fold.
        assert_eq!(ov.gain(2, 1).value(), inner.gain(2, 1).value() * 1e-6);
        assert_eq!(ov.gain(2, 0).value(), inner.gain(2, 0).value() * 1e-6);
        // Healing restores exact equality.
        ov.deactivate(0);
        assert_eq!(ov.gain(2, 1), inner.gain(2, 1));
        assert_eq!(ov.active_cuts(), 0);
    }

    #[test]
    fn hearable_by_refilters_under_cut() {
        let inner = line_model();
        let ov = PartitionOverlay::new(inner.clone());
        let thr = Gain(inner.gain(2, 1).value() * 0.5); // hears 1 comfortably
        assert!(ov.hearable_by(2, thr).contains(&1));
        ov.activate(
            7,
            GeoCut {
                axis: CutAxis::Vertical,
                offset: 15.0,
            },
            1e-9,
        );
        assert!(!ov.hearable_by(2, thr).contains(&1));
    }

    #[test]
    fn overlapping_cuts_compose_multiplicatively() {
        let inner = line_model();
        let ov = PartitionOverlay::new(inner.clone());
        let cut = GeoCut {
            axis: CutAxis::Vertical,
            offset: 5.0,
        };
        ov.activate(0, cut, 0.1);
        ov.activate(
            1,
            GeoCut {
                axis: CutAxis::Vertical,
                offset: 6.0,
            },
            0.1,
        );
        let g = ov.gain(1, 0).value();
        let want = inner.gain(1, 0).value() * 0.01;
        assert!((g - want).abs() <= 1e-18 + 1e-12 * want, "{g} vs {want}");
    }
}
