//! Physical quantity newtypes: decibels, power, power gain, SNR.
//!
//! The paper works interchangeably in linear power ratios and decibels
//! ("the power levels add, but not the logarithms of the power levels",
//! §7.3). These wrappers keep the two domains from being mixed up.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A value in decibels (a *ratio* in log domain, not an absolute power).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Db(pub f64);

impl Db {
    /// Convert a linear power ratio to decibels.
    pub fn from_ratio(ratio: f64) -> Db {
        debug_assert!(ratio > 0.0, "dB of non-positive ratio");
        Db(10.0 * ratio.log10())
    }

    /// Convert back to a linear power ratio.
    pub fn to_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// The raw dB value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, o: Db) -> Db {
        Db(self.0 + o.0)
    }
}
impl Sub for Db {
    type Output = Db;
    fn sub(self, o: Db) -> Db {
        Db(self.0 - o.0)
    }
}
impl AddAssign for Db {
    fn add_assign(&mut self, o: Db) {
        self.0 += o.0;
    }
}
impl SubAssign for Db {
    fn sub_assign(&mut self, o: Db) {
        self.0 -= o.0;
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// An absolute power in watts.
///
/// The simulation mostly uses *relative* units (unit transmit power, as the
/// paper's analysis does), so "watts" is a convention, not a calibration.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct PowerW(pub f64);

impl PowerW {
    /// Zero power.
    pub const ZERO: PowerW = PowerW(0.0);

    /// The raw value in watts.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Ratio of two powers (e.g. S/N). Panics in debug if the denominator
    /// is non-positive.
    pub fn ratio_to(self, denom: PowerW) -> f64 {
        debug_assert!(denom.0 > 0.0, "ratio to non-positive power");
        self.0 / denom.0
    }

    /// True when the power is (numerically) nothing.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for PowerW {
    type Output = PowerW;
    fn add(self, o: PowerW) -> PowerW {
        PowerW(self.0 + o.0)
    }
}
impl Sub for PowerW {
    type Output = PowerW;
    fn sub(self, o: PowerW) -> PowerW {
        PowerW(self.0 - o.0)
    }
}
impl AddAssign for PowerW {
    fn add_assign(&mut self, o: PowerW) {
        self.0 += o.0;
    }
}
impl SubAssign for PowerW {
    fn sub_assign(&mut self, o: PowerW) {
        self.0 -= o.0;
    }
}
impl Mul<f64> for PowerW {
    type Output = PowerW;
    fn mul(self, k: f64) -> PowerW {
        PowerW(self.0 * k)
    }
}
impl Div<f64> for PowerW {
    type Output = PowerW;
    fn div(self, k: f64) -> PowerW {
        PowerW(self.0 / k)
    }
}
impl Sum for PowerW {
    fn sum<I: Iterator<Item = PowerW>>(iter: I) -> PowerW {
        PowerW(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for PowerW {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} W", self.0)
    }
}

/// A dimensionless *power* gain (the paper's `h_ij²`): received power =
/// transmitted power × gain. Always in `[0, +∞)`; for radio paths, `< 1`.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Gain(pub f64);

impl Gain {
    /// No path at all.
    pub const ZERO: Gain = Gain(0.0);
    /// Lossless (identity) path.
    pub const UNITY: Gain = Gain(1.0);

    /// The raw linear power-gain value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Express as decibels (negative for losses).
    pub fn to_db(self) -> Db {
        Db::from_ratio(self.0)
    }

    /// Construct from decibels.
    pub fn from_db(db: Db) -> Gain {
        Gain(db.to_ratio())
    }

    /// Apply the gain to a transmit power.
    pub fn apply(self, p: PowerW) -> PowerW {
        PowerW(self.0 * p.0)
    }

    /// The energy cost of using this path with power control: the reciprocal
    /// gain, proportional to the transmit power needed to deliver a fixed
    /// received power (paper §6.2).
    pub fn energy_cost(self) -> f64 {
        debug_assert!(self.0 > 0.0, "energy cost of a zero-gain path");
        1.0 / self.0
    }
}

impl Mul for Gain {
    type Output = Gain;
    fn mul(self, o: Gain) -> Gain {
        Gain(self.0 * o.0)
    }
}
impl Mul<f64> for Gain {
    type Output = Gain;
    fn mul(self, k: f64) -> Gain {
        Gain(self.0 * k)
    }
}

impl fmt::Display for Gain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 > 0.0 {
            write!(f, "{}", self.to_db())
        } else {
            write!(f, "-inf dB")
        }
    }
}

/// Convenience: linear SNR value from decibels.
pub fn snr_from_db(db: f64) -> f64 {
    Db(db).to_ratio()
}

/// Convenience: decibels from a linear ratio.
pub fn db(ratio: f64) -> f64 {
    Db::from_ratio(ratio).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for r in [0.001, 0.01, 0.5, 1.0, 3.0, 100.0] {
            let back = Db::from_ratio(r).to_ratio();
            assert!((back - r).abs() / r < 1e-12, "{r} -> {back}");
        }
    }

    #[test]
    fn db_landmarks() {
        assert!((Db::from_ratio(2.0).value() - 3.0103).abs() < 1e-3);
        assert!((Db::from_ratio(10.0).value() - 10.0).abs() < 1e-12);
        assert!((Db::from_ratio(0.01).value() + 20.0).abs() < 1e-12);
        // The paper's ~5 dB margin is "probably around 3" as a ratio.
        assert!((Db(5.0).to_ratio() - 3.162).abs() < 1e-3);
    }

    #[test]
    fn db_arithmetic() {
        let a = Db(10.0) + Db(3.0);
        assert!((a.value() - 13.0).abs() < 1e-12);
        let b = Db(10.0) - Db(3.0);
        assert!((b.value() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn power_addition_is_linear_not_log() {
        // Paper §7.3: 20 dB + 10 dB powers = 20.4 dB, "barely significant".
        let p1 = PowerW(Db(20.0).to_ratio());
        let p2 = PowerW(Db(10.0).to_ratio());
        let total_db = Db::from_ratio((p1 + p2).value()).value();
        assert!((total_db - 20.414).abs() < 1e-3, "got {total_db}");
    }

    #[test]
    fn quarter_power_is_one_db_significance() {
        // Paper §7.3: an interferer must be at least 1/4 of the ambient
        // interference power to change the total by ~1 dB.
        let ambient = PowerW(1.0);
        let interferer = PowerW(0.25);
        let change = Db::from_ratio((ambient + interferer).ratio_to(ambient));
        assert!((change.value() - 0.969).abs() < 1e-3);
    }

    #[test]
    fn gain_apply_and_cost() {
        let g = Gain(0.01);
        assert_eq!(g.apply(PowerW(5.0)), PowerW(0.05));
        assert!((g.energy_cost() - 100.0).abs() < 1e-12);
        assert!((g.to_db().value() + 20.0).abs() < 1e-12);
        assert_eq!(Gain::from_db(Db(-20.0)).value(), 0.01);
    }

    #[test]
    fn gain_compose() {
        let g = Gain(0.1) * Gain(0.1);
        assert!((g.value() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn power_sum_iterator() {
        let total: PowerW = [PowerW(1.0), PowerW(2.0), PowerW(3.5)].into_iter().sum();
        assert_eq!(total, PowerW(6.5));
    }

    #[test]
    fn power_ratio() {
        assert!((PowerW(3.0).ratio_to(PowerW(300.0)) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Db(5.0)), "5.00 dB");
        assert_eq!(format!("{}", Gain::ZERO), "-inf dB");
    }

    #[test]
    fn helpers() {
        assert!((snr_from_db(-20.0) - 0.01).abs() < 1e-15);
        assert!((db(0.01) + 20.0).abs() < 1e-12);
    }
}
