//! Closed-form capacity and coverage references for the saturation
//! envelope (E7).
//!
//! Two families of analytic results bracket what the simulator measures
//! when traffic is driven to the goodput knee (`docs/CAPACITY.md` maps
//! every parameter to `NetConfig` and discusses where the scheme is
//! expected to beat them):
//!
//! * **Błaszczyszyn–Mühlethaler**, "Interference and SINR coverage in
//!   spatial non-slotted Aloha networks" / "Stochastic Analysis of
//!   Non-slotted Aloha": the SINR coverage probability of a Poisson
//!   field of uncoordinated (Aloha) transmitters. The infinite-plane
//!   closed form ([`aloha_coverage_infinite`]) needs path-loss exponent
//!   β > 2 — at the free-space β = 2 this repo simulates, the
//!   interference integral diverges on the infinite plane, which is
//!   exactly the §4 "din" argument of the source paper. The finite-disk
//!   forms ([`mean_din_w`], [`coverage_at_mean_sinr`]) keep β = 2 and
//!   recover the paper's logarithmic din instead.
//! * **Mhatre–Rosenberg**, "The Capacity of Random Ad hoc Networks under
//!   a Realistic Link Layer Model" (following Gupta–Kumar): per-node
//!   saturation throughput is bounded by the relaying burden — a mean
//!   flow of `h̄` hops consumes `h̄` transmission opportunities per
//!   delivered packet ([`saturation_arrival_bound`]), and under random
//!   placement/traffic the per-node rate decays as `Θ(1/√(n log n))`
//!   ([`per_node_capacity_scaling`]).

use std::f64::consts::PI;

/// The spatial interference constant `C(β) = 2π² / (β·sin(2π/β))` of the
/// Błaszczyszyn–Mühlethaler slotted-Aloha coverage formula (Rayleigh
/// fading, infinite Poisson plane). Defined only for path-loss exponents
/// β > 2; at β ≤ 2 the infinite-plane interference diverges and `None`
/// is returned.
///
/// ```
/// use parn_phys::capacity::aloha_spatial_constant;
/// let c4 = aloha_spatial_constant(4.0).unwrap();
/// assert!((c4 - std::f64::consts::PI * std::f64::consts::PI / 2.0).abs() < 1e-12);
/// assert!(aloha_spatial_constant(2.0).is_none(), "free space diverges");
/// ```
pub fn aloha_spatial_constant(beta: f64) -> Option<f64> {
    if beta <= 2.0 {
        return None;
    }
    Some(2.0 * PI * PI / (beta * (2.0 * PI / beta).sin()))
}

/// Infinite-plane Aloha SINR coverage probability
/// `p = exp(−λ·θ^(2/β)·r²·C(β))` for transmitter density `λ` (per m²),
/// SINR threshold `θ`, hop distance `r` and path-loss exponent β > 2
/// (noise-negligible regime). For **non-slotted** Aloha the vulnerable
/// window doubles: pass `2λ` (the classic pure-Aloha factor), which is
/// the mean-interference bound the non-slotted analysis tightens.
///
/// ```
/// use parn_phys::capacity::aloha_coverage_infinite;
/// let p = aloha_coverage_infinite(1e-4, 4.0, 0.5, 20.0).unwrap();
/// assert!(p > 0.0 && p < 1.0);
/// // Doubling the transmitter density squares the coverage.
/// let p2 = aloha_coverage_infinite(2e-4, 4.0, 0.5, 20.0).unwrap();
/// assert!((p2 - p * p).abs() < 1e-12);
/// ```
pub fn aloha_coverage_infinite(
    tx_density_per_m2: f64,
    beta: f64,
    theta: f64,
    hop_m: f64,
) -> Option<f64> {
    let c = aloha_spatial_constant(beta)?;
    let exponent = tx_density_per_m2 * theta.powf(2.0 / beta) * hop_m * hop_m * c;
    Some((-exponent).exp())
}

/// Mean aggregate interference (W) at a receiver in a **finite** disk of
/// uncoordinated transmitters under free-space `1/r²` loss — the β = 2
/// case where the infinite-plane constant diverges. Transmitters of
/// density `tx_density_per_m2` each deliver `delivered_w` at their own
/// hop distance `hop_m` (so they radiate `delivered_w·hop_m²`), spread
/// between `r_min_m` (closest interferer considered) and `r_max_m` (the
/// network radius):
///
/// `I̅ = 2π·λ·S̄·r̄²·ln(r_max/r_min)`
///
/// — the same logarithmic din structure as the source paper's §4
/// `S/N ≈ 1/(π·η·ln M)`.
///
/// ```
/// use parn_phys::capacity::mean_din_w;
/// let i = mean_din_w(1e-4, 1e-6, 20.0, 10.0, 1000.0);
/// assert!(i > 0.0);
/// // Widening the disk only grows the din logarithmically.
/// let i10 = mean_din_w(1e-4, 1e-6, 20.0, 10.0, 10_000.0);
/// assert!(i10 / i < 2.0);
/// ```
pub fn mean_din_w(
    tx_density_per_m2: f64,
    delivered_w: f64,
    hop_m: f64,
    r_min_m: f64,
    r_max_m: f64,
) -> f64 {
    assert!(r_max_m > r_min_m && r_min_m > 0.0);
    2.0 * PI * tx_density_per_m2 * delivered_w * hop_m * hop_m * (r_max_m / r_min_m).ln()
}

/// Coverage probability at a given mean SINR under the
/// Błaszczyszyn–Mühlethaler Rayleigh-signal model,
/// `p = P(S > θ·(I+N)) ≈ exp(−θ / SINR̄)` with `SINR̄ = S̄/(I̅+N)` —
/// the mean-interference evaluation of their Laplace-transform coverage
/// result, which is what remains computable at β = 2 in a finite disk.
///
/// ```
/// use parn_phys::capacity::coverage_at_mean_sinr;
/// assert!(coverage_at_mean_sinr(0.05, 10.0) > 0.99);
/// assert!(coverage_at_mean_sinr(1.0, 0.1) < 1e-4);
/// ```
pub fn coverage_at_mean_sinr(theta: f64, mean_sinr: f64) -> f64 {
    if mean_sinr <= 0.0 {
        return 0.0;
    }
    (-theta / mean_sinr).exp()
}

/// Mean source–destination distance induced by gravity-weighted
/// destinations: `E[r]` under `p(r) ∝ r^(1-α)` on `[r_min, r_max]` — the
/// exact marginal the [`GravitySampler`](crate::GravitySampler) draws
/// its radius from.
///
/// ```
/// use parn_phys::capacity::gravity_mean_distance;
/// // α = 2 on [10, 1000] m: E[r] = (r_max − r_min)/ln(r_max/r_min).
/// let d = gravity_mean_distance(2.0, 10.0, 1000.0);
/// assert!((d - 990.0 / 100f64.ln()).abs() < 1e-9);
/// // Uniform-in-area (α = 0) reaches much farther than α = 3.
/// assert!(gravity_mean_distance(0.0, 10.0, 1000.0) > gravity_mean_distance(3.0, 10.0, 1000.0));
/// ```
pub fn gravity_mean_distance(alpha: f64, r_min: f64, r_max: f64) -> f64 {
    assert!(r_max > r_min && r_min > 0.0);
    // E[r] = ∫ r·r^(1-α) dr / ∫ r^(1-α) dr on [r_min, r_max].
    let moment = |p: f64| -> f64 {
        // ∫ r^p dr on [r_min, r_max].
        if (p + 1.0).abs() < 1e-9 {
            (r_max / r_min).ln()
        } else {
            (r_max.powf(p + 1.0) - r_min.powf(p + 1.0)) / (p + 1.0)
        }
    };
    moment(2.0 - alpha) / moment(1.0 - alpha)
}

/// Expected hop count of a flow of length `distance_m` over hops of
/// nominal length `hop_m`, floored at one hop.
///
/// ```
/// use parn_phys::capacity::mean_hops;
/// assert_eq!(mean_hops(100.0, 20.0), 5.0);
/// assert_eq!(mean_hops(3.0, 20.0), 1.0);
/// ```
pub fn mean_hops(distance_m: f64, hop_m: f64) -> f64 {
    (distance_m / hop_m).max(1.0)
}

/// The Mhatre–Rosenberg / Gupta–Kumar relaying bound on per-station
/// saturation arrival rate: if every station can complete at most
/// `per_station_service_pps` hop transmissions per second and a mean
/// flow needs `mean_hops` of them, the sustainable end-to-end arrival
/// rate per station is at most `service / h̄`.
///
/// ```
/// use parn_phys::capacity::saturation_arrival_bound;
/// assert_eq!(saturation_arrival_bound(40.0, 5.0), 8.0);
/// ```
pub fn saturation_arrival_bound(per_station_service_pps: f64, mean_hops: f64) -> f64 {
    assert!(mean_hops >= 1.0);
    per_station_service_pps / mean_hops
}

/// The random-network per-node capacity scaling envelope,
/// `Θ(1/√(n·ln n))` (Gupta–Kumar; Mhatre–Rosenberg show the realistic
/// link layer keeps the same order). Unnormalized — use ratios across
/// `n`, not absolute values.
///
/// ```
/// use parn_phys::capacity::per_node_capacity_scaling;
/// let r = per_node_capacity_scaling(1e3) / per_node_capacity_scaling(1e5);
/// assert!(r > 10.0 && r < 13.0, "two decades of n ≈ 11–12× per-node rate");
/// ```
pub fn per_node_capacity_scaling(n: f64) -> f64 {
    assert!(n > 1.0);
    1.0 / (n * n.ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_constant_matches_known_points() {
        // β = 4: C = π²/2 ≈ 4.9348.
        let c4 = aloha_spatial_constant(4.0).unwrap();
        assert!((c4 - 4.934_802_200_544_679).abs() < 1e-9);
        // β = 3: 2π²/(3·sin(2π/3)).
        let c3 = aloha_spatial_constant(3.0).unwrap();
        assert!((c3 - 2.0 * PI * PI / (3.0 * (2.0 * PI / 3.0).sin())).abs() < 1e-12);
        assert!(aloha_spatial_constant(1.9).is_none());
    }

    #[test]
    fn coverage_monotone_in_load_and_threshold() {
        let p_light = aloha_coverage_infinite(1e-5, 3.0, 0.1, 20.0).unwrap();
        let p_heavy = aloha_coverage_infinite(1e-3, 3.0, 0.1, 20.0).unwrap();
        assert!(p_light > p_heavy);
        let p_easy = coverage_at_mean_sinr(0.01, 1.0);
        let p_hard = coverage_at_mean_sinr(0.5, 1.0);
        assert!(p_easy > p_hard);
    }

    #[test]
    fn din_matches_hand_integral() {
        // λ = 1e-4/m², S̄ = 1 µW, hop 20 m, disk 10..1000 m:
        // I̅ = 2π·1e-4·1e-6·400·ln(100).
        let i = mean_din_w(1e-4, 1e-6, 20.0, 10.0, 1000.0);
        let expected = 2.0 * PI * 1e-4 * 1e-6 * 400.0 * 100f64.ln();
        assert!((i - expected).abs() < 1e-18);
    }

    #[test]
    fn gravity_distance_sane_across_alpha() {
        for alpha in [0.0, 1.0, 1.5, 2.0, 3.0] {
            let d = gravity_mean_distance(alpha, 10.0, 500.0);
            assert!((10.0..=500.0).contains(&d), "α={alpha}: {d}");
        }
        // α = 1 hits the p = -1 log branch of the denominator integral
        // (∫ r^0 dr is regular; ∫ r^1 dr regular) — and α = 3 the
        // numerator one. Both must stay finite and ordered.
        assert!(gravity_mean_distance(1.0, 10.0, 500.0) > gravity_mean_distance(3.0, 10.0, 500.0));
    }

    #[test]
    fn relaying_bound_composes() {
        let h = mean_hops(gravity_mean_distance(2.0, 10.0, 1000.0), 20.0);
        let lambda = saturation_arrival_bound(100.0, h);
        assert!(lambda > 0.0 && lambda < 100.0);
    }
}
