//! Link budgets and system sizing (paper §6 and the scaling conclusion).
//!
//! Ties together the noise-growth model, the Shannon criterion and the
//! processing-gain budget into "will this link work, and at what rate"
//! arithmetic, plus the headline metro-scale projection: millions of
//! stations in a metro area with raw per-station rates in the hundreds of
//! megabits per second given a modest slice of spectrum.

use crate::noise::snr_vs_scale;
use crate::shannon::spectral_efficiency;
use crate::units::Db;

/// System-level design parameters for a large-scale deployment.
#[derive(Clone, Copy, Debug)]
pub struct SystemDesign {
    /// Total station count the design must tolerate.
    pub stations: f64,
    /// Average transmit duty cycle η.
    pub duty_cycle: f64,
    /// Channel bandwidth W (Hz).
    pub bandwidth_hz: f64,
    /// Detection margin above Shannon (linear; ≈3 for 5 dB).
    pub detection_margin: f64,
    /// Range margin for neighbours up to 2× the characteristic distance
    /// (linear; 4 for 6 dB).
    pub range_margin: f64,
}

impl SystemDesign {
    /// The paper's running example: metro scale, quarter duty cycle,
    /// 5 dB detection margin, 6 dB range margin.
    pub fn metro(stations: f64, bandwidth_hz: f64) -> SystemDesign {
        SystemDesign {
            stations,
            duty_cycle: 0.25,
            bandwidth_hz,
            detection_margin: Db(5.0).to_ratio(),
            range_margin: Db(6.0).to_ratio(),
        }
    }

    /// Din-limited SNR at the characteristic neighbour distance (Eq. 15).
    pub fn din_snr(&self) -> f64 {
        snr_vs_scale(self.duty_cycle, self.stations)
    }

    /// The worst-case *design* SNR: din SNR reduced by the range margin
    /// (neighbours up to twice the characteristic distance).
    pub fn design_snr(&self) -> f64 {
        self.din_snr() / self.range_margin
    }

    /// The raw design rate (bit/s) a station signals at while transmitting:
    /// the Shannon rate at the design SNR, derated by the detection margin.
    ///
    /// Uses the exact `log₂(1 + snr/β)` form: choosing the rate a β-worse
    /// channel could carry guarantees the margin.
    pub fn raw_rate_bps(&self) -> f64 {
        self.bandwidth_hz * spectral_efficiency(self.design_snr() / self.detection_margin)
    }

    /// Processing gain `W/C` implied by the design rate, in dB. The paper
    /// concludes this lands in the 20–25 dB range (§6).
    pub fn processing_gain_db(&self) -> f64 {
        Db::from_ratio(self.bandwidth_hz / self.raw_rate_bps()).value()
    }

    /// Long-run per-station throughput: raw rate × transmit duty cycle.
    pub fn sustained_rate_bps(&self) -> f64 {
        self.raw_rate_bps() * self.duty_cycle
    }

    /// The abstract's headline projection: raw rate with an "optimistic
    /// view of future signal processing capabilities" — Shannon-achieving
    /// detection (no β), neighbour at the characteristic distance (no range
    /// derating). Only the din limits the rate.
    pub fn projection_rate_bps(&self) -> f64 {
        self.bandwidth_hz * spectral_efficiency(self.din_snr())
    }
}

/// Throughput loss from reaching farther (§6): doubling range costs 6 dB of
/// SNR and, in the linear (low-SNR) regime, a factor-of-four in raw rate.
/// Returns the rate multiplier for reaching `range_factor` × the
/// characteristic distance at reference SNR `snr0`.
pub fn rate_factor_for_range(snr0: f64, range_factor: f64) -> f64 {
    debug_assert!(range_factor > 0.0);
    // 1/r² power loss: reaching rf× farther divides received power by rf².
    let snr = snr0 / (range_factor * range_factor);
    spectral_efficiency(snr) / spectral_efficiency(snr0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metro_projection_hundreds_of_mbps() {
        // One million stations, 1.5 GHz of spectrum ("a modest fraction of
        // the radio spectrum"), η = 0.25, Shannon-achieving detection ("an
        // optimistic view of future signal processing"): the abstract
        // promises raw per-station rates in the hundreds of Mb/s.
        let d = SystemDesign::metro(1e6, 1.5e9);
        let raw = d.projection_rate_bps();
        assert!(
            (1e8..1e9).contains(&raw),
            "raw rate {:.3e} not in hundreds of Mb/s",
            raw
        );
    }

    #[test]
    fn conservative_design_rate_much_lower() {
        // With the 5 dB detection margin and 6 dB range margin the
        // engineered per-link design rate is far below the projection.
        let d = SystemDesign::metro(1e6, 1.5e9);
        assert!(d.raw_rate_bps() < d.projection_rate_bps() / 5.0);
    }

    #[test]
    fn processing_gain_lands_in_paper_range() {
        let d = SystemDesign::metro(1e6, 100e6);
        let pg = d.processing_gain_db();
        assert!((17.0..27.0).contains(&pg), "pg {pg} dB");
    }

    #[test]
    fn din_snr_matches_eq15() {
        let d = SystemDesign::metro(1e6, 100e6);
        let snr = d.din_snr();
        let expected = 1.0 / (std::f64::consts::PI * 0.25 * (1e6f64).ln());
        assert!((snr - expected).abs() < 1e-15);
    }

    #[test]
    fn design_snr_is_range_derated() {
        let d = SystemDesign::metro(1e6, 100e6);
        assert!((d.design_snr() * d.range_margin - d.din_snr()).abs() < 1e-12);
    }

    #[test]
    fn sustained_rate_scales_with_duty() {
        let d = SystemDesign::metro(1e6, 100e6);
        assert!((d.sustained_rate_bps() - 0.25 * d.raw_rate_bps()).abs() < 1e-6);
    }

    #[test]
    fn more_stations_lower_rate_but_slowly() {
        let a = SystemDesign::metro(1e6, 100e6).raw_rate_bps();
        let b = SystemDesign::metro(1e9, 100e6).raw_rate_bps();
        assert!(b < a);
        assert!(b > a * 0.5, "only logarithmic decline expected");
    }

    #[test]
    fn range_doubling_quarters_rate() {
        // Low-SNR regime: factor 2 in range → 6 dB → rate ÷ ~4.
        let f = rate_factor_for_range(0.01, 2.0);
        assert!((f - 0.25).abs() < 0.01, "factor {f}");
    }

    #[test]
    fn range_factor_identity() {
        let f = rate_factor_for_range(0.05, 1.0);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
