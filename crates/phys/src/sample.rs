//! Distance-weighted destination sampling over the spatial index.
//!
//! The traffic subsystem's `Gravity` destination policy weights candidate
//! destinations by `d(src, dst)^(-α)` — near stations are favoured, but a
//! heavy tail of metro-crossing flows survives, which is what actually
//! exercises multi-hop relaying. Enumerating and weighting all `M`
//! stations per draw would be O(M); at 10⁵ stations that dominates the
//! simulation. This sampler is O(1) per draw instead:
//!
//! 1. draw a **radius** from the exact marginal a uniform-density
//!    placement induces, `p(r) ∝ r · r^(-α) = r^(1-α)` on
//!    `[r_min, r_max]`, by inverse CDF;
//! 2. draw a uniform **angle**;
//! 3. **snap** the resulting target point to the nearest real station
//!    through [`GridIndex`] candidate queries, expanding the search disk
//!    geometrically (bounded) when the target lands in empty space;
//! 4. resample (bounded) when the snap finds only the source itself —
//!    e.g. a tiny radius draw inside the source's own cell.
//!
//! The snap makes the realized weighting approximate — border cells of
//! the placement disk attract draws that landed outside — but the
//! marginal hop-distance distribution it induces is what the capacity
//! envelope (E7) measures and reports, so the approximation is visible,
//! not hidden.

use crate::gains::StationId;
use crate::geom::Point;
use crate::grid::GridIndex;
use parn_sim::Rng;

/// Bounded retry budget: radius/angle redraws when a snap fails.
const MAX_RESAMPLES: usize = 16;
/// Bounded search-disk doublings per snap attempt.
const MAX_EXPANSIONS: usize = 6;

/// O(1)-per-draw sampler of `d^(-α)`-weighted destinations.
///
/// ```
/// use parn_phys::{GravitySampler, Point};
/// use parn_sim::Rng;
/// // A 5×5 grid of stations, 10 m apart.
/// let positions: Vec<Point> = (0..25)
///     .map(|i| Point::new((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
///     .collect();
/// let sampler = GravitySampler::new(&positions, 2.0, 5.0, 60.0);
/// let mut rng = Rng::new(7);
/// let dst = sampler.sample(0, &mut rng).expect("grid is dense enough");
/// assert_ne!(dst, 0, "a station never addresses itself");
/// assert!(dst < 25);
/// ```
#[derive(Clone, Debug)]
pub struct GravitySampler {
    index: GridIndex,
    positions: Vec<Point>,
    exponent: f64,
    r_min: f64,
    r_max: f64,
}

impl GravitySampler {
    /// Build a sampler over `positions` with weighting exponent
    /// `exponent` (α): 0 is uniform-in-area, 2 is the classic gravity
    /// model, larger values confine traffic ever more locally. Radius
    /// draws span `[r_min, r_max]`; `r_min` bounds the `r^(1-α)` density
    /// away from its α > 2 singularity at 0 (a natural choice is the
    /// nominal hop length, `r_max` the placement diameter).
    pub fn new(positions: &[Point], exponent: f64, r_min: f64, r_max: f64) -> GravitySampler {
        assert!(positions.len() >= 2, "need at least two stations");
        assert!(
            r_min > 0.0 && r_max > r_min,
            "need 0 < r_min < r_max, got [{r_min}, {r_max}]"
        );
        GravitySampler {
            index: GridIndex::build(positions),
            positions: positions.to_vec(),
            exponent,
            r_min,
            r_max,
        }
    }

    /// Inverse-CDF draw from `p(r) ∝ r^(1-α)` on `[r_min, r_max]`.
    fn draw_radius(&self, rng: &mut Rng) -> f64 {
        let u = rng.next_f64();
        let a = self.exponent;
        if (a - 2.0).abs() < 1e-9 {
            // α = 2: p(r) ∝ 1/r, log-uniform radius.
            self.r_min * (self.r_max / self.r_min).powf(u)
        } else {
            let e = 2.0 - a;
            let lo = self.r_min.powf(e);
            let hi = self.r_max.powf(e);
            (lo + u * (hi - lo)).powf(1.0 / e)
        }
    }

    /// Nearest station to `target`, excluding `src`; ties break toward
    /// the lower id so draws are placement-deterministic.
    fn snap(&self, src: StationId, target: Point) -> Option<StationId> {
        let mut r = self.index.cell_size().max(self.r_min);
        for _ in 0..MAX_EXPANSIONS {
            let mut best: Option<(f64, StationId)> = None;
            self.index.for_candidates_within(target, r, |id| {
                if id == src {
                    return;
                }
                let d2 = self.positions[id].distance_sq(target);
                if d2 <= r * r {
                    let better = match best {
                        None => true,
                        Some((bd2, bid)) => d2 < bd2 || (d2 == bd2 && id < bid),
                    };
                    if better {
                        best = Some((d2, id));
                    }
                }
            });
            if let Some((_, id)) = best {
                return Some(id);
            }
            r *= 2.0;
        }
        None
    }

    /// Draw one destination for `src`. `None` only when every bounded
    /// retry failed — pathological placements (all stations coincident
    /// with the source's cell and nothing else in reach).
    pub fn sample(&self, src: StationId, rng: &mut Rng) -> Option<StationId> {
        let origin = self.positions[src];
        for attempt in 0..MAX_RESAMPLES {
            if attempt > 0 {
                parn_sim::counter_inc!("traffic.gravity.resamples");
            }
            let r = self.draw_radius(rng);
            let phi = rng.next_f64() * std::f64::consts::TAU;
            let target = origin.offset(r * phi.cos(), r * phi.sin());
            if let Some(dst) = self.snap(src, target) {
                return Some(dst);
            }
        }
        None
    }

    /// The radius bounds the sampler draws from.
    pub fn radius_bounds(&self) -> (f64, f64) {
        (self.r_min, self.r_max)
    }

    /// The weighting exponent α.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::uniform_in_disk;

    fn disk_positions(n: usize, radius: f64, seed: u64) -> Vec<Point> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| uniform_in_disk(radius, &mut rng)).collect()
    }

    #[test]
    fn samples_are_valid_and_never_self() {
        let pos = disk_positions(300, 100.0, 3);
        let s = GravitySampler::new(&pos, 2.0, 10.0, 200.0);
        let mut rng = Rng::new(9);
        for src in [0usize, 7, 150, 299] {
            for _ in 0..200 {
                let dst = s.sample(src, &mut rng).expect("dense disk always snaps");
                assert!(dst < pos.len());
                assert_ne!(dst, src);
            }
        }
    }

    #[test]
    fn deterministic_in_the_rng() {
        let pos = disk_positions(200, 80.0, 5);
        let s = GravitySampler::new(&pos, 1.5, 8.0, 160.0);
        let a: Vec<_> = {
            let mut rng = Rng::new(42);
            (0..100).map(|i| s.sample(i % 200, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = Rng::new(42);
            (0..100).map(|i| s.sample(i % 200, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn larger_exponent_means_shorter_flows() {
        let pos = disk_positions(500, 120.0, 11);
        let near = GravitySampler::new(&pos, 3.0, 10.0, 240.0);
        let far = GravitySampler::new(&pos, 0.5, 10.0, 240.0);
        let mean_d = |s: &GravitySampler, seed: u64| {
            let mut rng = Rng::new(seed);
            let mut total = 0.0;
            let mut count = 0;
            for src in 0..200usize {
                if let Some(dst) = s.sample(src, &mut rng) {
                    total += pos[src].distance(pos[dst]);
                    count += 1;
                }
            }
            total / count as f64
        };
        let d_near = mean_d(&near, 1);
        let d_far = mean_d(&far, 1);
        assert!(
            d_near * 1.5 < d_far,
            "α=3 flows ({d_near:.1} m) should be much shorter than α=0.5 ({d_far:.1} m)"
        );
    }

    #[test]
    fn radius_draw_respects_bounds() {
        let pos = disk_positions(50, 50.0, 2);
        for alpha in [0.0, 1.0, 2.0, 3.5] {
            let s = GravitySampler::new(&pos, alpha, 5.0, 100.0);
            let mut rng = Rng::new(13);
            for _ in 0..500 {
                let r = s.draw_radius(&mut rng);
                assert!((5.0..=100.0).contains(&r), "α={alpha}: r={r}");
            }
        }
    }
}
