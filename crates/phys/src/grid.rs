//! A uniform-grid spatial index over station placements.
//!
//! The paper's scheme is local: a station only ever cares about the
//! stations within a few multiples of the nominal range `2/√ρ` (§6.1).
//! For a roughly uniform density `ρ` a grid with cell side `≈ 1/√ρ`
//! holds O(1) stations per cell, so a query for "everything within
//! distance `r` of `p`" touches O(r²ρ) stations instead of all `M`.
//!
//! The index answers **candidate** queries: [`GridIndex::candidates_within`]
//! returns every station inside the axis-aligned bounding square of the
//! query disk (a superset of the stations within `r`). Callers apply their
//! own exact gain/distance filter, which keeps the grid free of any float
//! epsilon reasoning — a station at distance exactly `r` is always in the
//! bounding square, so no true member is ever missed.

use crate::gains::StationId;
use crate::geom::Point;

/// Uniform bucket grid over a set of points.
#[derive(Clone, Debug)]
pub struct GridIndex {
    min_x: f64,
    min_y: f64,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<StationId>>,
}

impl GridIndex {
    /// Build an index with an automatically chosen cell size of
    /// `√(bbox_area / n)` — about `1/√ρ` for density-`ρ` placements, i.e.
    /// O(1) stations per cell.
    pub fn build(positions: &[Point]) -> GridIndex {
        let n = positions.len().max(1);
        let (min_x, min_y, max_x, max_y) = bbox(positions);
        let w = max_x - min_x;
        let h = max_y - min_y;
        let extent = w.max(h);
        let cell = if w > 0.0 && h > 0.0 {
            (w * h / n as f64).sqrt()
        } else if extent > 0.0 {
            // Collinear placement: bin along the one populated axis.
            extent / n as f64
        } else {
            1.0
        };
        GridIndex::with_cell_size(positions, cell)
    }

    /// Build with an explicit cell side (clamped to a sane positive value
    /// for degenerate placements such as all-coincident points).
    pub fn with_cell_size(positions: &[Point], cell: f64) -> GridIndex {
        let (min_x, min_y, max_x, max_y) = bbox(positions);
        let mut cell = if cell.is_finite() && cell > 0.0 {
            cell
        } else {
            1.0
        };
        // Cap the grid extent so a pathological cell size can never blow
        // up the cell array; queries stay correct at any cell size.
        const MAX_DIM: f64 = 8192.0;
        cell = cell
            .max((max_x - min_x) / MAX_DIM)
            .max((max_y - min_y) / MAX_DIM);
        let nx = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        let mut idx = GridIndex {
            min_x,
            min_y,
            cell,
            nx,
            ny,
            cells: Vec::new(),
        };
        for (id, &p) in positions.iter().enumerate() {
            cells[idx.cell_index(p)].push(id);
        }
        idx.cells = cells;
        idx
    }

    /// Cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Half the diagonal of one cell: the worst-case distance between a
    /// point in a cell and that cell's centre.
    pub fn half_diagonal(&self) -> f64 {
        self.cell * std::f64::consts::SQRT_2 / 2.0
    }

    /// Number of cells (grid extent).
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat index of the cell containing `p` (points outside the build
    /// bounding box clamp to the border cells).
    pub fn cell_index(&self, p: Point) -> usize {
        let ix = (((p.x - self.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let iy = (((p.y - self.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        iy * self.nx + ix
    }

    /// Centre of cell `idx`.
    pub fn cell_center(&self, idx: usize) -> Point {
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Point::new(
            self.min_x + (ix as f64 + 0.5) * self.cell,
            self.min_y + (iy as f64 + 0.5) * self.cell,
        )
    }

    /// Station ids of every occupied cell, with the cell's flat index.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (usize, &[StationId])> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, c)| (i, c.as_slice()))
    }

    /// Stations in cell `idx`.
    pub fn cell_members(&self, idx: usize) -> &[StationId] {
        &self.cells[idx]
    }

    /// Every station inside the bounding square `[cx−r, cx+r] × [cy−r,
    /// cy+r]` of the disk of radius `r` around `center` — a superset of
    /// the stations within distance `r`. Ids are pushed in cell order,
    /// ascending within each cell; callers that need a global order must
    /// sort.
    pub fn candidates_within(&self, center: Point, r: f64) -> Vec<StationId> {
        let mut out = Vec::new();
        self.for_candidates_within(center, r, |id| out.push(id));
        out
    }

    /// Visitor form of [`candidates_within`](Self::candidates_within):
    /// avoids the intermediate `Vec` on hot paths.
    pub fn for_candidates_within(&self, center: Point, r: f64, mut visit: impl FnMut(StationId)) {
        if !r.is_finite() || r < 0.0 {
            // NaN or infinite radius: everything is a candidate.
            for c in &self.cells {
                for &id in c {
                    visit(id);
                }
            }
            return;
        }
        let lo_x = self.clamp_ix(center.x - r);
        let hi_x = self.clamp_ix(center.x + r);
        let lo_y = self.clamp_iy(center.y - r);
        let hi_y = self.clamp_iy(center.y + r);
        for iy in lo_y..=hi_y {
            for ix in lo_x..=hi_x {
                for &id in &self.cells[iy * self.nx + ix] {
                    visit(id);
                }
            }
        }
    }

    /// True when a square of half-side `r` around `center` covers the
    /// whole grid — i.e. expanding the query further cannot add stations.
    pub fn square_covers_all(&self, center: Point, r: f64) -> bool {
        if !r.is_finite() {
            return true;
        }
        center.x - r <= self.min_x
            && center.y - r <= self.min_y
            && center.x + r >= self.min_x + self.nx as f64 * self.cell
            && center.y + r >= self.min_y + self.ny as f64 * self.cell
    }

    fn clamp_ix(&self, x: f64) -> usize {
        (((x - self.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1)
    }

    fn clamp_iy(&self, y: f64) -> usize {
        (((y - self.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1)
    }
}

fn bbox(positions: &[Point]) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    if positions.is_empty() {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        (min_x, min_y, max_x, max_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use parn_sim::Rng;

    #[test]
    fn candidates_cover_the_disk() {
        let mut rng = Rng::new(42);
        let pts = Placement::UniformDisk {
            n: 300,
            radius: 500.0,
        }
        .generate(&mut rng);
        let idx = GridIndex::build(&pts);
        for &r in &[10.0, 50.0, 200.0, 1200.0] {
            for probe in 0..20usize {
                let c = pts[probe * 7 % pts.len()];
                let cand = idx.candidates_within(c, r);
                // Every station truly within r must be among candidates.
                for (id, p) in pts.iter().enumerate() {
                    if p.distance(c) <= r {
                        assert!(cand.contains(&id), "missed {} at r={}", id, r);
                    }
                }
            }
        }
    }

    #[test]
    fn covering_square_returns_everything() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 40.0),
            Point::new(-30.0, 70.0),
        ];
        let idx = GridIndex::build(&pts);
        assert!(idx.square_covers_all(Point::ORIGIN, 1e9));
        let mut cand = idx.candidates_within(Point::ORIGIN, 1e9);
        cand.sort_unstable();
        assert_eq!(cand, vec![0, 1, 2]);
    }

    #[test]
    fn degenerate_coincident_points() {
        let pts = vec![Point::ORIGIN; 5];
        let idx = GridIndex::build(&pts);
        assert!(idx.cell_size() > 0.0);
        let cand = idx.candidates_within(Point::ORIGIN, 0.0);
        assert_eq!(cand.len(), 5);
    }

    #[test]
    fn cell_center_and_half_diagonal_bound_members() {
        let mut rng = Rng::new(7);
        let pts = Placement::UniformDisk {
            n: 200,
            radius: 300.0,
        }
        .generate(&mut rng);
        let idx = GridIndex::build(&pts);
        let delta = idx.half_diagonal();
        for (ci, members) in idx.occupied_cells() {
            let center = idx.cell_center(ci);
            for &id in members {
                assert!(
                    pts[id].distance(center) <= delta * (1.0 + 1e-12),
                    "station outside its cell's half-diagonal"
                );
            }
        }
    }

    #[test]
    fn empty_input() {
        let idx = GridIndex::build(&[]);
        assert!(idx.candidates_within(Point::ORIGIN, 10.0).is_empty());
    }
}
