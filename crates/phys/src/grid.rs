//! A uniform-grid spatial index over station placements.
//!
//! The paper's scheme is local: a station only ever cares about the
//! stations within a few multiples of the nominal range `2/√ρ` (§6.1).
//! For a roughly uniform density `ρ` a grid with cell side `≈ 1/√ρ`
//! holds O(1) stations per cell, so a query for "everything within
//! distance `r` of `p`" touches O(r²ρ) stations instead of all `M`.
//!
//! The index answers **candidate** queries: [`GridIndex::candidates_within`]
//! returns every station inside the axis-aligned bounding square of the
//! query disk (a superset of the stations within `r`). Callers apply their
//! own exact gain/distance filter, which keeps the grid free of any float
//! epsilon reasoning — a station at distance exactly `r` is always in the
//! bounding square, so no true member is ever missed.

use crate::gains::StationId;
use crate::geom::Point;

/// Uniform bucket grid over a set of points.
#[derive(Clone, Debug)]
pub struct GridIndex {
    min_x: f64,
    min_y: f64,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<StationId>>,
}

impl GridIndex {
    /// Build an index with an automatically chosen cell size of
    /// `√(bbox_area / n)` — about `1/√ρ` for density-`ρ` placements, i.e.
    /// O(1) stations per cell.
    pub fn build(positions: &[Point]) -> GridIndex {
        let n = positions.len().max(1);
        let (min_x, min_y, max_x, max_y) = bbox(positions);
        let w = max_x - min_x;
        let h = max_y - min_y;
        let extent = w.max(h);
        let cell = if w > 0.0 && h > 0.0 {
            (w * h / n as f64).sqrt()
        } else if extent > 0.0 {
            // Collinear placement: bin along the one populated axis.
            extent / n as f64
        } else {
            1.0
        };
        GridIndex::with_cell_size(positions, cell)
    }

    /// Build with an explicit geometry: origin `min`, cell side `cell`,
    /// and `nx × ny` cells. Stations outside the covered rectangle bucket
    /// into the border cells (see [`cell_index`](Self::cell_index)).
    /// Incremental-maintenance tests use this to reproduce a mutated
    /// index's exact geometry from scratch.
    pub fn with_geometry(
        positions: &[Point],
        min: Point,
        cell: f64,
        nx: usize,
        ny: usize,
    ) -> GridIndex {
        assert!(cell.is_finite() && cell > 0.0, "cell side must be positive");
        assert!(nx >= 1 && ny >= 1, "need at least one cell per axis");
        let mut idx = GridIndex {
            min_x: min.x,
            min_y: min.y,
            cell,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
        };
        for (id, &p) in positions.iter().enumerate() {
            let c = idx.cell_index(p);
            idx.cells[c].push(id);
        }
        idx
    }

    /// The grid's geometry as `(origin, cell side, nx, ny)` — everything
    /// [`with_geometry`](Self::with_geometry) needs to rebuild it.
    pub fn geometry(&self) -> (Point, f64, usize, usize) {
        (
            Point::new(self.min_x, self.min_y),
            self.cell,
            self.nx,
            self.ny,
        )
    }

    /// Build with an explicit cell side (clamped to a sane positive value
    /// for degenerate placements such as all-coincident points).
    pub fn with_cell_size(positions: &[Point], cell: f64) -> GridIndex {
        let (min_x, min_y, max_x, max_y) = bbox(positions);
        let mut cell = if cell.is_finite() && cell > 0.0 {
            cell
        } else {
            1.0
        };
        // Cap the grid extent so a pathological cell size can never blow
        // up the cell array; queries stay correct at any cell size.
        const MAX_DIM: f64 = 8192.0;
        cell = cell
            .max((max_x - min_x) / MAX_DIM)
            .max((max_y - min_y) / MAX_DIM);
        let nx = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        let mut idx = GridIndex {
            min_x,
            min_y,
            cell,
            nx,
            ny,
            cells: Vec::new(),
        };
        for (id, &p) in positions.iter().enumerate() {
            cells[idx.cell_index(p)].push(id);
        }
        idx.cells = cells;
        idx
    }

    /// Cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Half the diagonal of one cell: the worst-case distance between a
    /// point in a cell and that cell's centre.
    pub fn half_diagonal(&self) -> f64 {
        self.cell * std::f64::consts::SQRT_2 / 2.0
    }

    /// Number of cells (grid extent).
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat index of the cell containing `p` (points outside the build
    /// bounding box clamp to the border cells).
    pub fn cell_index(&self, p: Point) -> usize {
        let ix = (((p.x - self.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let iy = (((p.y - self.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        iy * self.nx + ix
    }

    /// Centre of cell `idx`.
    pub fn cell_center(&self, idx: usize) -> Point {
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Point::new(
            self.min_x + (ix as f64 + 0.5) * self.cell,
            self.min_y + (iy as f64 + 0.5) * self.cell,
        )
    }

    /// Station ids of every occupied cell, with the cell's flat index.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (usize, &[StationId])> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, c)| (i, c.as_slice()))
    }

    /// Stations in cell `idx`.
    pub fn cell_members(&self, idx: usize) -> &[StationId] {
        &self.cells[idx]
    }

    /// Insert station `id` at `p` (no-op if already present in that
    /// cell). Points outside the covered rectangle bucket into the border
    /// cells — candidate queries stay exact because
    /// [`cell_index`](Self::cell_index) clamps queries the same monotone
    /// way; callers that want the grid to actually cover the new point
    /// call [`expand_to_include`](Self::expand_to_include) first.
    ///
    /// Membership within a cell stays sorted ascending (the order
    /// [`build`](Self::build) produces), so incremental maintenance and a
    /// fresh build yield byte-identical candidate iteration order.
    pub fn insert(&mut self, id: StationId, p: Point) {
        let c = self.cell_index(p);
        let cell = &mut self.cells[c];
        if let Err(pos) = cell.binary_search(&id) {
            cell.insert(pos, id);
        }
    }

    /// Remove station `id`, which was last inserted at `p`. Returns false
    /// when the station was not in the cell `p` maps to (e.g. already
    /// removed, or the caller passed a stale position).
    pub fn remove(&mut self, id: StationId, p: Point) -> bool {
        let c = self.cell_index(p);
        let cell = &mut self.cells[c];
        match cell.binary_search(&id) {
            Ok(pos) => {
                cell.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Move station `id` from `from` to `to`, re-bucketing it if the two
    /// positions map to different cells. Returns true when the station
    /// actually changed cells (the caller's re-bucketing counter).
    pub fn relocate(&mut self, id: StationId, from: Point, to: Point) -> bool {
        let a = self.cell_index(from);
        let b = self.cell_index(to);
        if a == b {
            return false;
        }
        let cell = &mut self.cells[a];
        if let Ok(pos) = cell.binary_search(&id) {
            cell.remove(pos);
        }
        let cell = &mut self.cells[b];
        if let Err(pos) = cell.binary_search(&id) {
            cell.insert(pos, id);
        }
        true
    }

    /// Grow the grid (in whole-cell steps, keeping every existing cell's
    /// geometry and membership intact) until it covers `p`. Returns true
    /// when the extent changed. Growth respects the same dimension cap as
    /// construction: a point so far out that covering it would exceed the
    /// cap is left to border-cell clamping instead.
    ///
    /// Callers holding state keyed on cell indices (the far-field
    /// tracker) must not expand mid-run — cell indices are renumbered.
    pub fn expand_to_include(&mut self, p: Point) -> bool {
        const MAX_DIM: usize = 8192;
        let grow_lo = |min: f64, v: f64, cell: f64| -> usize {
            if v >= min {
                0
            } else {
                ((min - v) / cell).ceil().max(1.0) as usize
            }
        };
        let grow_hi = |min: f64, extent: usize, v: f64, cell: f64| -> usize {
            let max = min + extent as f64 * cell;
            if v < max {
                0
            } else {
                ((v - max) / cell).floor() as usize + 1
            }
        };
        let lo_x = grow_lo(self.min_x, p.x, self.cell);
        let hi_x = grow_hi(self.min_x, self.nx, p.x, self.cell);
        let lo_y = grow_lo(self.min_y, p.y, self.cell);
        let hi_y = grow_hi(self.min_y, self.ny, p.y, self.cell);
        if lo_x + hi_x + lo_y + hi_y == 0 {
            return false;
        }
        let nx = self.nx + lo_x + hi_x;
        let ny = self.ny + lo_y + hi_y;
        if nx > MAX_DIM || ny > MAX_DIM {
            return false;
        }
        let mut cells = vec![Vec::new(); nx * ny];
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let old = std::mem::take(&mut self.cells[iy * self.nx + ix]);
                cells[(iy + lo_y) * nx + (ix + lo_x)] = old;
            }
        }
        self.min_x -= lo_x as f64 * self.cell;
        self.min_y -= lo_y as f64 * self.cell;
        self.nx = nx;
        self.ny = ny;
        self.cells = cells;
        true
    }

    /// Every station inside the bounding square `[cx−r, cx+r] × [cy−r,
    /// cy+r]` of the disk of radius `r` around `center` — a superset of
    /// the stations within distance `r`. Ids are pushed in cell order,
    /// ascending within each cell; callers that need a global order must
    /// sort.
    pub fn candidates_within(&self, center: Point, r: f64) -> Vec<StationId> {
        let mut out = Vec::new();
        self.for_candidates_within(center, r, |id| out.push(id));
        out
    }

    /// Visitor form of [`candidates_within`](Self::candidates_within):
    /// avoids the intermediate `Vec` on hot paths.
    pub fn for_candidates_within(&self, center: Point, r: f64, mut visit: impl FnMut(StationId)) {
        if !r.is_finite() || r < 0.0 {
            // NaN or infinite radius: everything is a candidate.
            for c in &self.cells {
                for &id in c {
                    visit(id);
                }
            }
            return;
        }
        let lo_x = self.clamp_ix(center.x - r);
        let hi_x = self.clamp_ix(center.x + r);
        let lo_y = self.clamp_iy(center.y - r);
        let hi_y = self.clamp_iy(center.y + r);
        for iy in lo_y..=hi_y {
            for ix in lo_x..=hi_x {
                for &id in &self.cells[iy * self.nx + ix] {
                    visit(id);
                }
            }
        }
    }

    /// True when a square of half-side `r` around `center` covers the
    /// whole grid — i.e. expanding the query further cannot add stations.
    pub fn square_covers_all(&self, center: Point, r: f64) -> bool {
        if !r.is_finite() {
            return true;
        }
        center.x - r <= self.min_x
            && center.y - r <= self.min_y
            && center.x + r >= self.min_x + self.nx as f64 * self.cell
            && center.y + r >= self.min_y + self.ny as f64 * self.cell
    }

    fn clamp_ix(&self, x: f64) -> usize {
        (((x - self.min_x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1)
    }

    fn clamp_iy(&self, y: f64) -> usize {
        (((y - self.min_y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1)
    }
}

fn bbox(positions: &[Point]) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    if positions.is_empty() {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        (min_x, min_y, max_x, max_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use parn_sim::Rng;

    #[test]
    fn candidates_cover_the_disk() {
        let mut rng = Rng::new(42);
        let pts = Placement::UniformDisk {
            n: 300,
            radius: 500.0,
        }
        .generate(&mut rng);
        let idx = GridIndex::build(&pts);
        for &r in &[10.0, 50.0, 200.0, 1200.0] {
            for probe in 0..20usize {
                let c = pts[probe * 7 % pts.len()];
                let cand = idx.candidates_within(c, r);
                // Every station truly within r must be among candidates.
                for (id, p) in pts.iter().enumerate() {
                    if p.distance(c) <= r {
                        assert!(cand.contains(&id), "missed {} at r={}", id, r);
                    }
                }
            }
        }
    }

    #[test]
    fn covering_square_returns_everything() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 40.0),
            Point::new(-30.0, 70.0),
        ];
        let idx = GridIndex::build(&pts);
        assert!(idx.square_covers_all(Point::ORIGIN, 1e9));
        let mut cand = idx.candidates_within(Point::ORIGIN, 1e9);
        cand.sort_unstable();
        assert_eq!(cand, vec![0, 1, 2]);
    }

    #[test]
    fn degenerate_coincident_points() {
        let pts = vec![Point::ORIGIN; 5];
        let idx = GridIndex::build(&pts);
        assert!(idx.cell_size() > 0.0);
        let cand = idx.candidates_within(Point::ORIGIN, 0.0);
        assert_eq!(cand.len(), 5);
    }

    #[test]
    fn cell_center_and_half_diagonal_bound_members() {
        let mut rng = Rng::new(7);
        let pts = Placement::UniformDisk {
            n: 200,
            radius: 300.0,
        }
        .generate(&mut rng);
        let idx = GridIndex::build(&pts);
        let delta = idx.half_diagonal();
        for (ci, members) in idx.occupied_cells() {
            let center = idx.cell_center(ci);
            for &id in members {
                assert!(
                    pts[id].distance(center) <= delta * (1.0 + 1e-12),
                    "station outside its cell's half-diagonal"
                );
            }
        }
    }

    #[test]
    fn empty_input() {
        let idx = GridIndex::build(&[]);
        assert!(idx.candidates_within(Point::ORIGIN, 10.0).is_empty());
    }

    /// Candidate sets (including iteration order) for a spread of probe
    /// disks, used to compare an incrementally maintained index against a
    /// from-scratch rebuild.
    fn probe_candidates(idx: &GridIndex, pts: &[Point]) -> Vec<Vec<StationId>> {
        let mut out = Vec::new();
        for &r in &[5.0, 25.0, 80.0, 250.0, 1e9] {
            for probe in 0..pts.len().min(25) {
                out.push(idx.candidates_within(pts[probe * 3 % pts.len()], r));
            }
            out.push(idx.candidates_within(Point::ORIGIN, r));
        }
        out
    }

    #[test]
    fn incremental_ops_match_fresh_build_over_mutated_positions() {
        // Randomized insert/remove/relocate sequences: after every batch
        // of mutations the incrementally maintained index must answer
        // candidate queries identically (same ids, same order) to a fresh
        // index built over the mutated positions with the same geometry.
        for seed in 0..12u64 {
            let mut rng = Rng::new(1000 + seed);
            let n = 40 + rng.below(80) as usize;
            let mut pts = Placement::UniformDisk {
                n,
                radius: 200.0 + rng.below(200) as f64,
            }
            .generate(&mut rng);
            let mut idx = GridIndex::build(&pts);
            let mut present: Vec<bool> = vec![true; n];
            for _step in 0..60 {
                let id = rng.below(n as u64) as usize;
                match rng.below(3) {
                    0 => {
                        // Relocate (possibly escaping the original bbox).
                        if present[id] {
                            let to = Point::new(
                                rng.range_f64(-450.0, 450.0),
                                rng.range_f64(-450.0, 450.0),
                            );
                            idx.relocate(id, pts[id], to);
                            pts[id] = to;
                        }
                    }
                    1 => {
                        if present[id] {
                            assert!(idx.remove(id, pts[id]));
                            present[id] = false;
                        }
                    }
                    _ => {
                        if !present[id] {
                            let at = Point::new(
                                rng.range_f64(-450.0, 450.0),
                                rng.range_f64(-450.0, 450.0),
                            );
                            idx.insert(id, at);
                            pts[id] = at;
                            present[id] = true;
                        }
                    }
                }
                let live: Vec<Point> = pts.clone();
                let (min, cell, nx, ny) = idx.geometry();
                let mut fresh = GridIndex::with_geometry(&[], min, cell, nx, ny);
                for (i, &p) in live.iter().enumerate() {
                    if present[i] {
                        fresh.insert(i, p);
                    }
                }
                assert_eq!(
                    probe_candidates(&idx, &live),
                    probe_candidates(&fresh, &live),
                    "divergence at seed {} after mutation of {}",
                    seed,
                    id
                );
            }
        }
    }

    #[test]
    fn incremental_ops_match_plain_build_when_bbox_is_pinned() {
        // Pin the bbox corners with stations that never move; then the
        // auto-geometry of a plain `build` over the mutated positions is
        // identical to the original, and the incremental index must match
        // it exactly — not just a same-geometry reference.
        let mut rng = Rng::new(77);
        let n = 60;
        let mut pts = Placement::UniformDisk { n, radius: 150.0 }.generate(&mut rng);
        pts[0] = Point::new(-200.0, -200.0);
        pts[1] = Point::new(200.0, 200.0);
        let mut idx = GridIndex::build(&pts);
        for _step in 0..80 {
            let id = 2 + rng.below((n - 2) as u64) as usize;
            let to = Point::new(rng.range_f64(-200.0, 200.0), rng.range_f64(-200.0, 200.0));
            idx.relocate(id, pts[id], to);
            pts[id] = to;
            let fresh = GridIndex::build(&pts);
            assert_eq!(idx.geometry(), fresh.geometry());
            assert_eq!(probe_candidates(&idx, &pts), probe_candidates(&fresh, &pts));
        }
    }

    #[test]
    fn relocate_within_one_cell_does_not_rebucket() {
        let pts = vec![Point::ORIGIN, Point::new(100.0, 100.0)];
        let mut idx = GridIndex::build(&pts);
        let eps = idx.cell_size() * 0.25;
        assert!(!idx.relocate(0, pts[0], Point::new(eps, eps)));
        assert!(idx.relocate(0, Point::new(eps, eps), Point::new(100.0, 0.0)));
    }

    #[test]
    fn bbox_escaping_moves_clamp_to_border_cells_and_stay_exact() {
        // A station relocated far outside the built extent buckets into a
        // border cell; candidate queries (which clamp the same way) must
        // still return it for any disk that truly contains it.
        let mut rng = Rng::new(5);
        let pts_orig = Placement::UniformDisk {
            n: 50,
            radius: 100.0,
        }
        .generate(&mut rng);
        let mut pts = pts_orig.clone();
        let mut idx = GridIndex::build(&pts);
        let far = Point::new(5000.0, -7000.0);
        idx.relocate(3, pts[3], far);
        pts[3] = far;
        let r = far.distance(Point::ORIGIN) + 1.0;
        let cand = idx.candidates_within(Point::ORIGIN, r);
        assert!(cand.contains(&3), "escaped station missing from candidates");
        for (id, p) in pts.iter().enumerate() {
            if p.distance(Point::ORIGIN) <= 120.0 {
                assert!(idx.candidates_within(Point::ORIGIN, 120.0).contains(&id));
            }
        }
    }

    #[test]
    fn expand_to_include_preserves_membership_and_covers_new_point() {
        let mut rng = Rng::new(9);
        let pts = Placement::UniformDisk {
            n: 80,
            radius: 100.0,
        }
        .generate(&mut rng);
        let mut idx = GridIndex::build(&pts);
        let before = probe_candidates(&idx, &pts);
        let p = Point::new(350.0, -275.0);
        assert!(idx.expand_to_include(p));
        assert!(
            !idx.expand_to_include(p),
            "second expansion must be a no-op"
        );
        // Existing stations keep their cells' relative geometry: queries
        // answer identically.
        assert_eq!(before, probe_candidates(&idx, &pts));
        // The new point now lands in an interior (unclamped) cell.
        let (min, cell, nx, ny) = idx.geometry();
        assert!(p.x >= min.x && p.x < min.x + nx as f64 * cell);
        assert!(p.y >= min.y && p.y < min.y + ny as f64 * cell);
        // And membership round-trips through it.
        let mut idx2 = idx.clone();
        idx2.insert(80, p);
        assert!(idx2.candidates_within(p, 1.0).contains(&80));
        assert!(idx2.remove(80, p));
    }
}
