//! The [`GainModel`] abstraction: who can hear whom, and how well.
//!
//! The dense [`GainMatrix`] is the reference backend — exact, simple, and
//! O(M²) in memory, which caps it near 10⁴ stations. [`GridGainModel`]
//! answers the same queries from a uniform-grid spatial index
//! ([`GridIndex`]) plus on-demand propagation evaluation with a small
//! direct-mapped cache, at O(M) memory. For deterministic propagation
//! models the two backends return **identical** results (same floats,
//! same orderings), so any simulation is bit-for-bit reproducible across
//! backends; the equivalence proptests in the workspace root enforce
//! this.

use crate::gains::{GainMatrix, StationId};
use crate::geom::Point;
use crate::grid::GridIndex;
use crate::propagation::Propagation;
use crate::units::Gain;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

/// Pairwise power gains between stations, plus the neighbour queries the
/// rest of the workspace needs. Receiver-first indexing throughout
/// (`gain(rx, tx)` is the paper's `h_ij²` with `i = rx`).
pub trait GainModel: std::fmt::Debug + Send + Sync {
    /// Number of stations.
    fn len(&self) -> usize;

    /// True when there are no stations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Power gain from transmitter `tx` to receiver `rx`. Self-paths are
    /// zero (a station's own transmitter is handled specially — Type 3
    /// collisions, §5).
    fn gain(&self, rx: StationId, tx: StationId) -> Gain;

    /// Position of one station (current — mobility moves stations).
    fn position(&self, id: StationId) -> Point;

    /// Move station `id` to `to`, updating whatever derived state the
    /// backend keeps (dense rows/columns, grid buckets, gain caches) so
    /// that subsequent queries answer as if the station had always been
    /// there. Only backends that support mobility implement this; the
    /// default panics so a static backend can never silently ignore a
    /// move.
    fn relocate(&self, id: StationId, to: Point) {
        let _ = (id, to);
        unimplemented!("this gain backend does not support station mobility")
    }

    /// All stations whose path gain *to* `rx` is at least `threshold`,
    /// in ascending id order.
    fn hearable_by(&self, rx: StationId, threshold: Gain) -> Vec<StationId>;

    /// The strongest `k` paths into `rx`, best first; ties broken by
    /// ascending id.
    fn strongest_neighbors(&self, rx: StationId, k: usize) -> Vec<StationId>;

    /// Sum of gains into `rx` from every other station.
    fn total_exposure(&self, rx: StationId) -> f64;

    /// Downcast hook for backends built on a spatial grid; lets the SINR
    /// tracker's far-field mode reach the index. `None` for dense.
    fn as_grid(&self) -> Option<&GridGainModel> {
        None
    }
}

impl GainModel for GainMatrix {
    fn len(&self) -> usize {
        GainMatrix::len(self)
    }

    fn gain(&self, rx: StationId, tx: StationId) -> Gain {
        GainMatrix::gain(self, rx, tx)
    }

    fn position(&self, id: StationId) -> Point {
        GainMatrix::position(self, id)
    }

    fn relocate(&self, id: StationId, to: Point) {
        GainMatrix::relocate(self, id, to)
    }

    fn hearable_by(&self, rx: StationId, threshold: Gain) -> Vec<StationId> {
        GainMatrix::hearable_by(self, rx, threshold)
    }

    fn strongest_neighbors(&self, rx: StationId, k: usize) -> Vec<StationId> {
        GainMatrix::strongest_neighbors(self, rx, k)
    }

    fn total_exposure(&self, rx: StationId) -> f64 {
        GainMatrix::total_exposure(self, rx)
    }
}

/// Number of slots in the direct-mapped gain cache. At 32 bytes per slot
/// this is 2 MiB **per thread** — small next to the simulator's event
/// state, and enough to keep the hot rx↔neighbour pairs of a 10⁵-station
/// run resident.
const CACHE_SLOTS: usize = 1 << 16;

/// Monotone id disambiguating [`GridGainModel`] instances in the shared
/// per-thread cache (tests build many models per process, and a process may
/// also run several networks back to back).
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread direct-mapped cache of `(instance, key, stamp, gain)`.
    ///
    /// The cache used to be a process-wide `Mutex<Vec<_>>` inside each
    /// `GridGainModel`; that lock sat directly on the SINR hot path and
    /// would serialise the cell-sharded sweep. A thread-local cache needs no
    /// locking, and because every entry stores the *exact* recomputed gain,
    /// hit/miss patterns can never change a returned float — runs stay
    /// bit-identical at any thread count (only the `phys.gain_cache.*`
    /// counters vary). The shard workers live in a persistent
    /// [`parn_sim::pool::WorkerPool`], so their caches stay warm across
    /// sweeps. Allocation is lazy: threads that never query gains pay
    /// nothing.
    ///
    /// `stamp` packs the two stations' move epochs at fill time. Mobility
    /// bumps a station's epoch on every relocation, so a stale entry
    /// mismatches and recomputes — invalidation is scoped to exactly the
    /// pairs involving a mover, with no cross-thread cache walk.
    static GAIN_CACHE: RefCell<Vec<(u64, u64, u64, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Spatially indexed gain backend: O(M) memory, on-demand gains.
///
/// Gains are recomputed from the propagation model on each query (with a
/// direct-mapped cache in front), and neighbour queries are range-bounded
/// through the grid whenever the model can invert gain to distance
/// ([`Propagation::range_for_gain`]); otherwise they fall back to the
/// same full scans the dense backend does.
pub struct GridGainModel {
    positions: RwLock<Vec<Point>>,
    grid: RwLock<GridIndex>,
    model: Box<dyn Propagation + Send + Sync>,
    /// This model's id in the per-thread [`struct@GAIN_CACHE`].
    instance: u64,
    /// Whether `model` is reciprocal; symmetric models share one cache slot
    /// per unordered pair (see [`GainModel::gain`]).
    symmetric: bool,
    /// Per-station move epochs. Bumped by [`relocate`](GainModel::relocate);
    /// cache entries stamp the epochs they were filled under, so moving a
    /// station invalidates exactly its pairs in every thread's cache.
    epochs: Vec<AtomicU32>,
    /// When set (far-field mode keys state on cell indices), moves never
    /// grow the grid extent: escaping stations clamp to border cells,
    /// which stays exact for candidate queries.
    fixed_geometry: AtomicBool,
}

impl std::fmt::Debug for GridGainModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridGainModel")
            .field("n", &self.epochs.len())
            .field("cell", &self.grid().cell_size())
            .finish_non_exhaustive()
    }
}

impl GridGainModel {
    /// Build from station positions and a propagation model, with the
    /// automatic `≈ 1/√ρ` cell size.
    pub fn new(positions: &[Point], model: Box<dyn Propagation + Send + Sync>) -> GridGainModel {
        assert!(
            positions.len() < (1 << 32),
            "gain-cache keys pack two 32-bit station ids"
        );
        let symmetric = model.is_symmetric();
        GridGainModel {
            positions: RwLock::new(positions.to_vec()),
            grid: RwLock::new(GridIndex::build(positions)),
            model,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            symmetric,
            epochs: (0..positions.len()).map(|_| AtomicU32::new(0)).collect(),
            fixed_geometry: AtomicBool::new(false),
        }
    }

    /// The underlying spatial index. The guard is read-only; moves go
    /// through [`relocate`](GainModel::relocate) on the event loop, which
    /// never runs concurrently with readers holding this guard.
    pub fn grid(&self) -> RwLockReadGuard<'_, GridIndex> {
        self.grid.read().unwrap()
    }

    /// Pin the grid's geometry: relocations stop growing the extent for
    /// bbox-escaping moves (they clamp to border cells instead, which
    /// candidate queries handle exactly). The far-field tracker sets this
    /// because its aggregates are keyed on cell indices, which an
    /// expansion would renumber.
    pub fn set_fixed_geometry(&self, fixed: bool) {
        self.fixed_geometry.store(fixed, Ordering::Relaxed);
    }

    /// The underlying propagation model.
    pub fn propagation(&self) -> &(dyn Propagation + Send + Sync) {
        &*self.model
    }

    fn compute_gain(&self, rx: StationId, tx: StationId) -> f64 {
        let positions = self.positions.read().unwrap();
        self.model.power_gain(positions[tx], positions[rx]).value()
    }

    /// Packed move epochs of the two ids in `key` order — the cache
    /// stamp a fresh entry for this pair would carry right now.
    #[inline]
    fn stamp_for(&self, key: u64) -> u64 {
        let a = (key >> 32) as usize;
        let b = (key & 0xFFFF_FFFF) as usize;
        ((self.epochs[a].load(Ordering::Relaxed) as u64) << 32)
            | self.epochs[b].load(Ordering::Relaxed) as u64
    }
}

#[inline]
fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-distributed slot selection.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl GainModel for GridGainModel {
    fn len(&self) -> usize {
        self.epochs.len()
    }

    fn gain(&self, rx: StationId, tx: StationId) -> Gain {
        if rx == tx {
            return Gain::ZERO; // match the dense diagonal convention
        }
        // Reciprocal models guarantee g(rx, tx) == g(tx, rx) *exactly*
        // (`Propagation::is_symmetric`), so both orderings canonicalize to
        // one key — the same unordered-pair fix `GainMatrix::build` got —
        // instead of computing and caching every pair twice.
        let key = if self.symmetric && tx < rx {
            ((tx as u64) << 32) | rx as u64
        } else {
            ((rx as u64) << 32) | tx as u64
        };
        let stamp = self.stamp_for(key);
        let slot = (mix64(key ^ self.instance.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize)
            & (CACHE_SLOTS - 1);
        GAIN_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.is_empty() {
                cache.resize(CACHE_SLOTS, (0, 0, 0, 0.0));
            }
            let entry = &mut cache[slot];
            if entry.0 == self.instance && entry.1 == key && entry.2 == stamp {
                parn_sim::counter_inc!("phys.gain_cache.hit");
                return Gain(entry.3);
            }
            parn_sim::counter_inc!("phys.gain_cache.miss");
            let v = self.compute_gain(rx, tx);
            *entry = (self.instance, key, stamp, v);
            Gain(v)
        })
    }

    fn position(&self, id: StationId) -> Point {
        self.positions.read().unwrap()[id]
    }

    fn relocate(&self, id: StationId, to: Point) {
        let from;
        {
            let mut positions = self.positions.write().unwrap();
            from = positions[id];
            positions[id] = to;
        }
        {
            let mut grid = self.grid.write().unwrap();
            if !self.fixed_geometry.load(Ordering::Relaxed) && grid.expand_to_include(to) {
                parn_sim::counter_inc!("phys.grid.expansions");
            }
            if grid.relocate(id, from, to) {
                parn_sim::counter_inc!("phys.grid.rebuckets");
            }
        }
        // Stale cache entries for this station now mismatch on the epoch
        // stamp in every thread's cache — a per-pair, per-move
        // invalidation with no global drop.
        self.epochs[id].fetch_add(1, Ordering::Relaxed);
        parn_sim::counter_inc!("phys.grid.relocations");
    }

    fn hearable_by(&self, rx: StationId, threshold: Gain) -> Vec<StationId> {
        match self
            .model
            .range_for_gain(threshold)
            .filter(|r| r.is_finite())
        {
            Some(range) => {
                // Everything with gain ≥ threshold lies within `range`
                // (strictly-below contract), hence inside the bounding
                // square — the exact filter then mirrors the dense scan.
                let mut ids = self.grid().candidates_within(self.position(rx), range);
                ids.retain(|&tx| tx != rx && self.gain(rx, tx) >= threshold);
                ids.sort_unstable();
                ids
            }
            None => (0..self.len())
                .filter(|&tx| tx != rx && self.gain(rx, tx) >= threshold)
                .collect(),
        }
    }

    fn strongest_neighbors(&self, rx: StationId, k: usize) -> Vec<StationId> {
        let n = self.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let c = self.position(rx);
        let grid = self.grid();
        let mut r = grid.cell_size().max(f64::MIN_POSITIVE);
        loop {
            let covers = grid.square_covers_all(c, r);
            let mut ids = grid.candidates_within(c, r);
            ids.sort_unstable(); // ascending ids, so ties sort like dense
            ids.retain(|&j| j != rx);
            ids.sort_by(|&a, &b| {
                self.gain(rx, b)
                    .value()
                    .total_cmp(&self.gain(rx, a).value())
            });
            if covers {
                ids.truncate(k);
                return ids;
            }
            if ids.len() >= k {
                // Terminate once the ring provably holds every station at
                // least as strong as the current k-th: any such station is
                // within range_for_gain(kth), which the square already
                // covers when that bound is ≤ r.
                let kth = self.gain(rx, ids[k - 1]);
                if let Some(bound) = self.model.range_for_gain(kth) {
                    if bound <= r {
                        ids.truncate(k);
                        return ids;
                    }
                }
            }
            r *= 2.0;
        }
    }

    fn total_exposure(&self, rx: StationId) -> f64 {
        // Full scan in ascending order: identical summation order (and
        // therefore identical float result) to the dense backend.
        (0..self.len())
            .filter(|&j| j != rx)
            .map(|j| self.gain(rx, j).value())
            .sum()
    }

    fn as_grid(&self) -> Option<&GridGainModel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use crate::propagation::{FreeSpace, HorizonLimited, PowerLaw, Shadowed};
    use parn_sim::Rng;

    fn disk(n: usize, radius: f64, seed: u64) -> Vec<Point> {
        Placement::UniformDisk { n, radius }.generate(&mut Rng::new(seed))
    }

    fn assert_backends_agree(pts: &[Point], model: impl Propagation + Send + Sync + 'static) {
        let dense = GainMatrix::build(pts, &model);
        let grid = GridGainModel::new(pts, Box::new(model));
        let n = pts.len();
        for rx in 0..n {
            for tx in 0..n {
                assert_eq!(
                    GainModel::gain(&dense, rx, tx),
                    grid.gain(rx, tx),
                    "gain mismatch at ({rx}, {tx})"
                );
            }
            for &thr in &[0.0, 1e-8, 1e-5, 1e-3, 1.0] {
                assert_eq!(
                    GainModel::hearable_by(&dense, rx, Gain(thr)),
                    grid.hearable_by(rx, Gain(thr)),
                    "hearable_by mismatch at rx={rx}, thr={thr}"
                );
            }
            for &k in &[0usize, 1, 3, 8, n] {
                assert_eq!(
                    GainModel::strongest_neighbors(&dense, rx, k),
                    grid.strongest_neighbors(rx, k),
                    "strongest mismatch at rx={rx}, k={k}"
                );
            }
            assert_eq!(
                GainModel::total_exposure(&dense, rx),
                grid.total_exposure(rx),
                "exposure mismatch at rx={rx}"
            );
        }
    }

    #[test]
    fn grid_matches_dense_free_space() {
        assert_backends_agree(&disk(60, 400.0, 1), FreeSpace::unit());
    }

    #[test]
    fn grid_matches_dense_power_law() {
        assert_backends_agree(
            &disk(40, 300.0, 2),
            PowerLaw {
                k: 1.0,
                alpha: 3.0,
                r_min: 1.0,
            },
        );
    }

    #[test]
    fn grid_matches_dense_horizon_limited() {
        assert_backends_agree(
            &disk(40, 500.0, 3),
            HorizonLimited {
                inner: FreeSpace::unit(),
                horizon: 150.0,
            },
        );
    }

    #[test]
    fn grid_matches_dense_shadowed_via_full_scan() {
        // Shadowed has no range bound (range_for_gain = None); the grid
        // backend must fall back to full scans and still agree exactly.
        assert_backends_agree(
            &disk(30, 300.0, 4),
            Shadowed {
                inner: FreeSpace::unit(),
                sigma_db: 8.0,
                seed: 99,
            },
        );
    }

    #[test]
    fn grid_handles_colocated_stations() {
        let pts = vec![Point::ORIGIN, Point::ORIGIN, Point::new(5.0, 0.0)];
        let grid = GridGainModel::new(&pts, Box::new(FreeSpace::unit()));
        assert_eq!(grid.strongest_neighbors(0, 3), vec![1, 2]);
        assert_eq!(grid.gain(0, 0), Gain::ZERO);
    }

    #[test]
    fn symmetric_models_share_one_cache_slot_per_unordered_pair() {
        // Counters are process-global and tests run in parallel, so only
        // lower bounds on deltas are meaningful: other tests add hits but
        // never subtract.
        let pts = disk(64, 300.0, 7);
        let grid = GridGainModel::new(&pts, Box::new(FreeSpace::unit()));
        let hits = parn_sim::obs::counter("phys.gain_cache.hit");
        for rx in 0..pts.len() {
            for tx in 0..pts.len() {
                grid.gain(rx, tx); // warm every ordered pair once
            }
        }
        let before = hits.load(Ordering::Relaxed);
        for rx in 0..pts.len() {
            for tx in 0..rx {
                assert_eq!(grid.gain(rx, tx), grid.gain(tx, rx), "({rx},{tx})");
            }
        }
        let pairs = (pts.len() * (pts.len() - 1)) as u64;
        // Every ordered pair was warmed, the reversed orders canonicalize to
        // the same slots, and 64·63 pairs cannot self-conflict much in 2¹⁶
        // slots — so nearly all of the `pairs` queries above must be hits.
        assert!(
            hits.load(Ordering::Relaxed) - before >= pairs * 9 / 10,
            "symmetric canonicalization is not producing cache hits"
        );
    }

    #[test]
    fn asymmetric_models_keep_ordered_keys() {
        // A directional model must NOT share slots between (rx, tx) and
        // (tx, rx).
        #[derive(Debug)]
        struct EastwardOnly;
        impl Propagation for EastwardOnly {
            fn power_gain(&self, from: Point, to: Point) -> Gain {
                if to.x >= from.x {
                    Gain(1.0)
                } else {
                    Gain(0.25)
                }
            }
            fn gain_at_distance(&self, _r: f64) -> Gain {
                Gain(1.0)
            }
            fn is_symmetric(&self) -> bool {
                false
            }
        }
        let pts = vec![Point::ORIGIN, Point::new(10.0, 0.0)];
        let grid = GridGainModel::new(&pts, Box::new(EastwardOnly));
        for _ in 0..3 {
            assert_eq!(grid.gain(1, 0).value(), 1.0); // 0 → 1 heads east
            assert_eq!(grid.gain(0, 1).value(), 0.25); // 1 → 0 heads west
        }
    }

    #[test]
    fn cache_returns_consistent_values() {
        let pts = disk(50, 200.0, 5);
        let grid = GridGainModel::new(&pts, Box::new(FreeSpace::unit()));
        for _ in 0..3 {
            for rx in 0..pts.len() {
                for tx in 0..pts.len() {
                    let expect = if rx == tx {
                        0.0
                    } else {
                        FreeSpace::unit().power_gain(pts[tx], pts[rx]).value()
                    };
                    assert_eq!(grid.gain(rx, tx).value(), expect);
                }
            }
        }
    }

    #[test]
    fn relocate_matches_fresh_backends_after_moves() {
        // After a sequence of moves (warming the gain cache between them,
        // so stale entries exist to be invalidated), the mutated grid
        // backend must agree bit-for-bit with both a fresh grid build and
        // the dense matrix over the moved positions.
        let mut rng = Rng::new(31);
        let mut pts = disk(48, 300.0, 6);
        let grid = GridGainModel::new(&pts, Box::new(FreeSpace::unit()));
        for step in 0..40 {
            // Warm every pair touching the upcoming mover.
            let id = rng.below(pts.len() as u64) as usize;
            for j in 0..pts.len() {
                grid.gain(id, j);
                grid.gain(j, id);
            }
            let to = Point::new(rng.range_f64(-280.0, 280.0), rng.range_f64(-280.0, 280.0));
            grid.relocate(id, to);
            pts[id] = to;
            if step % 8 != 0 {
                continue; // full cross-check every 8th move
            }
            let dense = GainMatrix::build(&pts, &FreeSpace::unit());
            for rx in 0..pts.len() {
                for tx in 0..pts.len() {
                    assert_eq!(
                        grid.gain(rx, tx),
                        GainModel::gain(&dense, rx, tx),
                        "stale gain at ({rx}, {tx}) after moving {id}"
                    );
                }
                assert_eq!(
                    grid.hearable_by(rx, Gain(1e-5)),
                    GainModel::hearable_by(&dense, rx, Gain(1e-5))
                );
                assert_eq!(
                    grid.strongest_neighbors(rx, 6),
                    GainModel::strongest_neighbors(&dense, rx, 6)
                );
            }
        }
    }

    #[test]
    fn relocate_with_fixed_geometry_clamps_instead_of_expanding() {
        let pts = disk(30, 100.0, 8);
        let grid = GridGainModel::new(&pts, Box::new(FreeSpace::unit()));
        let (_, _, nx, ny) = {
            let g = grid.grid();
            let (min, cell, nx, ny) = g.geometry();
            (min, cell, nx, ny)
        };
        grid.set_fixed_geometry(true);
        grid.relocate(0, Point::new(9000.0, 9000.0));
        {
            let g = grid.grid();
            let (_, _, nx2, ny2) = g.geometry();
            assert_eq!((nx, ny), (nx2, ny2), "fixed geometry must not grow");
        }
        // The escaped station still shows up in covering queries.
        let ids = grid.hearable_by(0, Gain(0.0));
        assert_eq!(ids.len(), pts.len() - 1);
        let dense_pts: Vec<Point> = (0..pts.len()).map(|i| grid.position(i)).collect();
        let dense = GainMatrix::build(&dense_pts, &FreeSpace::unit());
        for rx in 0..pts.len() {
            for tx in 0..pts.len() {
                assert_eq!(grid.gain(rx, tx), GainModel::gain(&dense, rx, tx));
            }
        }
    }
}
