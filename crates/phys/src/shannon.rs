//! Shannon capacity and the paper's reception criterion.
//!
//! §3.4: a packet from `k` is successfully received at `i` iff, for the
//! whole reception,
//!
//! ```text
//! S/N ≥ β · (2^(C/W) − 1)
//! ```
//!
//! where `C` is the *design rate* the stations attempt, `W` the signal
//! bandwidth, and `β > 1` (≈ 3, i.e. ~5 dB) the margin between the Shannon
//! bound and what a practical modem achieves.

use crate::units::Db;

/// Shannon capacity `C = W·log₂(1 + S/N)` in bit/s for bandwidth `w_hz`
/// and linear SNR `snr`.
pub fn capacity_bps(w_hz: f64, snr: f64) -> f64 {
    debug_assert!(w_hz >= 0.0 && snr >= -1.0);
    w_hz * (1.0 + snr).log2()
}

/// Spectral efficiency `C/W` in bit/s/Hz at linear SNR `snr`.
pub fn spectral_efficiency(snr: f64) -> f64 {
    (1.0 + snr).log2()
}

/// The minimum SNR that Shannon allows for rate `rate_bps` in bandwidth
/// `w_hz`: `2^(C/W) − 1`.
pub fn min_snr_for_rate(rate_bps: f64, w_hz: f64) -> f64 {
    debug_assert!(w_hz > 0.0);
    2f64.powf(rate_bps / w_hz) - 1.0
}

/// Reception parameters: design rate, bandwidth, margin.
///
/// ```
/// use parn_phys::ReceptionCriterion;
/// // 100 kb/s spread over 10 MHz: 20 dB of processing gain lets the
/// // signal sit ~16.6 dB below the interference and still decode.
/// let c = ReceptionCriterion::with_5db_margin(1e5, 1e7);
/// assert!((c.processing_gain_db().value() - 20.0).abs() < 1e-9);
/// assert!(c.passes(0.05) && !c.passes(0.02));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ReceptionCriterion {
    /// Design data rate `C` (bit/s).
    pub rate_bps: f64,
    /// Signal bandwidth `W` (Hz). `W/C` ≫ 1 is the spread-spectrum regime.
    pub bandwidth_hz: f64,
    /// Margin β (linear ratio > 1; the paper suggests ≈ 3, i.e. 5 dB).
    pub margin: f64,
}

impl ReceptionCriterion {
    /// Criterion with the paper's 5 dB margin.
    pub fn with_5db_margin(rate_bps: f64, bandwidth_hz: f64) -> ReceptionCriterion {
        ReceptionCriterion {
            rate_bps,
            bandwidth_hz,
            margin: Db(5.0).to_ratio(),
        }
    }

    /// The SINR threshold θ: reception succeeds iff SINR ≥ θ throughout.
    pub fn threshold(&self) -> f64 {
        self.margin * min_snr_for_rate(self.rate_bps, self.bandwidth_hz)
    }

    /// The threshold in decibels.
    pub fn threshold_db(&self) -> Db {
        Db::from_ratio(self.threshold())
    }

    /// Processing gain `W/C` (linear): how far below the noise the signal
    /// may sit while the despread data still clears Shannon.
    pub fn processing_gain(&self) -> f64 {
        self.bandwidth_hz / self.rate_bps
    }

    /// Processing gain in dB. The paper determines "the proper amount of
    /// processing gain ... in the range of 20 to 25 dB" (§6).
    pub fn processing_gain_db(&self) -> Db {
        Db::from_ratio(self.processing_gain())
    }

    /// Whether a measured SINR passes the criterion.
    #[inline]
    pub fn passes(&self, sinr: f64) -> bool {
        sinr >= self.threshold()
    }
}

/// Design helper: the §6 processing-gain budget. Given the din-limited SNR
/// at the characteristic neighbour distance, a detection margin, and a
/// range margin for reaching 2× farther (−6 dB), return the required
/// processing gain in dB.
pub fn required_processing_gain_db(
    din_snr_db: f64,
    detection_margin_db: f64,
    range_margin_db: f64,
) -> f64 {
    // The despread SNR must be ≥ detection margin while the RF SNR is
    // din_snr − range_margin; processing gain makes up the difference.
    detection_margin_db + range_margin_db - din_snr_db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_basics() {
        // SNR = 1 doubles nothing: C/W = 1 bit/s/Hz.
        assert!((spectral_efficiency(1.0) - 1.0).abs() < 1e-12);
        assert!((capacity_bps(1000.0, 3.0) - 2000.0).abs() < 1e-9);
        assert_eq!(capacity_bps(1000.0, 0.0), 0.0);
    }

    #[test]
    fn paper_capacity_at_minus_20db() {
        // §4: "with a signal-to-noise ratio of one part in one hundred,
        // C = W log2(1.01)" — about 14 bit/s per kHz.
        let eff = spectral_efficiency(0.01);
        assert!((eff * 1000.0 - 14.35).abs() < 0.01, "got {}", eff * 1000.0);
    }

    #[test]
    fn paper_capacity_at_quarter_duty() {
        // §4: at η = 0.25 the SNR is 4× better (−14 dB): ≈ 56 bit/s/kHz.
        let eff = spectral_efficiency(0.04);
        assert!((eff * 1000.0 - 56.6).abs() < 0.1, "got {}", eff * 1000.0);
    }

    #[test]
    fn low_snr_capacity_is_linear() {
        // §4 footnote: log2(1+x) ≈ 1.44·x for x ≪ 1 — capacity linear in
        // SNR, which is why halving duty cycle is throughput-neutral.
        let x = 0.003;
        let ratio = spectral_efficiency(x) / (x / std::f64::consts::LN_2);
        assert!((ratio - 1.0).abs() < 0.01);
    }

    #[test]
    fn min_snr_inverts_capacity() {
        let w = 1e6;
        let rate = 2.5e5;
        let snr = min_snr_for_rate(rate, w);
        assert!((capacity_bps(w, snr) - rate).abs() < 1e-6);
    }

    #[test]
    fn threshold_includes_margin() {
        let c = ReceptionCriterion {
            rate_bps: 1e5,
            bandwidth_hz: 1e7,
            margin: 3.0,
        };
        let bare = min_snr_for_rate(1e5, 1e7);
        assert!((c.threshold() - 3.0 * bare).abs() < 1e-15);
        assert!(c.passes(c.threshold()));
        assert!(!c.passes(c.threshold() * 0.999));
    }

    #[test]
    fn five_db_margin_is_about_three() {
        let c = ReceptionCriterion::with_5db_margin(1e5, 1e7);
        assert!((c.margin - 3.162).abs() < 1e-3);
    }

    #[test]
    fn processing_gain_20_to_25_db_regime() {
        // A 100:1 spread is 20 dB; 316:1 is 25 dB.
        let c20 = ReceptionCriterion::with_5db_margin(1e5, 1e7);
        assert!((c20.processing_gain_db().value() - 20.0).abs() < 1e-9);
        let c25 = ReceptionCriterion::with_5db_margin(1e5, 3.162e7);
        assert!((c25.processing_gain_db().value() - 25.0).abs() < 0.01);
    }

    #[test]
    fn spread_signal_decodes_below_noise() {
        // With 20 dB of processing gain and a 5 dB margin, reception works
        // down to about -16.6 dB SINR: the signal is *below* the din.
        let c = ReceptionCriterion::with_5db_margin(1e5, 1e7);
        let th_db = c.threshold_db().value();
        assert!((-17.0..-16.0).contains(&th_db), "threshold {th_db} dB");
        assert!(c.passes(0.05)); // -13 dB passes
        assert!(!c.passes(0.02)); // -17 dB fails
    }

    #[test]
    fn gain_budget_matches_paper() {
        // §6: din SNR −10..−15 dB (reasonable duty cycles), 5 dB detection
        // headroom, 6 dB for doubled range ⇒ 21..26 dB ≈ "20 to 25 dB".
        let lo = required_processing_gain_db(-10.0, 5.0, 6.0);
        let hi = required_processing_gain_db(-15.0, 5.0, 6.0);
        assert!((21.0 - lo).abs() < 1e-9);
        assert!((26.0 - hi).abs() < 1e-9);
    }
}
