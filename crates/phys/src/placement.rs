//! Station placement models.
//!
//! The paper's analysis assumes stations "distributed randomly within a
//! circle of radius R" (§4); its design must "cope with varying densities"
//! (§6). We provide the uniform-disk model the analysis uses plus variants
//! for robustness experiments: a Poisson point process (random count), a
//! regular grid (best case), and clustered placements (worst case for
//! density variation).

use crate::geom::{Disk, Point};
use parn_sim::Rng;

/// A named placement model.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Exactly `n` stations uniform in a disk of the given radius.
    UniformDisk {
        /// Number of stations.
        n: usize,
        /// Disk radius (m).
        radius: f64,
    },
    /// Poisson point process of the given intensity (stations/m²) in a disk;
    /// the station count itself is random.
    PoissonDisk {
        /// Expected density, stations per square meter.
        density: f64,
        /// Disk radius (m).
        radius: f64,
    },
    /// A jittered square grid clipped to a disk: `nx × ny` cells of size
    /// `spacing`, each station displaced by up to `jitter` in each axis.
    Grid {
        /// Grid columns.
        nx: usize,
        /// Grid rows.
        ny: usize,
        /// Cell size (m).
        spacing: f64,
        /// Max per-axis displacement (m).
        jitter: f64,
    },
    /// Gaussian clusters: `clusters` cluster centers uniform in the disk,
    /// `per_cluster` stations normally scattered (σ = `sigma`) around each.
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Stations per cluster.
        per_cluster: usize,
        /// Cluster spread (m).
        sigma: f64,
        /// Disk radius for cluster centers (m).
        radius: f64,
    },
}

impl Placement {
    /// Generate station positions. Deterministic in `rng`.
    pub fn generate(&self, rng: &mut Rng) -> Vec<Point> {
        match *self {
            Placement::UniformDisk { n, radius } => {
                (0..n).map(|_| uniform_in_disk(radius, rng)).collect()
            }
            Placement::PoissonDisk { density, radius } => {
                let area = std::f64::consts::PI * radius * radius;
                let n = rng.poisson(density * area) as usize;
                (0..n).map(|_| uniform_in_disk(radius, rng)).collect()
            }
            Placement::Grid {
                nx,
                ny,
                spacing,
                jitter,
            } => {
                let mut pts = Vec::with_capacity(nx * ny);
                let x0 = -(nx as f64 - 1.0) * spacing / 2.0;
                let y0 = -(ny as f64 - 1.0) * spacing / 2.0;
                for iy in 0..ny {
                    for ix in 0..nx {
                        let jx = if jitter > 0.0 {
                            rng.range_f64(-jitter, jitter)
                        } else {
                            0.0
                        };
                        let jy = if jitter > 0.0 {
                            rng.range_f64(-jitter, jitter)
                        } else {
                            0.0
                        };
                        pts.push(Point::new(
                            x0 + ix as f64 * spacing + jx,
                            y0 + iy as f64 * spacing + jy,
                        ));
                    }
                }
                pts
            }
            Placement::Clustered {
                clusters,
                per_cluster,
                sigma,
                radius,
            } => {
                let mut pts = Vec::with_capacity(clusters * per_cluster);
                for _ in 0..clusters {
                    let c = uniform_in_disk(radius, rng);
                    for _ in 0..per_cluster {
                        pts.push(Point::new(rng.normal(c.x, sigma), rng.normal(c.y, sigma)));
                    }
                }
                pts
            }
        }
    }

    /// Nominal region the placement occupies, for density book-keeping.
    pub fn region(&self) -> Disk {
        match *self {
            Placement::UniformDisk { radius, .. }
            | Placement::PoissonDisk { radius, .. }
            | Placement::Clustered { radius, .. } => Disk::new(Point::ORIGIN, radius),
            Placement::Grid {
                nx, ny, spacing, ..
            } => {
                let half_diag = spacing
                    * (((nx as f64) * (nx as f64) + (ny as f64) * (ny as f64)).sqrt() / 2.0);
                Disk::new(Point::ORIGIN, half_diag)
            }
        }
    }

    /// Expected number of stations.
    pub fn expected_count(&self) -> f64 {
        match *self {
            Placement::UniformDisk { n, .. } => n as f64,
            Placement::PoissonDisk { density, radius } => {
                density * std::f64::consts::PI * radius * radius
            }
            Placement::Grid { nx, ny, .. } => (nx * ny) as f64,
            Placement::Clustered {
                clusters,
                per_cluster,
                ..
            } => (clusters * per_cluster) as f64,
        }
    }
}

/// Uniform point in a disk of radius `r` centered at the origin
/// (inverse-CDF in radius: `r·√u`).
pub fn uniform_in_disk(r: f64, rng: &mut Rng) -> Point {
    let radius = r * rng.next_f64().sqrt();
    let theta = rng.range_f64(0.0, std::f64::consts::TAU);
    Point::new(radius * theta.cos(), radius * theta.sin())
}

/// Average density (stations/m²) of `points` over a disk region.
pub fn density(points: &[Point], region: &Disk) -> f64 {
    points.len() as f64 / region.area()
}

/// The paper's characteristic nearest-neighbour length `1/√ρ`: a disk of
/// this radius around a station holds π ≈ 3 expected neighbours (§6).
pub fn characteristic_length(rho: f64) -> f64 {
    debug_assert!(rho > 0.0);
    1.0 / rho.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(0xDECAF)
    }

    #[test]
    fn uniform_disk_count_and_bounds() {
        let p = Placement::UniformDisk {
            n: 500,
            radius: 100.0,
        };
        let pts = p.generate(&mut rng());
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| p.distance(Point::ORIGIN) <= 100.0));
    }

    #[test]
    fn uniform_disk_is_area_uniform() {
        // Half the points should land within r/√2 of the center.
        let pts = Placement::UniformDisk {
            n: 20_000,
            radius: 1.0,
        }
        .generate(&mut rng());
        let inner = pts
            .iter()
            .filter(|p| p.distance(Point::ORIGIN) <= 1.0 / 2f64.sqrt())
            .count();
        let frac = inner as f64 / pts.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn poisson_disk_count_near_expectation() {
        let p = Placement::PoissonDisk {
            density: 0.01,
            radius: 100.0,
        };
        let expected = p.expected_count(); // ~314
        let pts = p.generate(&mut rng());
        let n = pts.len() as f64;
        assert!((n - expected).abs() < 4.0 * expected.sqrt(), "n = {n}");
    }

    #[test]
    fn grid_layout() {
        let p = Placement::Grid {
            nx: 3,
            ny: 2,
            spacing: 10.0,
            jitter: 0.0,
        };
        let pts = p.generate(&mut rng());
        assert_eq!(pts.len(), 6);
        // Centered: corners at (±10, ±5).
        assert!(pts.contains(&Point::new(-10.0, -5.0)));
        assert!(pts.contains(&Point::new(10.0, 5.0)));
    }

    #[test]
    fn grid_jitter_stays_bounded() {
        let p = Placement::Grid {
            nx: 5,
            ny: 5,
            spacing: 10.0,
            jitter: 1.0,
        };
        let exact = Placement::Grid {
            nx: 5,
            ny: 5,
            spacing: 10.0,
            jitter: 0.0,
        }
        .generate(&mut rng());
        let jittered = p.generate(&mut rng());
        for (a, b) in exact.iter().zip(&jittered) {
            assert!((a.x - b.x).abs() <= 1.0 && (a.y - b.y).abs() <= 1.0);
        }
    }

    #[test]
    fn clustered_count() {
        let p = Placement::Clustered {
            clusters: 4,
            per_cluster: 25,
            sigma: 5.0,
            radius: 100.0,
        };
        assert_eq!(p.generate(&mut rng()).len(), 100);
        assert_eq!(p.expected_count(), 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Placement::UniformDisk {
            n: 10,
            radius: 50.0,
        };
        let a = p.generate(&mut Rng::new(1));
        let b = p.generate(&mut Rng::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn characteristic_length_neighbour_count() {
        // Disk of radius 1/√ρ has area π/ρ, so expected π neighbours.
        let rho = 0.02;
        let l = characteristic_length(rho);
        let expected = rho * std::f64::consts::PI * l * l;
        assert!((expected - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn density_helper() {
        let region = Disk::new(Point::ORIGIN, 10.0);
        let pts = vec![Point::ORIGIN; 314];
        let rho = density(&pts, &region);
        assert!((rho - 1.0).abs() < 0.01);
    }
}
