//! Incremental SINR tracking for in-flight receptions.
//!
//! The paper's criterion (§3.4) is that the signal-to-noise ratio must stay
//! above the threshold *for the entire duration* of a reception, where the
//! "noise" is thermal noise plus the power sum of every other concurrent
//! transmission (Eq. 5–6). The tracker maintains the set of active
//! transmissions and, for every in-flight reception, the running
//! interference sum; each transmission start/end re-evaluates every active
//! reception, so a reception is marked failed at the first instant its SINR
//! dips below threshold.
//!
//! A receiver that transmits while receiving is modelled with a huge
//! self-interference gain — "no feasible amount of processing gain ... can
//! achieve reception while the local transmitter is operating" (§5, Type 3).

use crate::gains::{GainMatrix, StationId};
use crate::units::PowerW;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to an active transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(pub u64);

/// Handle to an active reception.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RxId(pub u64);

/// An on-air transmission.
#[derive(Clone, Debug)]
pub struct ActiveTransmission {
    /// Transmitting station.
    pub station: StationId,
    /// Transmit power.
    pub power: PowerW,
    /// The station this transmission is addressed to (`None` for
    /// broadcast/control emissions).
    pub intended_rx: Option<StationId>,
}

/// One interferer's contribution at the moment a reception first failed.
#[derive(Clone, Debug)]
pub struct Blame {
    /// Interfering transmitter.
    pub station: StationId,
    /// Its intended receiver.
    pub intended_rx: Option<StationId>,
    /// Received interference power it contributed.
    pub contribution: PowerW,
}

/// Final report for a completed reception.
#[derive(Clone, Debug)]
pub struct ReceptionReport {
    /// Receiving station.
    pub rx: StationId,
    /// Sending station.
    pub src: StationId,
    /// Whether SINR stayed at or above threshold throughout.
    pub success: bool,
    /// The lowest SINR observed during the reception.
    pub min_sinr: f64,
    /// Interferer snapshot at first failure (empty on success).
    pub blame: Vec<Blame>,
    /// Total interference-plus-noise at the failure instant (zero on
    /// success) — the denominator for judging which interferers were
    /// individually significant.
    pub interference_at_failure: PowerW,
}

#[derive(Clone, Debug)]
struct ActiveReception {
    rx: StationId,
    src_tx: TxId,
    src_station: StationId,
    signal: PowerW,
    interference: PowerW,
    threshold: f64,
    min_sinr: f64,
    failed: bool,
    blame: Vec<Blame>,
    interference_at_failure: PowerW,
}

/// The interference bookkeeper.
#[derive(Clone, Debug)]
pub struct SinrTracker {
    gains: Arc<GainMatrix>,
    thermal: PowerW,
    self_gain: f64,
    active_tx: BTreeMap<u64, ActiveTransmission>,
    receptions: BTreeMap<u64, ActiveReception>,
    next_tx: u64,
    next_rx: u64,
    /// Successive-interference-cancellation depth (0 = plain receivers).
    sic_depth: usize,
}

impl SinrTracker {
    /// Create a tracker over a gain matrix.
    ///
    /// * `thermal` — constant noise floor added at every receiver. The
    ///   paper argues interference dominates it at scale (§3.4), but it
    ///   keeps SINR finite in empty networks.
    /// * `self_gain` — effective power gain of a station's transmitter into
    ///   its own receiver (duplexer leakage); enormous by construction.
    pub fn new(gains: Arc<GainMatrix>, thermal: PowerW, self_gain: f64) -> SinrTracker {
        SinrTracker {
            gains,
            thermal,
            self_gain,
            active_tx: BTreeMap::new(),
            receptions: BTreeMap::new(),
            next_tx: 0,
            next_rx: 0,
            sic_depth: 0,
        }
    }

    /// Enable successive interference cancellation: receivers may decode
    /// and subtract up to `depth` of the strongest interferers (§3.4
    /// footnote 2). Costs a full interference recomputation per
    /// re-evaluation, so keep `depth` small.
    pub fn with_sic(mut self, depth: usize) -> SinrTracker {
        self.sic_depth = depth;
        self
    }

    /// The gain matrix the tracker uses.
    pub fn gains(&self) -> &GainMatrix {
        &self.gains
    }

    /// Received power at `rx` from a transmission by `tx_station` at `power`.
    fn received_power(&self, rx: StationId, tx_station: StationId, power: PowerW) -> PowerW {
        if tx_station == rx {
            power * self.self_gain
        } else {
            self.gains.gain(rx, tx_station).apply(power)
        }
    }

    /// Total interference-plus-noise currently seen at `rx`, excluding the
    /// transmission `exclude` (if any). This is Eq. 5 evaluated now.
    pub fn interference_at(&self, rx: StationId, exclude: Option<TxId>) -> PowerW {
        let mut total = self.thermal;
        for (&id, tx) in &self.active_tx {
            if Some(TxId(id)) == exclude {
                continue;
            }
            total += self.received_power(rx, tx.station, tx.power);
        }
        total
    }

    /// Total received power at `rx` from all active transmissions plus
    /// thermal noise (what a CSMA carrier-sense measurement sees).
    pub fn sensed_power(&self, rx: StationId) -> PowerW {
        self.interference_at(rx, None)
    }

    /// Number of active transmissions.
    pub fn active_transmissions(&self) -> usize {
        self.active_tx.len()
    }

    /// Number of in-flight receptions.
    pub fn active_receptions(&self) -> usize {
        self.receptions.len()
    }

    /// Begin a transmission. All in-flight receptions immediately see the
    /// extra interference.
    pub fn start_transmission(
        &mut self,
        station: StationId,
        power: PowerW,
        intended_rx: Option<StationId>,
    ) -> TxId {
        debug_assert!(power.value() > 0.0, "zero-power transmission");
        let id = self.next_tx;
        self.next_tx += 1;
        // Insert first so that blame snapshots taken during re-evaluation
        // include this transmission (a fresh id can never be a reception's
        // own source).
        self.active_tx.insert(
            id,
            ActiveTransmission {
                station,
                power,
                intended_rx,
            },
        );
        let deltas: Vec<(u64, PowerW)> = self
            .receptions
            .iter()
            .map(|(&rid, r)| (rid, self.received_power(r.rx, station, power)))
            .collect();
        for (rid, d) in deltas {
            self.receptions
                .get_mut(&rid)
                .expect("reception vanished")
                .interference += d;
            self.reevaluate(rid);
        }
        TxId(id)
    }

    /// End a transmission. Interference drops for everyone else.
    pub fn end_transmission(&mut self, id: TxId) {
        let tx = self
            .active_tx
            .remove(&id.0)
            .expect("ending unknown transmission");
        let deltas: Vec<(u64, PowerW)> = self
            .receptions
            .iter()
            .filter(|(_, r)| r.src_tx != id)
            .map(|(&rid, r)| (rid, self.received_power(r.rx, tx.station, tx.power)))
            .collect();
        for (rid, d) in deltas {
            let r = self.receptions.get_mut(&rid).expect("reception vanished");
            r.interference -= d;
            // Numerical guard: the running sum may drift a hair negative.
            if r.interference.value() < 0.0 {
                r.interference = PowerW::ZERO;
            }
            // Interference only went down: no failure can be triggered, but
            // min_sinr bookkeeping stays consistent on the next update.
        }
    }

    /// Begin tracking the reception at `rx` of the signal carried by
    /// transmission `src`. `threshold` is the SINR the reception must keep.
    ///
    /// Panics if `src` is not an active transmission.
    pub fn begin_reception(&mut self, rx: StationId, src: TxId, threshold: f64) -> RxId {
        let tx = self
            .active_tx
            .get(&src.0)
            .expect("receiving from unknown transmission")
            .clone();
        let signal = self.received_power(rx, tx.station, tx.power);
        let interference = self.interference_at(rx, Some(src));
        let id = self.next_rx;
        self.next_rx += 1;
        self.receptions.insert(
            id,
            ActiveReception {
                rx,
                src_tx: src,
                src_station: tx.station,
                signal,
                interference,
                threshold,
                min_sinr: f64::INFINITY,
                failed: false,
                blame: Vec::new(),
                interference_at_failure: PowerW::ZERO,
            },
        );
        self.reevaluate(id);
        RxId(id)
    }

    /// Finish a reception and report its outcome.
    pub fn complete_reception(&mut self, id: RxId) -> ReceptionReport {
        // Final re-evaluation so min_sinr reflects the closing state.
        self.reevaluate(id.0);
        let r = self
            .receptions
            .remove(&id.0)
            .expect("completing unknown reception");
        ReceptionReport {
            rx: r.rx,
            src: r.src_station,
            success: !r.failed,
            min_sinr: r.min_sinr,
            blame: r.blame,
            interference_at_failure: r.interference_at_failure,
        }
    }

    /// Abort a reception without a report (e.g. the simulation is tearing
    /// down).
    pub fn abort_reception(&mut self, id: RxId) {
        self.receptions.remove(&id.0);
    }

    /// Current SINR of a reception.
    pub fn current_sinr(&self, id: RxId) -> f64 {
        let r = self.receptions.get(&id.0).expect("unknown reception");
        Self::sinr_of(r)
    }

    fn sinr_of(r: &ActiveReception) -> f64 {
        if r.interference.value() <= 0.0 {
            f64::INFINITY
        } else {
            r.signal.value() / r.interference.value()
        }
    }

    /// SINR of a reception after SIC, recomputed from the full active set.
    fn sinr_with_sic(&self, r: &ActiveReception) -> f64 {
        let contributions: Vec<f64> = self
            .active_tx
            .iter()
            .filter(|(&id, _)| TxId(id) != r.src_tx)
            .map(|(_, tx)| self.received_power(r.rx, tx.station, tx.power).value())
            .collect();
        crate::sic::effective_sinr(
            r.signal.value(),
            self.thermal.value(),
            &contributions,
            self.sic_depth,
            r.threshold,
        )
    }

    /// Update min_sinr and failure state; snapshot blame on first failure.
    fn reevaluate(&mut self, rid: u64) {
        let sic_sinr = if self.sic_depth > 0 {
            let r = self.receptions.get(&rid).expect("unknown reception");
            Some(self.sinr_with_sic(r))
        } else {
            None
        };
        let (sinr, newly_failed, rx, src_tx) = {
            let r = self.receptions.get_mut(&rid).expect("unknown reception");
            let sinr = sic_sinr.unwrap_or_else(|| Self::sinr_of(r));
            r.min_sinr = r.min_sinr.min(sinr);
            let newly_failed = !r.failed && sinr < r.threshold;
            if newly_failed {
                r.failed = true;
            }
            (sinr, newly_failed, r.rx, r.src_tx)
        };
        let _ = sinr;
        if newly_failed {
            let blame: Vec<Blame> = self
                .active_tx
                .iter()
                .filter(|(&id, _)| TxId(id) != src_tx)
                .map(|(_, tx)| Blame {
                    station: tx.station,
                    intended_rx: tx.intended_rx,
                    contribution: self.received_power(rx, tx.station, tx.power),
                })
                .filter(|b| b.contribution.value() > 0.0)
                .collect();
            let r = self.receptions.get_mut(&rid).expect("unknown reception");
            r.interference_at_failure = r.interference;
            r.blame = blame;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::propagation::FreeSpace;

    /// Three stations on a line: 0 --10m-- 1 --20m-- 2.
    fn tracker() -> SinrTracker {
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        SinrTracker::new(Arc::new(gm), PowerW(1e-9), 1e12)
    }

    #[test]
    fn clean_reception_succeeds() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success);
        assert!(rep.min_sinr > 1e5); // 0.01 W signal over ~1e-9 W noise
        assert!(rep.blame.is_empty());
        assert_eq!((rep.rx, rep.src), (1, 0));
    }

    #[test]
    fn interference_sums_eq5() {
        let mut t = tracker();
        let _a = t.start_transmission(0, PowerW(1.0), None);
        let _b = t.start_transmission(2, PowerW(4.0), None);
        // At station 1: 1.0/100 + 4.0/400 + thermal.
        let n = t.interference_at(1, None);
        assert!((n.value() - (0.01 + 0.01 + 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn exclusion_removes_source() {
        let mut t = tracker();
        let a = t.start_transmission(0, PowerW(1.0), None);
        let n = t.interference_at(1, Some(a));
        assert!((n.value() - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn strong_interferer_kills_reception() {
        let mut t = tracker();
        let tx = t.start_transmission(2, PowerW(1.0), Some(1));
        // Signal at 1: 1/400 = 0.0025.
        let rx = t.begin_reception(1, tx, 0.1);
        // Station 0 fires up next door: interference 1/100 = 0.01,
        // SINR = 0.25 — still above 0.1. Then it raises power.
        let i1 = t.start_transmission(0, PowerW(1.0), None);
        assert!(t.current_sinr(rx) > 0.1);
        let i2 = t.start_transmission(0, PowerW(10.0), None);
        assert!(t.current_sinr(rx) < 0.1);
        t.end_transmission(i1);
        t.end_transmission(i2);
        // Interference gone, but the dip already doomed the packet.
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(!rep.success);
        assert!(rep.min_sinr < 0.1);
        // Blame snapshot holds both interferers from the failure moment.
        assert_eq!(rep.blame.len(), 2);
        assert!(rep.blame.iter().all(|b| b.station == 0));
    }

    #[test]
    fn late_interferer_after_end_is_harmless() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.1);
        let rep = t.complete_reception(rx);
        assert!(rep.success);
        // Interference arriving after completion doesn't matter.
        let i = t.start_transmission(2, PowerW(100.0), None);
        t.end_transmission(i);
        t.end_transmission(tx);
    }

    #[test]
    fn self_transmission_is_fatal_type3() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        // Station 1 transmits while receiving.
        let own = t.start_transmission(1, PowerW(1.0), Some(2));
        assert!(t.current_sinr(rx) < 1e-9);
        t.end_transmission(own);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(!rep.success);
        let self_blame: Vec<_> =
            rep.blame.iter().filter(|b| b.station == 1).collect();
        assert_eq!(self_blame.len(), 1);
        assert!(self_blame[0].contribution.value() > 1e6);
    }

    #[test]
    fn two_receptions_at_one_station_type2_with_headroom() {
        // Two senders to one receiver: with spread spectrum both can
        // survive if thresholds are low (multiple despreading channels).
        let mut t = tracker();
        let ta = t.start_transmission(0, PowerW(1.0), Some(1)); // 0.01 at 1
        let tb = t.start_transmission(2, PowerW(4.0), Some(1)); // 0.01 at 1
        let ra = t.begin_reception(1, ta, 0.5);
        let rb = t.begin_reception(1, tb, 0.5);
        // Each sees the other as interference: SINR ≈ 1.0 > 0.5.
        assert!((t.current_sinr(ra) - 1.0).abs() < 1e-3);
        assert!((t.current_sinr(rb) - 1.0).abs() < 1e-3);
        let rep_a = t.complete_reception(ra);
        let rep_b = t.complete_reception(rb);
        t.end_transmission(ta);
        t.end_transmission(tb);
        assert!(rep_a.success && rep_b.success);
    }

    #[test]
    fn two_receptions_fail_with_tight_threshold() {
        let mut t = tracker();
        let ta = t.start_transmission(0, PowerW(1.0), Some(1));
        let tb = t.start_transmission(2, PowerW(4.0), Some(1));
        let ra = t.begin_reception(1, ta, 2.0);
        let rb = t.begin_reception(1, tb, 2.0);
        let rep_a = t.complete_reception(ra);
        let rep_b = t.complete_reception(rb);
        t.end_transmission(ta);
        t.end_transmission(tb);
        assert!(!rep_a.success && !rep_b.success);
        // Each blames the other sender, whose intended_rx is station 1 —
        // the Type 2 signature.
        assert_eq!(rep_a.blame.len(), 1);
        assert_eq!(rep_a.blame[0].intended_rx, Some(1));
        assert_eq!(rep_b.blame[0].station, 0);
    }

    #[test]
    fn min_sinr_tracks_worst_moment() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 1e-6);
        let i = t.start_transmission(2, PowerW(400.0), None); // interference 1.0 at station 1
        t.end_transmission(i);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success); // threshold was tiny
        // Worst moment: signal 0.01 over interference ~1.0.
        assert!((rep.min_sinr - 0.01).abs() < 1e-4, "min {}", rep.min_sinr);
    }

    #[test]
    fn sensed_power_for_carrier_sense() {
        let mut t = tracker();
        assert!((t.sensed_power(1).value() - 1e-9).abs() < 1e-18);
        let tx = t.start_transmission(0, PowerW(1.0), None);
        assert!(t.sensed_power(1).value() > 0.009);
        t.end_transmission(tx);
        assert!((t.sensed_power(1).value() - 1e-9).abs() < 1e-12);
    }

    #[test]
    fn active_counters() {
        let mut t = tracker();
        assert_eq!((t.active_transmissions(), t.active_receptions()), (0, 0));
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        assert_eq!((t.active_transmissions(), t.active_receptions()), (1, 1));
        t.abort_reception(rx);
        t.end_transmission(tx);
        assert_eq!((t.active_transmissions(), t.active_receptions()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "ending unknown transmission")]
    fn double_end_panics() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), None);
        t.end_transmission(tx);
        t.end_transmission(tx);
    }
}
