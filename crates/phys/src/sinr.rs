//! Incremental SINR tracking for in-flight receptions.
//!
//! The paper's criterion (§3.4) is that the signal-to-noise ratio must stay
//! above the threshold *for the entire duration* of a reception, where the
//! "noise" is thermal noise plus the power sum of every other concurrent
//! transmission (Eq. 5–6). The tracker maintains the set of active
//! transmissions and, for every in-flight reception, the running
//! interference sum; each transmission start/end re-evaluates every active
//! reception, so a reception is marked failed at the first instant its SINR
//! dips below threshold.
//!
//! A receiver that transmits while receiving is modelled with a huge
//! self-interference gain — "no feasible amount of processing gain ... can
//! achieve reception while the local transmitter is operating" (§5, Type 3).

use crate::gainmodel::GainModel;
use crate::gains::StationId;
use crate::geom::Point;
use crate::units::PowerW;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to an active transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(pub u64);

/// Handle to an active reception.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RxId(pub u64);

/// An on-air transmission.
#[derive(Clone, Debug)]
pub struct ActiveTransmission {
    /// Transmitting station.
    pub station: StationId,
    /// Transmit power.
    pub power: PowerW,
    /// The station this transmission is addressed to (`None` for
    /// broadcast/control emissions).
    pub intended_rx: Option<StationId>,
    /// True for deliberate interference (an injected jammer) rather than
    /// a protocol transmission.
    pub jammer: bool,
}

/// One interferer's contribution at the moment a reception first failed.
#[derive(Clone, Debug)]
pub struct Blame {
    /// Interfering transmitter.
    pub station: StationId,
    /// Its intended receiver.
    pub intended_rx: Option<StationId>,
    /// Received interference power it contributed.
    pub contribution: PowerW,
    /// True when the interferer is a deliberate jammer, so failure
    /// classification can attribute the loss to jamming rather than to a
    /// protocol collision.
    pub jammer: bool,
}

/// Final report for a completed reception.
#[derive(Clone, Debug)]
pub struct ReceptionReport {
    /// Receiving station.
    pub rx: StationId,
    /// Sending station.
    pub src: StationId,
    /// Whether SINR stayed at or above threshold throughout.
    pub success: bool,
    /// The lowest SINR observed during the reception.
    pub min_sinr: f64,
    /// Interferer snapshot at first failure (empty on success).
    pub blame: Vec<Blame>,
    /// Total interference-plus-noise at the failure instant (zero on
    /// success) — the denominator for judging which interferers were
    /// individually significant.
    pub interference_at_failure: PowerW,
}

#[derive(Clone, Debug)]
struct ActiveReception {
    rx: StationId,
    src_tx: TxId,
    src_station: StationId,
    signal: PowerW,
    interference: PowerW,
    threshold: f64,
    min_sinr: f64,
    failed: bool,
    blame: Vec<Blame>,
    interference_at_failure: PowerW,
}

/// Aggregated far-field interference state (see
/// [`SinrTracker::with_far_field`]).
///
/// In far mode, each reception's running `interference` holds only the
/// *near* part — contributions from transmitters within `near_radius` of
/// the receiver, tracked exactly as in the dense path. Everything beyond
/// is summed per grid cell: one power total per occupied cell, evaluated
/// through the propagation model at the receiver→cell-centre distance.
/// With cell half-diagonal `δ` and near radius `R`, each far transmitter
/// sits within `±δ` of its cell centre, so for an `1/r²`-like monotone
/// model the aggregated far term is within a relative `≈ 2δ/(R−δ)` of the
/// exact sum — with the paper's `R ≈ reach = 2/√ρ` and cell `≈ 1/√ρ`
/// (`δ ≈ 0.71/√ρ`) that is under 1.1 dB on the *far tail only*, far
/// inside the 5 dB β margin (§3.4). A per-receiver snapshot cache avoids
/// recomputing the tail on every event: a snapshot is reused while the
/// total absolute power churn since it was taken, times the worst-case
/// far gain `g(R)`, stays below `tolerance` of the snapshot value.
#[derive(Clone, Debug)]
struct FarField {
    near_radius: f64,
    tolerance: f64,
    /// Worst-case gain of any far transmitter: the model's gain at
    /// exactly `near_radius` (gains decline monotonically with distance).
    g_near: f64,
    /// Per-cell totals of *all* active transmissions (near/far is decided
    /// per receiver at evaluation time).
    cell_power: BTreeMap<usize, CellAgg>,
    /// Sum of |power| of every transmission start/end since construction;
    /// drives snapshot invalidation.
    total_drift: f64,
    /// Active transmission ids per station, for range-bounded near sums.
    tx_of_station: BTreeMap<StationId, Vec<u64>>,
    /// Far-tail snapshots per receiving station.
    cache: RefCell<BTreeMap<StationId, FarSnapshot>>,
}

#[derive(Clone, Debug, Default)]
struct CellAgg {
    power: f64,
    txs: Vec<u64>,
}

#[derive(Clone, Copy, Debug)]
struct FarSnapshot {
    value: f64,
    drift_at: f64,
}

/// The interference bookkeeper.
#[derive(Clone, Debug)]
pub struct SinrTracker {
    gains: Arc<dyn GainModel>,
    thermal: PowerW,
    self_gain: f64,
    active_tx: BTreeMap<u64, ActiveTransmission>,
    receptions: BTreeMap<u64, ActiveReception>,
    next_tx: u64,
    next_rx: u64,
    /// Successive-interference-cancellation depth (0 = plain receivers).
    sic_depth: usize,
    /// Far-field aggregation state (`None` = exact mode).
    far: Option<FarField>,
}

impl SinrTracker {
    /// Create a tracker over a gain model.
    ///
    /// * `thermal` — constant noise floor added at every receiver. The
    ///   paper argues interference dominates it at scale (§3.4), but it
    ///   keeps SINR finite in empty networks.
    /// * `self_gain` — effective power gain of a station's transmitter into
    ///   its own receiver (duplexer leakage); enormous by construction.
    pub fn new(gains: Arc<dyn GainModel>, thermal: PowerW, self_gain: f64) -> SinrTracker {
        SinrTracker {
            gains,
            thermal,
            self_gain,
            active_tx: BTreeMap::new(),
            receptions: BTreeMap::new(),
            next_tx: 0,
            next_rx: 0,
            sic_depth: 0,
            far: None,
        }
    }

    /// Enable successive interference cancellation: receivers may decode
    /// and subtract up to `depth` of the strongest interferers (§3.4
    /// footnote 2). Costs a full interference recomputation per
    /// re-evaluation, so keep `depth` small.
    pub fn with_sic(mut self, depth: usize) -> SinrTracker {
        self.sic_depth = depth;
        self
    }

    /// Enable far-field aggregation: interference from transmitters
    /// beyond `near_radius` of a receiver is summed per grid cell instead
    /// of per station (see the `FarField` internals for the error
    /// bound). Intended
    /// for metro-scale runs where walking every concurrent transmission
    /// per receiver is the bottleneck.
    ///
    /// The approximation assumes a distance-based propagation model with
    /// monotonically declining gain (free-space and its variants);
    /// `tolerance` bounds the extra staleness the snapshot cache may add
    /// on top of the geometric error.
    ///
    /// Panics unless the gain model is grid-backed
    /// ([`GainModel::as_grid`]) — the dense matrix stays exact.
    pub fn with_far_field(mut self, near_radius: f64, tolerance: f64) -> SinrTracker {
        assert!(
            near_radius > 0.0 && near_radius.is_finite(),
            "near_radius must be positive and finite"
        );
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let grid_model = self
            .gains
            .as_grid()
            .expect("far-field aggregation requires the grid gain backend");
        let g_near = grid_model
            .propagation()
            .gain_at_distance(near_radius)
            .value();
        self.far = Some(FarField {
            near_radius,
            tolerance,
            g_near,
            cell_power: BTreeMap::new(),
            total_drift: 0.0,
            tx_of_station: BTreeMap::new(),
            cache: RefCell::new(BTreeMap::new()),
        });
        self
    }

    /// The gain model the tracker uses.
    pub fn gains(&self) -> &dyn GainModel {
        &*self.gains
    }

    fn position(&self, id: StationId) -> Point {
        self.gains.position(id)
    }

    /// Received power at `rx` from a transmission by `tx_station` at `power`.
    fn received_power(&self, rx: StationId, tx_station: StationId, power: PowerW) -> PowerW {
        if tx_station == rx {
            power * self.self_gain
        } else {
            self.gains.gain(rx, tx_station).apply(power)
        }
    }

    /// Total interference-plus-noise currently seen at `rx`, excluding the
    /// transmission `exclude` (if any). This is Eq. 5 evaluated now. In
    /// far-field mode the beyond-`near_radius` tail is the cell-aggregated
    /// approximation.
    pub fn interference_at(&self, rx: StationId, exclude: Option<TxId>) -> PowerW {
        if self.far.is_some() {
            return self.near_interference_at(rx, exclude) + PowerW(self.far_term_at(rx, exclude));
        }
        let mut total = self.thermal;
        for (&id, tx) in &self.active_tx {
            if Some(TxId(id)) == exclude {
                continue;
            }
            total += self.received_power(rx, tx.station, tx.power);
        }
        total
    }

    /// Thermal plus exact contributions from transmitters within
    /// `near_radius` of `rx`, via a range-bounded grid query. Far mode
    /// only.
    fn near_interference_at(&self, rx: StationId, exclude: Option<TxId>) -> PowerW {
        let far = self.far.as_ref().expect("near sum only in far mode");
        let grid = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend")
            .grid();
        let rxp = self.position(rx);
        let mut total = self.thermal;
        grid.for_candidates_within(rxp, far.near_radius, |station| {
            let Some(ids) = far.tx_of_station.get(&station) else {
                return;
            };
            if self.position(station).distance(rxp) > far.near_radius {
                return; // candidate square corner beyond the disk
            }
            for &id in ids {
                if Some(TxId(id)) == exclude {
                    continue;
                }
                let tx = &self.active_tx[&id];
                total += self.received_power(rx, tx.station, tx.power);
            }
        });
        total
    }

    /// The aggregated far tail at `rx`, minus the contribution of
    /// `exclude` when that transmission is itself beyond the near radius.
    /// The subtraction mirrors how the aggregate counted the excluded
    /// transmitter (cell-centre gain for wholly-far cells, exact for
    /// boundary cells), so a dominant excluded source cancels cleanly
    /// instead of dragging the whole tail to the zero clamp.
    fn far_term_at(&self, rx: StationId, exclude: Option<TxId>) -> f64 {
        let far = self.far.as_ref().expect("far term only in far mode");
        let mut v = self.far_value(rx);
        if let Some(TxId(id)) = exclude {
            if let Some(tx) = self.active_tx.get(&id) {
                let rxp = self.position(rx);
                let txp = self.position(tx.station);
                if txp.distance(rxp) > far.near_radius {
                    let grid_model = self
                        .gains
                        .as_grid()
                        .expect("far-field requires grid backend");
                    let grid = grid_model.grid();
                    let d = rxp.distance(grid.cell_center(grid.cell_index(txp)));
                    let gain = if d - grid.half_diagonal() > far.near_radius {
                        grid_model.propagation().gain_at_distance(d).value()
                    } else {
                        self.gains.gain(rx, tx.station).value()
                    };
                    v -= tx.power.value() * gain;
                }
            }
        }
        v.max(0.0)
    }

    /// Cached far tail for `rx`; recomputes when accumulated power churn
    /// could have moved the value by more than the tolerance.
    fn far_value(&self, rx: StationId) -> f64 {
        let far = self.far.as_ref().expect("far value only in far mode");
        {
            let cache = far.cache.borrow();
            if let Some(s) = cache.get(&rx) {
                let churn = (far.total_drift - s.drift_at) * far.g_near;
                if churn <= far.tolerance * (s.value + self.thermal.value()) {
                    parn_sim::counter_inc!("phys.far_cache.hit");
                    return s.value;
                }
            }
        }
        parn_sim::counter_inc!("phys.far_cache.recompute");
        let v = self.recompute_far(rx);
        far.cache.borrow_mut().insert(
            rx,
            FarSnapshot {
                value: v,
                drift_at: far.total_drift,
            },
        );
        v
    }

    /// Walk the occupied cells: wholly-far cells contribute their power
    /// total at the centre distance; boundary cells fall back to per-
    /// transmitter exact terms for their far members.
    fn recompute_far(&self, rx: StationId) -> f64 {
        let far = self.far.as_ref().expect("far recompute only in far mode");
        let grid_model = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend");
        let grid = grid_model.grid();
        let prop = grid_model.propagation();
        let delta = grid.half_diagonal();
        let rxp = self.position(rx);
        let mut sum = 0.0;
        for (&ci, agg) in &far.cell_power {
            let d = rxp.distance(grid.cell_center(ci));
            if d - delta > far.near_radius {
                // Every member is beyond the near radius; aggregate.
                sum += agg.power * prop.gain_at_distance(d).value();
            } else {
                // The cell straddles the near boundary (or contains rx):
                // near members are already in the receptions' exact sums,
                // so count only the far ones, exactly.
                for &id in &agg.txs {
                    let tx = &self.active_tx[&id];
                    let dist = self.position(tx.station).distance(rxp);
                    if dist > far.near_radius {
                        sum += self.received_power(rx, tx.station, tx.power).value();
                    }
                }
            }
        }
        sum
    }

    /// Total received power at `rx` from all active transmissions plus
    /// thermal noise (what a CSMA carrier-sense measurement sees).
    pub fn sensed_power(&self, rx: StationId) -> PowerW {
        self.interference_at(rx, None)
    }

    /// Number of active transmissions.
    pub fn active_transmissions(&self) -> usize {
        self.active_tx.len()
    }

    /// Number of in-flight receptions.
    pub fn active_receptions(&self) -> usize {
        self.receptions.len()
    }

    /// Begin a transmission. All in-flight receptions immediately see the
    /// extra interference.
    pub fn start_transmission(
        &mut self,
        station: StationId,
        power: PowerW,
        intended_rx: Option<StationId>,
    ) -> TxId {
        self.start_tx_inner(station, power, intended_rx, false)
    }

    /// Begin a deliberate interference (jammer) emission anchored at
    /// `station`'s position. It raises interference exactly like a
    /// protocol transmission on every backend (dense and grid alike) but
    /// is flagged so blame reports mark it as a jammer. End the window
    /// with [`SinrTracker::end_transmission`].
    pub fn start_jammer(&mut self, station: StationId, power: PowerW) -> TxId {
        self.start_tx_inner(station, power, None, true)
    }

    fn start_tx_inner(
        &mut self,
        station: StationId,
        power: PowerW,
        intended_rx: Option<StationId>,
        jammer: bool,
    ) -> TxId {
        debug_assert!(power.value() > 0.0, "zero-power transmission");
        let id = self.next_tx;
        self.next_tx += 1;
        // Insert first so that blame snapshots taken during re-evaluation
        // include this transmission (a fresh id can never be a reception's
        // own source).
        self.active_tx.insert(
            id,
            ActiveTransmission {
                station,
                power,
                intended_rx,
                jammer,
            },
        );
        if self.far.is_some() {
            let txp = self.position(station);
            let cell = self
                .gains
                .as_grid()
                .expect("far-field requires grid backend")
                .grid()
                .cell_index(txp);
            let far = self.far.as_mut().expect("far mode");
            let agg = far.cell_power.entry(cell).or_default();
            agg.power += power.value();
            agg.txs.push(id);
            far.total_drift += power.value();
            far.tx_of_station.entry(station).or_default().push(id);
            // Exact delta only for receivers within the near radius; the
            // far tail picks the rest up through the aggregate.
            let radius = far.near_radius;
            let deltas: Vec<(u64, PowerW)> = self
                .receptions
                .iter()
                .filter(|(_, r)| self.position(r.rx).distance(txp) <= radius)
                .map(|(&rid, r)| (rid, self.received_power(r.rx, station, power)))
                .collect();
            for (rid, d) in deltas {
                self.receptions
                    .get_mut(&rid)
                    .expect("reception vanished")
                    .interference += d;
            }
            // Every in-flight reception may have seen its far tail move.
            let rids: Vec<u64> = self.receptions.keys().copied().collect();
            for rid in rids {
                self.reevaluate(rid);
            }
            return TxId(id);
        }
        let deltas: Vec<(u64, PowerW)> = self
            .receptions
            .iter()
            .map(|(&rid, r)| (rid, self.received_power(r.rx, station, power)))
            .collect();
        for (rid, d) in deltas {
            self.receptions
                .get_mut(&rid)
                .expect("reception vanished")
                .interference += d;
            self.reevaluate(rid);
        }
        TxId(id)
    }

    /// End a transmission. Interference drops for everyone else.
    pub fn end_transmission(&mut self, id: TxId) {
        let tx = self
            .active_tx
            .remove(&id.0)
            .expect("ending unknown transmission");
        // Temporarily move the far-field state out so the grid lookups
        // below can borrow `self` freely.
        if let Some(mut far) = self.far.take() {
            let txp = self.position(tx.station);
            let cell = self
                .gains
                .as_grid()
                .expect("far-field requires grid backend")
                .grid()
                .cell_index(txp);
            let agg = far
                .cell_power
                .get_mut(&cell)
                .expect("far cell entry vanished");
            agg.power -= tx.power.value();
            agg.txs.retain(|&t| t != id.0);
            if agg.txs.is_empty() {
                far.cell_power.remove(&cell);
            }
            far.total_drift += tx.power.value();
            if let Some(ids) = far.tx_of_station.get_mut(&tx.station) {
                ids.retain(|&t| t != id.0);
                if ids.is_empty() {
                    far.tx_of_station.remove(&tx.station);
                }
            }
            let radius = far.near_radius;
            self.far = Some(far);
            let deltas: Vec<(u64, PowerW)> = self
                .receptions
                .iter()
                .filter(|(_, r)| r.src_tx != id)
                .filter(|(_, r)| self.position(r.rx).distance(txp) <= radius)
                .map(|(&rid, r)| (rid, self.received_power(r.rx, tx.station, tx.power)))
                .collect();
            for (rid, d) in deltas {
                let r = self.receptions.get_mut(&rid).expect("reception vanished");
                r.interference -= d;
                if r.interference.value() < 0.0 {
                    r.interference = PowerW::ZERO;
                }
            }
            return;
        }
        let deltas: Vec<(u64, PowerW)> = self
            .receptions
            .iter()
            .filter(|(_, r)| r.src_tx != id)
            .map(|(&rid, r)| (rid, self.received_power(r.rx, tx.station, tx.power)))
            .collect();
        for (rid, d) in deltas {
            let r = self.receptions.get_mut(&rid).expect("reception vanished");
            r.interference -= d;
            // Numerical guard: the running sum may drift a hair negative.
            if r.interference.value() < 0.0 {
                r.interference = PowerW::ZERO;
            }
            // Interference only went down: no failure can be triggered, but
            // min_sinr bookkeeping stays consistent on the next update.
        }
    }

    /// Begin tracking the reception at `rx` of the signal carried by
    /// transmission `src`. `threshold` is the SINR the reception must keep.
    ///
    /// Panics if `src` is not an active transmission.
    pub fn begin_reception(&mut self, rx: StationId, src: TxId, threshold: f64) -> RxId {
        let tx = self
            .active_tx
            .get(&src.0)
            .expect("receiving from unknown transmission")
            .clone();
        let signal = self.received_power(rx, tx.station, tx.power);
        // In far mode the reception tracks only the near part exactly;
        // the far tail is re-added at every evaluation.
        let interference = if self.far.is_some() {
            self.near_interference_at(rx, Some(src))
        } else {
            self.interference_at(rx, Some(src))
        };
        let id = self.next_rx;
        self.next_rx += 1;
        self.receptions.insert(
            id,
            ActiveReception {
                rx,
                src_tx: src,
                src_station: tx.station,
                signal,
                interference,
                threshold,
                min_sinr: f64::INFINITY,
                failed: false,
                blame: Vec::new(),
                interference_at_failure: PowerW::ZERO,
            },
        );
        self.reevaluate(id);
        RxId(id)
    }

    /// Finish a reception and report its outcome.
    pub fn complete_reception(&mut self, id: RxId) -> ReceptionReport {
        // Final re-evaluation so min_sinr reflects the closing state.
        self.reevaluate(id.0);
        let r = self
            .receptions
            .remove(&id.0)
            .expect("completing unknown reception");
        ReceptionReport {
            rx: r.rx,
            src: r.src_station,
            success: !r.failed,
            min_sinr: r.min_sinr,
            blame: r.blame,
            interference_at_failure: r.interference_at_failure,
        }
    }

    /// Abort a reception without a report (e.g. the simulation is tearing
    /// down).
    pub fn abort_reception(&mut self, id: RxId) {
        self.receptions.remove(&id.0);
    }

    /// Current SINR of a reception.
    pub fn current_sinr(&self, id: RxId) -> f64 {
        let r = self.receptions.get(&id.0).expect("unknown reception");
        if self.far.is_some() {
            let denom = r.interference.value() + self.far_term_at(r.rx, Some(r.src_tx));
            if denom <= 0.0 {
                f64::INFINITY
            } else {
                r.signal.value() / denom
            }
        } else {
            Self::sinr_of(r)
        }
    }

    fn sinr_of(r: &ActiveReception) -> f64 {
        if r.interference.value() <= 0.0 {
            f64::INFINITY
        } else {
            r.signal.value() / r.interference.value()
        }
    }

    /// SINR of a reception after SIC, recomputed from the full active set.
    fn sinr_with_sic(&self, r: &ActiveReception) -> f64 {
        let contributions: Vec<f64> = self
            .active_tx
            .iter()
            .filter(|(&id, _)| TxId(id) != r.src_tx)
            .map(|(_, tx)| self.received_power(r.rx, tx.station, tx.power).value())
            .collect();
        crate::sic::effective_sinr(
            r.signal.value(),
            self.thermal.value(),
            &contributions,
            self.sic_depth,
            r.threshold,
        )
    }

    /// Update min_sinr and failure state; snapshot blame on first failure.
    fn reevaluate(&mut self, rid: u64) {
        parn_sim::counter_inc!("phys.sinr.reevaluations");
        let sic_sinr = if self.sic_depth > 0 {
            let r = self.receptions.get(&rid).expect("unknown reception");
            Some(self.sinr_with_sic(r))
        } else {
            None
        };
        // In far mode the far tail is part of the denominator; compute it
        // before taking the mutable borrow.
        let far_term = if self.far.is_some() {
            let r = self.receptions.get(&rid).expect("unknown reception");
            Some(self.far_term_at(r.rx, Some(r.src_tx)))
        } else {
            None
        };
        let (newly_failed, rx, src_tx) = {
            let r = self.receptions.get_mut(&rid).expect("unknown reception");
            let sinr = sic_sinr.unwrap_or_else(|| match far_term {
                Some(f) => {
                    let denom = r.interference.value() + f;
                    if denom <= 0.0 {
                        f64::INFINITY
                    } else {
                        r.signal.value() / denom
                    }
                }
                None => Self::sinr_of(r),
            });
            r.min_sinr = r.min_sinr.min(sinr);
            let newly_failed = !r.failed && sinr < r.threshold;
            if newly_failed {
                r.failed = true;
            }
            (newly_failed, r.rx, r.src_tx)
        };
        if newly_failed {
            // In far mode the snapshot only names near interferers — a
            // failure caused purely by the aggregated tail has no single
            // culprit to report, by construction.
            let near_radius = self.far.as_ref().map(|f| f.near_radius);
            let rxp = self.position(rx);
            let blame: Vec<Blame> = self
                .active_tx
                .iter()
                .filter(|(&id, _)| TxId(id) != src_tx)
                .filter(|(_, tx)| match near_radius {
                    Some(rad) => self.position(tx.station).distance(rxp) <= rad,
                    None => true,
                })
                .map(|(_, tx)| Blame {
                    station: tx.station,
                    intended_rx: tx.intended_rx,
                    contribution: self.received_power(rx, tx.station, tx.power),
                    jammer: tx.jammer,
                })
                .filter(|b| b.contribution.value() > 0.0)
                .collect();
            let r = self.receptions.get_mut(&rid).expect("unknown reception");
            r.interference_at_failure = r.interference + PowerW(far_term.unwrap_or(0.0));
            r.blame = blame;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gains::GainMatrix;
    use crate::geom::Point;
    use crate::propagation::FreeSpace;

    /// Three stations on a line: 0 --10m-- 1 --20m-- 2.
    fn tracker() -> SinrTracker {
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        SinrTracker::new(Arc::new(gm), PowerW(1e-9), 1e12)
    }

    #[test]
    fn clean_reception_succeeds() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success);
        assert!(rep.min_sinr > 1e5); // 0.01 W signal over ~1e-9 W noise
        assert!(rep.blame.is_empty());
        assert_eq!((rep.rx, rep.src), (1, 0));
    }

    #[test]
    fn interference_sums_eq5() {
        let mut t = tracker();
        let _a = t.start_transmission(0, PowerW(1.0), None);
        let _b = t.start_transmission(2, PowerW(4.0), None);
        // At station 1: 1.0/100 + 4.0/400 + thermal.
        let n = t.interference_at(1, None);
        assert!((n.value() - (0.01 + 0.01 + 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn exclusion_removes_source() {
        let mut t = tracker();
        let a = t.start_transmission(0, PowerW(1.0), None);
        let n = t.interference_at(1, Some(a));
        assert!((n.value() - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn strong_interferer_kills_reception() {
        let mut t = tracker();
        let tx = t.start_transmission(2, PowerW(1.0), Some(1));
        // Signal at 1: 1/400 = 0.0025.
        let rx = t.begin_reception(1, tx, 0.1);
        // Station 0 fires up next door: interference 1/100 = 0.01,
        // SINR = 0.25 — still above 0.1. Then it raises power.
        let i1 = t.start_transmission(0, PowerW(1.0), None);
        assert!(t.current_sinr(rx) > 0.1);
        let i2 = t.start_transmission(0, PowerW(10.0), None);
        assert!(t.current_sinr(rx) < 0.1);
        t.end_transmission(i1);
        t.end_transmission(i2);
        // Interference gone, but the dip already doomed the packet.
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(!rep.success);
        assert!(rep.min_sinr < 0.1);
        // Blame snapshot holds both interferers from the failure moment.
        assert_eq!(rep.blame.len(), 2);
        assert!(rep.blame.iter().all(|b| b.station == 0));
    }

    #[test]
    fn late_interferer_after_end_is_harmless() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.1);
        let rep = t.complete_reception(rx);
        assert!(rep.success);
        // Interference arriving after completion doesn't matter.
        let i = t.start_transmission(2, PowerW(100.0), None);
        t.end_transmission(i);
        t.end_transmission(tx);
    }

    #[test]
    fn self_transmission_is_fatal_type3() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        // Station 1 transmits while receiving.
        let own = t.start_transmission(1, PowerW(1.0), Some(2));
        assert!(t.current_sinr(rx) < 1e-9);
        t.end_transmission(own);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(!rep.success);
        let self_blame: Vec<_> = rep.blame.iter().filter(|b| b.station == 1).collect();
        assert_eq!(self_blame.len(), 1);
        assert!(self_blame[0].contribution.value() > 1e6);
    }

    #[test]
    fn two_receptions_at_one_station_type2_with_headroom() {
        // Two senders to one receiver: with spread spectrum both can
        // survive if thresholds are low (multiple despreading channels).
        let mut t = tracker();
        let ta = t.start_transmission(0, PowerW(1.0), Some(1)); // 0.01 at 1
        let tb = t.start_transmission(2, PowerW(4.0), Some(1)); // 0.01 at 1
        let ra = t.begin_reception(1, ta, 0.5);
        let rb = t.begin_reception(1, tb, 0.5);
        // Each sees the other as interference: SINR ≈ 1.0 > 0.5.
        assert!((t.current_sinr(ra) - 1.0).abs() < 1e-3);
        assert!((t.current_sinr(rb) - 1.0).abs() < 1e-3);
        let rep_a = t.complete_reception(ra);
        let rep_b = t.complete_reception(rb);
        t.end_transmission(ta);
        t.end_transmission(tb);
        assert!(rep_a.success && rep_b.success);
    }

    #[test]
    fn two_receptions_fail_with_tight_threshold() {
        let mut t = tracker();
        let ta = t.start_transmission(0, PowerW(1.0), Some(1));
        let tb = t.start_transmission(2, PowerW(4.0), Some(1));
        let ra = t.begin_reception(1, ta, 2.0);
        let rb = t.begin_reception(1, tb, 2.0);
        let rep_a = t.complete_reception(ra);
        let rep_b = t.complete_reception(rb);
        t.end_transmission(ta);
        t.end_transmission(tb);
        assert!(!rep_a.success && !rep_b.success);
        // Each blames the other sender, whose intended_rx is station 1 —
        // the Type 2 signature.
        assert_eq!(rep_a.blame.len(), 1);
        assert_eq!(rep_a.blame[0].intended_rx, Some(1));
        assert_eq!(rep_b.blame[0].station, 0);
    }

    #[test]
    fn min_sinr_tracks_worst_moment() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 1e-6);
        let i = t.start_transmission(2, PowerW(400.0), None); // interference 1.0 at station 1
        t.end_transmission(i);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success); // threshold was tiny
                              // Worst moment: signal 0.01 over interference ~1.0.
        assert!((rep.min_sinr - 0.01).abs() < 1e-4, "min {}", rep.min_sinr);
    }

    #[test]
    fn sensed_power_for_carrier_sense() {
        let mut t = tracker();
        assert!((t.sensed_power(1).value() - 1e-9).abs() < 1e-18);
        let tx = t.start_transmission(0, PowerW(1.0), None);
        assert!(t.sensed_power(1).value() > 0.009);
        t.end_transmission(tx);
        assert!((t.sensed_power(1).value() - 1e-9).abs() < 1e-12);
    }

    #[test]
    fn active_counters() {
        let mut t = tracker();
        assert_eq!((t.active_transmissions(), t.active_receptions()), (0, 0));
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        assert_eq!((t.active_transmissions(), t.active_receptions()), (1, 1));
        t.abort_reception(rx);
        t.end_transmission(tx);
        assert_eq!((t.active_transmissions(), t.active_receptions()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "ending unknown transmission")]
    fn double_end_panics() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), None);
        t.end_transmission(tx);
        t.end_transmission(tx);
    }

    mod far_field {
        use super::*;
        use crate::gainmodel::{GainModel, GridGainModel};
        use crate::placement::Placement;
        use parn_sim::Rng;

        fn grid_model(n: usize, radius: f64, seed: u64) -> Arc<GridGainModel> {
            let pts = Placement::UniformDisk { n, radius }.generate(&mut Rng::new(seed));
            Arc::new(GridGainModel::new(&pts, Box::new(FreeSpace::unit())))
        }

        #[test]
        #[should_panic(expected = "requires the grid gain backend")]
        fn dense_backend_rejects_far_field() {
            let gm = GainMatrix::build(&[Point::ORIGIN, Point::new(10.0, 0.0)], &FreeSpace::unit());
            let _ = SinrTracker::new(Arc::new(gm), PowerW(1e-12), 1e12).with_far_field(50.0, 0.0);
        }

        #[test]
        fn far_tail_stays_within_documented_bound() {
            let gm = grid_model(400, 200.0, 11);
            let thermal = PowerW(1e-13);
            let near_radius = 150.0;
            let tolerance = 0.05;
            let delta = gm.grid().half_diagonal();
            // Documented bound: geometric cell-aggregation error plus the
            // snapshot-cache staleness allowance.
            let bound = 2.0 * delta / (near_radius - delta) + tolerance;
            assert!(bound < 1.0, "test geometry too coarse: {bound}");

            let mut far_t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12)
                .with_far_field(near_radius, tolerance);
            let mut rng = Rng::new(21);
            let mut txs = Vec::new();
            for _ in 0..40 {
                let s = rng.below(400) as usize;
                if txs.iter().any(|&(t, _)| t == s) {
                    continue;
                }
                let p = PowerW(rng.range_f64(1e-4, 1e-1));
                far_t.start_transmission(s, p, None);
                txs.push((s, p));
            }
            for rx in (0..400).step_by(37) {
                if txs.iter().any(|&(s, _)| s == rx) {
                    continue; // self-interference would swamp the compare
                }
                let rxp = gm.position(rx);
                let near_exact: f64 = txs
                    .iter()
                    .filter(|&&(s, _)| s != rx && gm.position(s).distance(rxp) <= near_radius)
                    .map(|&(s, p)| gm.gain(rx, s).value() * p.value())
                    .sum();
                let far_exact: f64 = txs
                    .iter()
                    .filter(|&&(s, _)| gm.position(s).distance(rxp) > near_radius)
                    .map(|&(s, p)| gm.gain(rx, s).value() * p.value())
                    .sum();
                let total = far_t.interference_at(rx, None).value();
                let far_approx = total - thermal.value() - near_exact;
                assert!(
                    (far_approx - far_exact).abs() <= bound * far_exact + 1e-18,
                    "rx {rx}: approx {far_approx:e} vs exact {far_exact:e} \
                     (bound {bound})"
                );
            }
        }

        #[test]
        fn far_mode_reception_agrees_with_exact_when_margin_is_wide() {
            // A clean link with scattered weak far interferers: both modes
            // must agree on success and closely on min SINR.
            let gm = grid_model(200, 300.0, 5);
            let thermal = PowerW(1e-13);
            let run = |far: bool| {
                let mut t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12);
                if far {
                    t = t.with_far_field(100.0, 0.05);
                }
                let mut rng = Rng::new(77);
                let mut noise = Vec::new();
                for _ in 0..15 {
                    let s = 2 + rng.below(198) as usize;
                    noise.push(t.start_transmission(s, PowerW(1e-3), None));
                }
                let tx = t.start_transmission(0, PowerW(1.0), Some(1));
                let rx = t.begin_reception(1, tx, 1e-3);
                let rep = t.complete_reception(rx);
                for id in noise {
                    t.end_transmission(id);
                }
                t.end_transmission(tx);
                rep
            };
            let exact = run(false);
            let approx = run(true);
            assert_eq!(exact.success, approx.success);
            let rel = (exact.min_sinr - approx.min_sinr).abs() / exact.min_sinr;
            assert!(rel < 0.5, "min_sinr diverged: {rel}");
        }

        #[test]
        fn far_interference_returns_to_floor_after_teardown() {
            let gm = grid_model(300, 250.0, 9);
            let thermal = PowerW(1e-12);
            let mut t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12)
                .with_far_field(80.0, 0.02);
            let mut ids = Vec::new();
            for s in (0..300).step_by(11) {
                ids.push(t.start_transmission(s, PowerW(1e-2), None));
            }
            assert!(t.interference_at(150, None).value() > thermal.value());
            for id in ids {
                t.end_transmission(id);
            }
            // All aggregates drained: back to thermal exactly.
            let floor = t.interference_at(150, None).value();
            assert!(
                (floor - thermal.value()).abs() <= 1e-15,
                "residual {floor:e}"
            );
        }
    }
}
