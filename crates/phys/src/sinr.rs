//! Incremental SINR tracking for in-flight receptions.
//!
//! The paper's criterion (§3.4) is that the signal-to-noise ratio must stay
//! above the threshold *for the entire duration* of a reception, where the
//! "noise" is thermal noise plus the power sum of every other concurrent
//! transmission (Eq. 5–6). The tracker maintains the set of active
//! transmissions and, for every in-flight reception, the running
//! interference sum; each transmission start/end re-evaluates every active
//! reception, so a reception is marked failed at the first instant its SINR
//! dips below threshold.
//!
//! A receiver that transmits while receiving is modelled with a huge
//! self-interference gain — "no feasible amount of processing gain ... can
//! achieve reception while the local transmitter is operating" (§5, Type 3).

use crate::gainmodel::GainModel;
use crate::gains::StationId;
use crate::geom::Point;
use crate::units::PowerW;
use parn_sim::pool::WorkerPool;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to an active transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(pub u64);

/// Handle to an active reception.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RxId(pub u64);

/// An on-air transmission.
#[derive(Clone, Debug)]
pub struct ActiveTransmission {
    /// Transmitting station.
    pub station: StationId,
    /// Transmit power.
    pub power: PowerW,
    /// The station this transmission is addressed to (`None` for
    /// broadcast/control emissions).
    pub intended_rx: Option<StationId>,
    /// True for deliberate interference (an injected jammer) rather than
    /// a protocol transmission.
    pub jammer: bool,
    /// True for a Byzantine schedule violator's rogue emission — a
    /// protocol station transmitting outside its published windows.
    pub violator: bool,
}

/// One interferer's contribution at the moment a reception first failed.
#[derive(Clone, Debug)]
pub struct Blame {
    /// Interfering transmitter.
    pub station: StationId,
    /// Its intended receiver.
    pub intended_rx: Option<StationId>,
    /// Received interference power it contributed.
    pub contribution: PowerW,
    /// True when the interferer is a deliberate jammer, so failure
    /// classification can attribute the loss to jamming rather than to a
    /// protocol collision.
    pub jammer: bool,
    /// True when the interferer is a Byzantine schedule violator (see
    /// [`ActiveTransmission::violator`]).
    pub violator: bool,
}

/// Final report for a completed reception.
#[derive(Clone, Debug)]
pub struct ReceptionReport {
    /// Receiving station.
    pub rx: StationId,
    /// Sending station.
    pub src: StationId,
    /// Whether SINR stayed at or above threshold throughout.
    pub success: bool,
    /// The lowest SINR observed during the reception.
    pub min_sinr: f64,
    /// Interferer snapshot at first failure (empty on success).
    pub blame: Vec<Blame>,
    /// Total interference-plus-noise at the failure instant (zero on
    /// success) — the denominator for judging which interferers were
    /// individually significant.
    pub interference_at_failure: PowerW,
}

#[derive(Clone, Debug)]
struct ActiveReception {
    rx: StationId,
    src_tx: TxId,
    src_station: StationId,
    signal: PowerW,
    interference: PowerW,
    threshold: f64,
    min_sinr: f64,
    failed: bool,
    blame: Vec<Blame>,
    interference_at_failure: PowerW,
}

/// Aggregated far-field interference state (see
/// [`SinrTracker::with_far_field`]).
///
/// In far mode, each reception's running `interference` holds only the
/// *near* part — contributions from transmitters within `near_radius` of
/// the receiver, tracked exactly as in the dense path. Everything beyond
/// is summed per grid cell: one power total per occupied cell, evaluated
/// through the propagation model at the receiver→cell-centre distance.
/// With cell half-diagonal `δ` and near radius `R`, each far transmitter
/// sits within `±δ` of its cell centre, so for an `1/r²`-like monotone
/// model the aggregated far term is within a relative `≈ 2δ/(R−δ)` of the
/// exact sum — with the paper's `R ≈ reach = 2/√ρ` and cell `≈ 1/√ρ`
/// (`δ ≈ 0.71/√ρ`) that is under 1.1 dB on the *far tail only*, far
/// inside the 5 dB β margin (§3.4).
///
/// **Snapshot invalidation is per cell, not global.** A per-receiver
/// snapshot cache avoids recomputing the tail on every event. Validation
/// used to compare against a single network-wide drift scalar times the
/// worst-case far gain `g(R)` — which let a transmission kilometres away
/// invalidate every receiver's tail and drove the cache hit rate to ~1%
/// at 10⁵ stations. Instead, each transmission start/end now *pushes* its
/// exact per-cell far-tail delta, signed, into the snapshot of every
/// receiver with an in-flight reception: the cell-centre aggregate gain
/// for wholly-far cells, the exact pairwise gain for boundary cells, and
/// zero for receivers that see the transmitter as near (their running sums
/// track it exactly). Because the push uses the *same accounting* as the
/// from-scratch tail sum ([`SinrTracker::far_contribution_of`] is shared
/// by both), the snapshot `value` is maintained incrementally — it *is*
/// the current tail, up to floating-point rounding — so a live receiver's
/// snapshot essentially never needs a recompute. What the tolerance budget
/// gates instead is *re-evaluation*: a monotone `rise` accumulator sums
/// the upward pushes since this receiver's receptions last re-evaluated,
/// and while `rise ≤ tolerance · (value + thermal)` the SINR checks are
/// skipped — the per-cell drift epoch algebra
/// (`rise = Σ_cells Δdrift_cell⁺ · bound(rx, cell)`), evaluated
/// incrementally. Receivers with no in-flight reception are not pushed
/// to; the events they miss are bounded by the global-drift gap
/// (`(total_drift − global_at) · g_near`) — the old conservative rule
/// confined to the cold path where it belongs — and a `churn` turnover
/// total guards the incremental value against accumulated rounding. See
/// DESIGN.md §"Far-field invalidation & sharding" for the stale-bound
/// proof.
#[derive(Clone, Debug)]
struct FarField {
    near_radius: f64,
    tolerance: f64,
    /// Worst-case gain of any far transmitter: the model's gain at
    /// exactly `near_radius` (gains decline monotonically with distance).
    g_near: f64,
    /// Per-cell totals of *all* active transmissions (near/far is decided
    /// per receiver at evaluation time).
    cell_power: BTreeMap<usize, CellAgg>,
    /// Sum of |power| of every transmission start/end since construction;
    /// bounds the events a snapshot was not live for (see `FarSnapshot`).
    total_drift: f64,
    /// Active transmission ids per station, for range-bounded near sums.
    tx_of_station: BTreeMap<StationId, Vec<u64>>,
    /// Positions of each active transmission in `cell_power[cell].txs`
    /// and `tx_of_station[station]`, so TX teardown is O(1) swap-removes
    /// instead of O(active) `retain` scans.
    tx_slot: BTreeMap<u64, TxSlot>,
    /// Far-tail snapshots of *dormant* receivers (no reception in
    /// flight). A receiver's snapshot moves into its [`ActiveRx`] slot
    /// while it has receptions and spills back here when the last one
    /// ends, so the sweep hot path never touches this map.
    cache: BTreeMap<StationId, FarSnapshot>,
    /// Receivers with in-flight receptions, kept sorted by
    /// `(cell, receiver)`. This dense vector is the sweep's work list and
    /// shard partition: walking it in order *is* cell-index order, so the
    /// reduction order is fixed regardless of thread count, and each
    /// touch is pure sequential reads (position, rids and snapshot are
    /// co-located — no map lookups on the hot path).
    active_rx: Vec<ActiveRx>,
}

#[derive(Clone, Debug, Default)]
struct CellAgg {
    power: f64,
    txs: Vec<u64>,
}

/// Where an active transmission sits inside the teardown-relevant vectors.
#[derive(Clone, Copy, Debug)]
struct TxSlot {
    cell: usize,
    cell_pos: usize,
    station_pos: usize,
}

/// One receiver with in-flight receptions (far mode only): an entry in
/// the sweep working set, ordered by `(cell, rx)`.
#[derive(Clone, Debug)]
struct ActiveRx {
    cell: usize,
    rx: StationId,
    /// Receiver position, cached so the sweep's distance tests read it
    /// inline instead of through the gain model.
    pos: Point,
    rids: Vec<u64>,
    /// The receiver's far snapshot while it is live (dormant snapshots
    /// live in `FarField::cache`).
    snap: Option<FarSnapshot>,
}

/// One station mid-move: bookkeeping stashed by [`SinrTracker::begin_moves`]
/// (under the old gain field) for [`SinrTracker::finish_moves`] to restore
/// under the new one. Far mode detaches the mover's active transmissions
/// and pulls its receiver entry out of the sweep working set; exact mode
/// needs no per-station stash (finish recomputes every reception).
#[derive(Clone, Debug)]
struct PendingMove {
    station: StationId,
    /// The mover's active transmission ids, detached from the far
    /// aggregates at the old position and re-attached at the new one.
    txs: Vec<u64>,
    /// In-flight reception ids at this receiver, whose `ActiveRx` entry
    /// was removed at the old cell and re-inserted at the new one.
    rids: Vec<u64>,
}

/// Cached far tail for one receiver.
///
/// `value` is maintained incrementally: every sweep the receiver is live
/// for pushes its exact signed far-tail delta, so `value` tracks a
/// from-scratch recompute up to floating-point rounding. `rise` is the
/// monotone sum of *upward* pushes since this receiver's receptions last
/// re-evaluated — the eval-skip budget. `churn` is the total |delta|
/// turnover since the last full recompute and only guards against
/// accumulated rounding. `global_at` is `total_drift` as of the last push
/// (or recompute), so `(total_drift − global_at) · g_near` bounds
/// everything that happened while the receiver had no reception in flight.
#[derive(Clone, Copy, Debug)]
struct FarSnapshot {
    value: f64,
    rise: f64,
    churn: f64,
    global_at: f64,
}

impl FarSnapshot {
    fn fresh(value: f64, total_drift: f64) -> FarSnapshot {
        FarSnapshot {
            value,
            rise: 0.0,
            churn: 0.0,
            global_at: total_drift,
        }
    }
}

/// Relative epsilon for the teardown clamp: when subtracting a
/// transmission's contribution drives a running interference sum negative
/// by more than this fraction of the subtracted delta, the drift is real
/// (not a last-bit rounding artifact) and the sum is rebuilt exactly from
/// the active set.
const RESUM_REL_EPS: f64 = 1e-12;

/// Turnover guard for incrementally maintained far snapshots: recompute
/// from scratch once accumulated |delta| churn exceeds this multiple of
/// the current value. Each push adds ≤ half-ulp relative rounding error
/// (~1.1e-16 of the operands), so at 10⁹× turnover the worst-case
/// accumulated error is still ~1e-7 of the value — three decades inside
/// the 5% tolerance budget.
const CHURN_REFRESH_FACTOR: f64 = 1e9;

/// Minimum sweep work list (receivers with in-flight receptions) before a
/// sweep is dispatched to the worker pool; below this the per-job channel
/// overhead outweighs the parallelism.
const PAR_MIN_WORK: usize = 96;

/// The interference bookkeeper.
#[derive(Clone, Debug)]
pub struct SinrTracker {
    gains: Arc<dyn GainModel>,
    thermal: PowerW,
    self_gain: f64,
    active_tx: BTreeMap<u64, ActiveTransmission>,
    receptions: BTreeMap<u64, ActiveReception>,
    next_tx: u64,
    next_rx: u64,
    /// Successive-interference-cancellation depth (0 = plain receivers).
    sic_depth: usize,
    /// Far-field aggregation state (`None` = exact mode).
    far: Option<FarField>,
    /// Parallelism for the far-field sweep (1 = inline).
    threads: usize,
    /// Persistent shard workers (`threads − 1` of them); `None` inline.
    pool: Option<Arc<WorkerPool>>,
    /// Movers between [`Self::begin_moves`] and [`Self::finish_moves`].
    pending_moves: Vec<PendingMove>,
}

/// Immutable description of one sweep (a TX start or end) handed to the
/// shards.
struct SweepParams {
    is_start: bool,
    tx_id: u64,
    tx_station: StationId,
    txp: Point,
    /// Centre of the transmitter's grid cell, hoisted out of the
    /// per-receiver loop (it is the same for every receiver in a sweep).
    tx_cell_center: Point,
    power: f64,
    /// `FarField::total_drift` *before* this event's bump, so shards can
    /// bound the events a snapshot was not live for.
    drift_before: f64,
}

/// What one shard decided for one receiver; applied by the merge step.
/// Updates are index-aligned with `FarField::active_rx` (the merge walks
/// both in the same work-list order).
struct RxUpdate {
    snap: SnapUpdate,
    rids: Vec<RidUpdate>,
}

enum SnapUpdate {
    /// No snapshot to touch (receiver had none and no value was needed).
    Keep,
    /// Store this snapshot (pushed-forward or freshly recomputed — shards
    /// construct the complete post-event state either way).
    Set(FarSnapshot),
}

struct RidUpdate {
    rid: u64,
    /// Updated near-interference running sum (`None` = unchanged).
    new_interference: Option<f64>,
    clamped: bool,
    resummed: bool,
    eval: Option<EvalUpdate>,
}

struct EvalUpdate {
    sinr: f64,
    newly_failed: bool,
    blame: Vec<Blame>,
    interference_at_failure: f64,
}

impl SinrTracker {
    /// Create a tracker over a gain model.
    ///
    /// * `thermal` — constant noise floor added at every receiver. The
    ///   paper argues interference dominates it at scale (§3.4), but it
    ///   keeps SINR finite in empty networks.
    /// * `self_gain` — effective power gain of a station's transmitter into
    ///   its own receiver (duplexer leakage); enormous by construction.
    pub fn new(gains: Arc<dyn GainModel>, thermal: PowerW, self_gain: f64) -> SinrTracker {
        SinrTracker {
            gains,
            thermal,
            self_gain,
            active_tx: BTreeMap::new(),
            receptions: BTreeMap::new(),
            next_tx: 0,
            next_rx: 0,
            sic_depth: 0,
            far: None,
            threads: 1,
            pool: None,
            pending_moves: Vec::new(),
        }
    }

    /// Run far-field sweeps on `threads` lanes (the calling thread plus
    /// `threads − 1` persistent workers). Results are **bit-identical** at
    /// any thread count: shards only read shared state, every per-receiver
    /// decision is independent, and the merge applies shard outputs in
    /// cell-index order regardless of how they were partitioned. Only the
    /// far-field sweep parallelizes; `threads = 1` (the default) keeps
    /// everything inline. No effect on the dense backend.
    /// Lanes are capped at the machine's available parallelism: on an
    /// oversubscribed or single-core host extra lanes only add channel
    /// and wakeup overhead per sweep, and by the guarantee above capping
    /// them cannot change any result.
    pub fn with_threads(self, threads: usize) -> SinrTracker {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        self.with_lanes(threads.max(1).min(hw))
    }

    /// As [`Self::with_threads`] but without the hardware cap, so tests
    /// exercise the pooled sweep path even on a single-core machine.
    #[cfg(test)]
    fn with_threads_unclamped(self, threads: usize) -> SinrTracker {
        self.with_lanes(threads.max(1))
    }

    fn with_lanes(mut self, lanes: usize) -> SinrTracker {
        self.threads = lanes;
        self.pool = (lanes > 1).then(|| Arc::new(WorkerPool::new(lanes - 1)));
        self
    }

    /// Enable successive interference cancellation: receivers may decode
    /// and subtract up to `depth` of the strongest interferers (§3.4
    /// footnote 2). Costs a full interference recomputation per
    /// re-evaluation, so keep `depth` small.
    pub fn with_sic(mut self, depth: usize) -> SinrTracker {
        self.sic_depth = depth;
        self
    }

    /// Enable far-field aggregation: interference from transmitters
    /// beyond `near_radius` of a receiver is summed per grid cell instead
    /// of per station (see the `FarField` internals for the error
    /// bound). Intended
    /// for metro-scale runs where walking every concurrent transmission
    /// per receiver is the bottleneck.
    ///
    /// The approximation assumes a distance-based propagation model with
    /// monotonically declining gain (free-space and its variants);
    /// `tolerance` bounds the extra staleness the snapshot cache may add
    /// on top of the geometric error.
    ///
    /// Panics unless the gain model is grid-backed
    /// ([`GainModel::as_grid`]) — the dense matrix stays exact.
    pub fn with_far_field(mut self, near_radius: f64, tolerance: f64) -> SinrTracker {
        assert!(
            near_radius > 0.0 && near_radius.is_finite(),
            "near_radius must be positive and finite"
        );
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let grid_model = self
            .gains
            .as_grid()
            .expect("far-field aggregation requires the grid gain backend");
        // Far aggregates are keyed on cell indices, so station moves must
        // never renumber them: pin the grid's geometry (bbox-escaping
        // movers clamp to border cells, which stays exact).
        grid_model.set_fixed_geometry(true);
        let g_near = grid_model
            .propagation()
            .gain_at_distance(near_radius)
            .value();
        self.far = Some(FarField {
            near_radius,
            tolerance,
            g_near,
            cell_power: BTreeMap::new(),
            total_drift: 0.0,
            tx_of_station: BTreeMap::new(),
            tx_slot: BTreeMap::new(),
            cache: BTreeMap::new(),
            active_rx: Vec::new(),
        });
        self
    }

    /// The gain model the tracker uses.
    pub fn gains(&self) -> &dyn GainModel {
        &*self.gains
    }

    fn position(&self, id: StationId) -> Point {
        self.gains.position(id)
    }

    /// Received power at `rx` from a transmission by `tx_station` at `power`.
    fn received_power(&self, rx: StationId, tx_station: StationId, power: PowerW) -> PowerW {
        if tx_station == rx {
            power * self.self_gain
        } else {
            self.gains.gain(rx, tx_station).apply(power)
        }
    }

    /// Total interference-plus-noise currently seen at `rx`, excluding the
    /// transmission `exclude` (if any). This is Eq. 5 evaluated now. In
    /// far-field mode the beyond-`near_radius` tail is the cell-aggregated
    /// approximation.
    pub fn interference_at(&self, rx: StationId, exclude: Option<TxId>) -> PowerW {
        if self.far.is_some() {
            return self.near_interference_at(rx, exclude) + PowerW(self.far_term_at(rx, exclude));
        }
        let mut total = self.thermal;
        for (&id, tx) in &self.active_tx {
            if Some(TxId(id)) == exclude {
                continue;
            }
            total += self.received_power(rx, tx.station, tx.power);
        }
        total
    }

    /// Thermal plus exact contributions from transmitters within
    /// `near_radius` of `rx`, via a range-bounded grid query. Far mode
    /// only.
    fn near_interference_at(&self, rx: StationId, exclude: Option<TxId>) -> PowerW {
        let far = self.far.as_ref().expect("near sum only in far mode");
        let grid = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend")
            .grid();
        let rxp = self.position(rx);
        let mut total = self.thermal;
        grid.for_candidates_within(rxp, far.near_radius, |station| {
            let Some(ids) = far.tx_of_station.get(&station) else {
                return;
            };
            if self.position(station).distance(rxp) > far.near_radius {
                return; // candidate square corner beyond the disk
            }
            for &id in ids {
                if Some(TxId(id)) == exclude {
                    continue;
                }
                let tx = &self.active_tx[&id];
                total += self.received_power(rx, tx.station, tx.power);
            }
        });
        total
    }

    /// The aggregated far tail at `rx`, minus the contribution of
    /// `exclude` when that transmission is itself beyond the near radius.
    /// The subtraction mirrors how the aggregate counted the excluded
    /// transmitter (cell-centre gain for wholly-far cells, exact for
    /// boundary cells), so a dominant excluded source cancels cleanly
    /// instead of dragging the whole tail to the zero clamp.
    fn far_term_at(&self, rx: StationId, exclude: Option<TxId>) -> f64 {
        let v = self.far_value_ro(rx);
        self.far_term_from(v, rx, exclude)
    }

    /// As [`Self::far_term_at`], but caches a recomputed snapshot.
    fn far_term_at_mut(&mut self, rx: StationId, exclude: Option<TxId>) -> f64 {
        let v = self.far_value_mut(rx);
        self.far_term_from(v, rx, exclude)
    }

    /// Subtract `exclude`'s aggregate-counted contribution from far tail
    /// value `v` (zero subtraction when the excluded source is near).
    fn far_term_from(&self, v: f64, rx: StationId, exclude: Option<TxId>) -> f64 {
        let mut v = v;
        if let Some(TxId(id)) = exclude {
            if let Some(tx) = self.active_tx.get(&id) {
                v -= self.far_contribution_of(self.position(rx), rx, tx.station, tx.power.value());
            }
        }
        v.max(0.0)
    }

    /// How the far aggregate counts a transmission by `tx_station` at
    /// `power` toward `rx`'s tail: zero when near, the cell-centre
    /// aggregate gain for a wholly-far cell, the exact pairwise gain for a
    /// boundary cell. This one function defines both the exclusion
    /// subtraction and the per-event churn push, so both always mirror the
    /// aggregate's own accounting in `recompute_far`.
    fn far_contribution_of(
        &self,
        rxp: Point,
        rx: StationId,
        tx_station: StationId,
        power: f64,
    ) -> f64 {
        let txp = self.position(tx_station);
        let grid = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend")
            .grid();
        let center = grid.cell_center(grid.cell_index(txp));
        self.far_contribution_inner(rxp, rx, tx_station, power, txp.distance(rxp), center)
    }

    /// [`Self::far_contribution_of`] with the receiver→transmitter
    /// distance and the transmitter's cell centre precomputed — the sweep
    /// hoists the centre out of its per-receiver loop and reuses the
    /// distance from its own near test.
    fn far_contribution_inner(
        &self,
        rxp: Point,
        rx: StationId,
        tx_station: StationId,
        power: f64,
        dist_to_tx: f64,
        tx_cell_center: Point,
    ) -> f64 {
        let far = self
            .far
            .as_ref()
            .expect("far contribution only in far mode");
        if dist_to_tx <= far.near_radius {
            return 0.0;
        }
        let grid_model = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend");
        let d = rxp.distance(tx_cell_center);
        let gain = if d - grid_model.grid().half_diagonal() > far.near_radius {
            grid_model.propagation().gain_at_distance(d).value()
        } else {
            self.gains.gain(rx, tx_station).value()
        };
        power * gain
    }

    /// Whether `s.value` still tracks the true far tail within tolerance:
    /// the receiver missed at most a tolerance-budget's worth of events
    /// while dormant (the gap term), the incremental value hasn't seen
    /// enough turnover for rounding to matter (the churn guard), and the
    /// value hasn't been pushed below zero by cancellation.
    fn snapshot_trusted(far: &FarField, s: &FarSnapshot, thermal: f64) -> bool {
        let budget = s.value + thermal;
        s.value >= 0.0
            && (far.total_drift - s.global_at) * far.g_near <= far.tolerance * budget
            && s.churn <= CHURN_REFRESH_FACTOR * budget
    }

    /// Index of `rx` in the active working set, if it has receptions in
    /// flight (binary search on the `(cell, rx)` sort key).
    fn active_rx_idx(&self, far: &FarField, rx: StationId) -> Option<usize> {
        let cell = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend")
            .grid()
            .cell_index(self.position(rx));
        far.active_rx
            .binary_search_by_key(&(cell, rx), |a| (a.cell, a.rx))
            .ok()
    }

    /// `rx`'s current snapshot, wherever it lives (active slot while
    /// receptions are in flight, the dormant cache otherwise).
    fn snapshot_of(&self, far: &FarField, rx: StationId) -> Option<FarSnapshot> {
        match self.active_rx_idx(far, rx) {
            Some(i) => far.active_rx[i].snap,
            None => far.cache.get(&rx).copied(),
        }
    }

    /// Cached far tail for `rx` without touching the cache (used by the
    /// `&self` query paths: carrier sense, `interference_at`,
    /// `current_sinr`); recomputes — without storing — when the snapshot
    /// can no longer be trusted.
    fn far_value_ro(&self, rx: StationId) -> f64 {
        let far = self.far.as_ref().expect("far value only in far mode");
        if let Some(s) = self.snapshot_of(far, rx) {
            if Self::snapshot_trusted(far, &s, self.thermal.value()) {
                parn_sim::counter_inc!("phys.far_cache.hit");
                return s.value;
            }
        }
        parn_sim::counter_inc!("phys.far_cache.recompute");
        self.recompute_far(rx)
    }

    /// Cached far tail for `rx`, storing a fresh snapshot on recompute.
    /// A pending `rise` (evals owed to this receiver's receptions) is
    /// preserved: this path re-evaluates at most one reception, so it must
    /// not swallow the eval budget the sweep owes the others.
    fn far_value_mut(&mut self, rx: StationId) -> f64 {
        let far = self.far.as_ref().expect("far value only in far mode");
        let active_idx = self.active_rx_idx(far, rx);
        let old = match active_idx {
            Some(i) => far.active_rx[i].snap,
            None => far.cache.get(&rx).copied(),
        };
        if let Some(s) = &old {
            if Self::snapshot_trusted(far, s, self.thermal.value()) {
                parn_sim::counter_inc!("phys.far_cache.hit");
                return s.value;
            }
        }
        parn_sim::counter_inc!("phys.far_cache.recompute");
        let v = self.recompute_far(rx);
        let far = self.far.as_mut().expect("far mode");
        let snap = FarSnapshot {
            value: v,
            rise: old.map_or(0.0, |s| s.rise),
            churn: 0.0,
            global_at: far.total_drift,
        };
        match active_idx {
            Some(i) => far.active_rx[i].snap = Some(snap),
            None => {
                far.cache.insert(rx, snap);
            }
        }
        v
    }

    /// Walk the occupied cells: wholly-far cells contribute their power
    /// total at the centre distance; boundary cells fall back to per-
    /// transmitter exact terms for their far members.
    fn recompute_far(&self, rx: StationId) -> f64 {
        let far = self.far.as_ref().expect("far recompute only in far mode");
        let grid_model = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend");
        let grid = grid_model.grid();
        let prop = grid_model.propagation();
        let delta = grid.half_diagonal();
        let rxp = self.position(rx);
        let mut sum = 0.0;
        for (&ci, agg) in &far.cell_power {
            let d = rxp.distance(grid.cell_center(ci));
            if d - delta > far.near_radius {
                // Every member is beyond the near radius; aggregate.
                sum += agg.power * prop.gain_at_distance(d).value();
            } else {
                // The cell straddles the near boundary (or contains rx):
                // near members are already in the receptions' exact sums,
                // so count only the far ones, exactly.
                for &id in &agg.txs {
                    let tx = &self.active_tx[&id];
                    let dist = self.position(tx.station).distance(rxp);
                    if dist > far.near_radius {
                        sum += self.received_power(rx, tx.station, tx.power).value();
                    }
                }
            }
        }
        sum
    }

    /// The gain field changed out from under the tracker — e.g. a
    /// partition cut activated or healed on a
    /// [`crate::partition::PartitionOverlay`] wrapping `gains`. Every
    /// cached quantity derived from path gains is rebuilt: far-tail
    /// snapshots are dropped (dormant cache and live slots alike), and
    /// each in-flight reception's signal and exact near-interference sum
    /// are recomputed from the active transmission set under the new
    /// field, then re-evaluated — a reception mid-flight across a cut
    /// that just activated fails immediately, as the physics demands.
    ///
    /// (The dense backend's incremental interference bookkeeping and the
    /// far tail's per-cell power aggregates are power-only and stay
    /// valid; only gain-derived values need recomputing.)
    pub fn gains_changed(&mut self) {
        parn_sim::counter_inc!("phys.sinr.full_invalidations");
        if let Some(far) = self.far.as_mut() {
            far.cache.clear();
            for a in far.active_rx.iter_mut() {
                a.snap = None;
            }
        }
        let rids: Vec<u64> = self.receptions.keys().copied().collect();
        for rid in rids {
            let (rx, src_tx, src_station) = {
                let r = &self.receptions[&rid];
                (r.rx, r.src_tx, r.src_station)
            };
            let src_power = self.active_tx[&src_tx.0].power;
            let signal = self.received_power(rx, src_station, src_power);
            let interference = if self.far.is_some() {
                self.near_interference_at(rx, Some(src_tx))
            } else {
                self.interference_at(rx, Some(src_tx))
            };
            {
                let r = self.receptions.get_mut(&rid).expect("unknown reception");
                r.signal = signal;
                r.interference = interference;
            }
            self.reevaluate(rid);
        }
    }

    /// First half of a station-move transaction. Call with the movers
    /// (ascending station id) **before** relocating them in the gain
    /// model, so all teardown runs under the old gain field — exactly
    /// matching what was added when their transmissions started. Complete
    /// the move with [`Self::finish_moves`] after relocating; no other
    /// tracker call may land in between.
    ///
    /// In far mode this detaches each mover's active transmissions from
    /// the cell aggregates (end-style sweeps at the old position), pulls
    /// the mover's entry out of the sweep working set at its old cell, and
    /// drops its far snapshots — invalidation scoped to the movers, not a
    /// `gains_changed`-style global drop. Exact mode keeps no
    /// position-derived caches, so it only records the movers.
    pub fn begin_moves(&mut self, movers: &[StationId]) {
        debug_assert!(self.pending_moves.is_empty(), "nested begin_moves");
        debug_assert!(movers.windows(2).all(|w| w[0] < w[1]), "movers unsorted");
        parn_sim::counter_inc!("phys.sinr.scoped_invalidations", movers.len() as u64);
        if self.far.is_none() {
            self.pending_moves = movers
                .iter()
                .map(|&station| PendingMove {
                    station,
                    txs: Vec::new(),
                    rids: Vec::new(),
                })
                .collect();
            return;
        }
        // Detach every mover's active transmissions under the old field.
        let mut pending: Vec<PendingMove> = Vec::with_capacity(movers.len());
        for &station in movers {
            let txs = self
                .far
                .as_ref()
                .expect("far mode")
                .tx_of_station
                .get(&station)
                .cloned()
                .unwrap_or_default();
            for &id in &txs {
                let power = self.active_tx[&id].power;
                self.far_detach_tx(id, station, power);
            }
            pending.push(PendingMove {
                station,
                txs,
                rids: Vec::new(),
            });
        }
        // Pull movers out of the sweep working set (keyed by old cell) and
        // drop their snapshots — both are position-derived.
        for pm in pending.iter_mut() {
            let far = self.far.as_ref().expect("far mode");
            if let Some(i) = self.active_rx_idx(far, pm.station) {
                let entry = self.far.as_mut().expect("far mode").active_rx.remove(i);
                pm.rids = entry.rids;
            }
            self.far
                .as_mut()
                .expect("far mode")
                .cache
                .remove(&pm.station);
        }
        self.pending_moves = pending;
    }

    /// Second half of a station-move transaction: call **after** the gain
    /// model has relocated every mover passed to [`Self::begin_moves`].
    ///
    /// Far mode re-attaches the movers' transmissions at their new
    /// positions (start-style sweeps under the new field) and re-admits
    /// moved receivers to the working set at their new cells with their
    /// snapshots dropped; then every reception at a mover or sourced from
    /// one gets its signal and near interference recomputed and is
    /// re-evaluated. Exact mode recomputes every active reception from the
    /// active set — the same backend-agnostic queries on dense and grid,
    /// so small-n runs stay bit-identical across backends.
    pub fn finish_moves(&mut self) {
        let pending = std::mem::take(&mut self.pending_moves);
        if pending.is_empty() {
            return;
        }
        let rids: Vec<u64> = if self.far.is_some() {
            for pm in &pending {
                for &id in &pm.txs {
                    let power = self.active_tx[&id].power;
                    self.far_attach_tx(id, pm.station, power);
                }
            }
            for pm in &pending {
                if pm.rids.is_empty() {
                    continue;
                }
                let pos = self.position(pm.station);
                let cell = self
                    .gains
                    .as_grid()
                    .expect("far-field requires grid backend")
                    .grid()
                    .cell_index(pos);
                let far = self.far.as_mut().expect("far mode");
                let i = far
                    .active_rx
                    .binary_search_by_key(&(cell, pm.station), |a| (a.cell, a.rx))
                    .expect_err("mover already re-admitted");
                far.active_rx.insert(
                    i,
                    ActiveRx {
                        cell,
                        rx: pm.station,
                        pos,
                        rids: pm.rids.clone(),
                        snap: None,
                    },
                );
            }
            // Unmoved receivers' running sums were updated exactly by the
            // detach/attach sweeps; only receptions *at* a mover or
            // *sourced from* one still hold stale gain-derived state.
            let moved: std::collections::BTreeSet<StationId> =
                pending.iter().map(|pm| pm.station).collect();
            self.receptions
                .iter()
                .filter(|(_, r)| moved.contains(&r.rx) || moved.contains(&r.src_station))
                .map(|(&rid, _)| rid)
                .collect()
        } else {
            // Exact mode tracks every transmitter's contribution in each
            // reception's running sum, and any of those terms may have
            // changed: rebuild them all from the active set.
            self.receptions.keys().copied().collect()
        };
        for rid in rids {
            let (rx, src_tx, src_station) = {
                let r = &self.receptions[&rid];
                (r.rx, r.src_tx, r.src_station)
            };
            let src_power = self.active_tx[&src_tx.0].power;
            let signal = self.received_power(rx, src_station, src_power);
            let interference = if self.far.is_some() {
                self.near_interference_at(rx, Some(src_tx))
            } else {
                self.interference_at(rx, Some(src_tx))
            };
            {
                let r = self.receptions.get_mut(&rid).expect("unknown reception");
                r.signal = signal;
                r.interference = interference;
            }
            self.reevaluate(rid);
        }
    }

    /// Total received power at `rx` from all active transmissions plus
    /// thermal noise (what a CSMA carrier-sense measurement sees).
    pub fn sensed_power(&self, rx: StationId) -> PowerW {
        self.interference_at(rx, None)
    }

    /// Number of active transmissions.
    pub fn active_transmissions(&self) -> usize {
        self.active_tx.len()
    }

    /// Number of in-flight receptions.
    pub fn active_receptions(&self) -> usize {
        self.receptions.len()
    }

    /// Begin a transmission. All in-flight receptions immediately see the
    /// extra interference.
    pub fn start_transmission(
        &mut self,
        station: StationId,
        power: PowerW,
        intended_rx: Option<StationId>,
    ) -> TxId {
        self.start_tx_inner(station, power, intended_rx, false, false)
    }

    /// Begin a deliberate interference (jammer) emission anchored at
    /// `station`'s position. It raises interference exactly like a
    /// protocol transmission on every backend (dense and grid alike) but
    /// is flagged so blame reports mark it as a jammer. End the window
    /// with [`SinrTracker::end_transmission`].
    pub fn start_jammer(&mut self, station: StationId, power: PowerW) -> TxId {
        self.start_tx_inner(station, power, None, true, false)
    }

    /// Begin a Byzantine schedule violator's rogue emission from
    /// `station`: interference-wise identical to a protocol transmission,
    /// but flagged so blame reports mark it as a violation (losses it
    /// causes classify as `Violation`, not as protocol collisions). End
    /// the burst with [`SinrTracker::end_transmission`].
    pub fn start_violator(&mut self, station: StationId, power: PowerW) -> TxId {
        self.start_tx_inner(station, power, None, false, true)
    }

    fn start_tx_inner(
        &mut self,
        station: StationId,
        power: PowerW,
        intended_rx: Option<StationId>,
        jammer: bool,
        violator: bool,
    ) -> TxId {
        debug_assert!(power.value() > 0.0, "zero-power transmission");
        let id = self.next_tx;
        self.next_tx += 1;
        // Insert first so that blame snapshots taken during re-evaluation
        // include this transmission (a fresh id can never be a reception's
        // own source).
        self.active_tx.insert(
            id,
            ActiveTransmission {
                station,
                power,
                intended_rx,
                jammer,
                violator,
            },
        );
        if self.far.is_some() {
            self.far_attach_tx(id, station, power);
            return TxId(id);
        }
        let deltas: Vec<(u64, PowerW)> = self
            .receptions
            .iter()
            .map(|(&rid, r)| (rid, self.received_power(r.rx, station, power)))
            .collect();
        for (rid, d) in deltas {
            self.receptions
                .get_mut(&rid)
                .expect("reception vanished")
                .interference += d;
            self.reevaluate(rid);
        }
        TxId(id)
    }

    /// Remove transmission `id` from the far aggregates and run the
    /// end-style sweep, using the transmitter's *current* position. Shared
    /// by [`Self::end_transmission`] (which removes the tx from
    /// `active_tx` first) and [`Self::begin_moves`] (which keeps it active
    /// for re-attachment at the new position).
    fn far_detach_tx(&mut self, id: u64, station: StationId, power: PowerW) {
        let txp = self.position(station);
        let tx_cell_center = {
            let grid = self
                .gains
                .as_grid()
                .expect("far-field requires grid backend")
                .grid();
            grid.cell_center(grid.cell_index(txp))
        };
        let far = self.far.as_mut().expect("far mode");
        let drift_before = far.total_drift;
        // O(1) teardown: swap-remove at the recorded positions and fix
        // up the slot of whichever transmission got moved into the gap
        // (no O(active) retain scans in dense cells).
        let slot = far.tx_slot.remove(&id).expect("tx slot vanished");
        let agg = far
            .cell_power
            .get_mut(&slot.cell)
            .expect("far cell entry vanished");
        debug_assert_eq!(agg.txs[slot.cell_pos], id);
        agg.power -= power.value();
        let moved = *agg.txs.last().expect("cell tx list empty");
        agg.txs.swap_remove(slot.cell_pos);
        if moved != id {
            far.tx_slot
                .get_mut(&moved)
                .expect("moved tx slot vanished")
                .cell_pos = slot.cell_pos;
        }
        if agg.txs.is_empty() {
            far.cell_power.remove(&slot.cell);
        }
        far.total_drift += power.value();
        let per_station = far
            .tx_of_station
            .get_mut(&station)
            .expect("tx station entry vanished");
        debug_assert_eq!(per_station[slot.station_pos], id);
        let moved = *per_station.last().expect("station tx list empty");
        per_station.swap_remove(slot.station_pos);
        if moved != id {
            far.tx_slot
                .get_mut(&moved)
                .expect("moved tx slot vanished")
                .station_pos = slot.station_pos;
        }
        if per_station.is_empty() {
            far.tx_of_station.remove(&station);
        }
        self.far_sweep(SweepParams {
            is_start: false,
            tx_id: id,
            tx_station: station,
            txp,
            tx_cell_center,
            power: power.value(),
            drift_before,
        });
    }

    /// Insert transmission `id` into the far aggregates at the
    /// transmitter's *current* position and run the start-style sweep —
    /// the aggregate half of [`Self::start_tx_inner`]'s far branch, reused
    /// by [`Self::finish_moves`] to re-attach a mover's transmissions.
    fn far_attach_tx(&mut self, id: u64, station: StationId, power: PowerW) {
        let txp = self.position(station);
        let (cell, tx_cell_center) = {
            let grid = self
                .gains
                .as_grid()
                .expect("far-field requires grid backend")
                .grid();
            let cell = grid.cell_index(txp);
            (cell, grid.cell_center(cell))
        };
        let far = self.far.as_mut().expect("far mode");
        let drift_before = far.total_drift;
        let agg = far.cell_power.entry(cell).or_default();
        let cell_pos = agg.txs.len();
        agg.power += power.value();
        agg.txs.push(id);
        far.total_drift += power.value();
        let per_station = far.tx_of_station.entry(station).or_default();
        let station_pos = per_station.len();
        per_station.push(id);
        far.tx_slot.insert(
            id,
            TxSlot {
                cell,
                cell_pos,
                station_pos,
            },
        );
        self.far_sweep(SweepParams {
            is_start: true,
            tx_id: id,
            tx_station: station,
            txp,
            tx_cell_center,
            power: power.value(),
            drift_before,
        });
    }

    /// End a transmission. Interference drops for everyone else.
    pub fn end_transmission(&mut self, id: TxId) {
        let tx = self
            .active_tx
            .remove(&id.0)
            .expect("ending unknown transmission");
        if self.far.is_some() {
            self.far_detach_tx(id.0, tx.station, tx.power);
            return;
        }
        let deltas: Vec<(u64, PowerW)> = self
            .receptions
            .iter()
            .filter(|(_, r)| r.src_tx != id)
            .map(|(&rid, r)| (rid, self.received_power(r.rx, tx.station, tx.power)))
            .collect();
        let mut resummations: Vec<(u64, StationId, TxId)> = Vec::new();
        for (rid, d) in deltas {
            let r = self.receptions.get_mut(&rid).expect("reception vanished");
            r.interference -= d;
            // Numerical guard: the running sum may drift a hair negative.
            if r.interference.value() < 0.0 {
                parn_sim::counter_inc!("phys.interference.clamped");
                if -r.interference.value() > RESUM_REL_EPS * d.value() {
                    // The drift is orders above last-bit rounding — rebuild
                    // the sum exactly instead of silently absorbing it.
                    resummations.push((rid, r.rx, r.src_tx));
                } else {
                    r.interference = PowerW::ZERO;
                }
            }
            // Interference only went down: no failure can be triggered, but
            // min_sinr bookkeeping stays consistent on the next update.
        }
        for (rid, rx, src) in resummations {
            parn_sim::counter_inc!("phys.interference.resummed");
            let exact = self.interference_at(rx, Some(src));
            self.receptions
                .get_mut(&rid)
                .expect("reception vanished")
                .interference = exact;
        }
    }

    /// Begin tracking the reception at `rx` of the signal carried by
    /// transmission `src`. `threshold` is the SINR the reception must keep.
    ///
    /// Panics if `src` is not an active transmission.
    pub fn begin_reception(&mut self, rx: StationId, src: TxId, threshold: f64) -> RxId {
        let tx = self
            .active_tx
            .get(&src.0)
            .expect("receiving from unknown transmission")
            .clone();
        let signal = self.received_power(rx, tx.station, tx.power);
        // In far mode the reception tracks only the near part exactly;
        // the far tail is re-added at every evaluation.
        let interference = if self.far.is_some() {
            self.near_interference_at(rx, Some(src))
        } else {
            self.interference_at(rx, Some(src))
        };
        let id = self.next_rx;
        self.next_rx += 1;
        self.receptions.insert(
            id,
            ActiveReception {
                rx,
                src_tx: src,
                src_station: tx.station,
                signal,
                interference,
                threshold,
                min_sinr: f64::INFINITY,
                failed: false,
                blame: Vec::new(),
                interference_at_failure: PowerW::ZERO,
            },
        );
        let cell = self.far.is_some().then(|| {
            self.gains
                .as_grid()
                .expect("far-field requires grid backend")
                .grid()
                .cell_index(self.position(rx))
        });
        if let (Some(cell), Some(far)) = (cell, self.far.as_mut()) {
            match far
                .active_rx
                .binary_search_by_key(&(cell, rx), |a| (a.cell, a.rx))
            {
                Ok(i) => far.active_rx[i].rids.push(id),
                Err(i) => {
                    // First in-flight reception at this receiver: join the
                    // sweep working set, adopting any dormant snapshot.
                    let pos = self.gains.position(rx);
                    far.active_rx.insert(
                        i,
                        ActiveRx {
                            cell,
                            rx,
                            pos,
                            rids: vec![id],
                            snap: far.cache.remove(&rx),
                        },
                    );
                }
            }
        }
        self.reevaluate(id);
        RxId(id)
    }

    /// Drop `rid` from the far-mode working set (no-op in dense mode).
    /// The receiver's snapshot spills back to the dormant cache when its
    /// last reception ends, so a later reception can adopt it if the
    /// dormancy-gap guard still trusts it.
    fn unregister_reception(&mut self, rid: u64, rx: StationId) {
        if self.far.is_none() {
            return;
        }
        let cell = self
            .gains
            .as_grid()
            .expect("far-field requires grid backend")
            .grid()
            .cell_index(self.position(rx));
        let far = self.far.as_mut().expect("far mode");
        let Ok(i) = far
            .active_rx
            .binary_search_by_key(&(cell, rx), |a| (a.cell, a.rx))
        else {
            return;
        };
        let entry = &mut far.active_rx[i];
        if let Some(pos) = entry.rids.iter().position(|&r| r == rid) {
            entry.rids.swap_remove(pos);
        }
        if entry.rids.is_empty() {
            if let Some(snap) = entry.snap {
                far.cache.insert(rx, snap);
            }
            far.active_rx.remove(i);
        }
    }

    /// Finish a reception and report its outcome.
    pub fn complete_reception(&mut self, id: RxId) -> ReceptionReport {
        // Final re-evaluation so min_sinr reflects the closing state.
        self.reevaluate(id.0);
        let r = self
            .receptions
            .remove(&id.0)
            .expect("completing unknown reception");
        self.unregister_reception(id.0, r.rx);
        ReceptionReport {
            rx: r.rx,
            src: r.src_station,
            success: !r.failed,
            min_sinr: r.min_sinr,
            blame: r.blame,
            interference_at_failure: r.interference_at_failure,
        }
    }

    /// Abort a reception without a report (e.g. the simulation is tearing
    /// down).
    pub fn abort_reception(&mut self, id: RxId) {
        if let Some(r) = self.receptions.remove(&id.0) {
            self.unregister_reception(id.0, r.rx);
        }
    }

    /// Current SINR of a reception.
    pub fn current_sinr(&self, id: RxId) -> f64 {
        let r = self.receptions.get(&id.0).expect("unknown reception");
        if self.far.is_some() {
            let denom = r.interference.value() + self.far_term_at(r.rx, Some(r.src_tx));
            if denom <= 0.0 {
                f64::INFINITY
            } else {
                r.signal.value() / denom
            }
        } else {
            Self::sinr_of(r)
        }
    }

    fn sinr_of(r: &ActiveReception) -> f64 {
        if r.interference.value() <= 0.0 {
            f64::INFINITY
        } else {
            r.signal.value() / r.interference.value()
        }
    }

    /// SINR of a reception after SIC, recomputed from the full active set.
    fn sinr_with_sic(&self, r: &ActiveReception) -> f64 {
        let contributions: Vec<f64> = self
            .active_tx
            .iter()
            .filter(|(&id, _)| TxId(id) != r.src_tx)
            .map(|(_, tx)| self.received_power(r.rx, tx.station, tx.power).value())
            .collect();
        crate::sic::effective_sinr(
            r.signal.value(),
            self.thermal.value(),
            &contributions,
            self.sic_depth,
            r.threshold,
        )
    }

    /// Update min_sinr and failure state; snapshot blame on first failure.
    fn reevaluate(&mut self, rid: u64) {
        parn_sim::counter_inc!("phys.sinr.reevaluations");
        let sic_sinr = if self.sic_depth > 0 {
            let r = self.receptions.get(&rid).expect("unknown reception");
            Some(self.sinr_with_sic(r))
        } else {
            None
        };
        // In far mode the far tail is part of the denominator; compute it
        // (caching a fresh snapshot if stale) before the mutable borrow.
        let far_term = if self.far.is_some() {
            let (rx, src) = {
                let r = self.receptions.get(&rid).expect("unknown reception");
                (r.rx, r.src_tx)
            };
            Some(self.far_term_at_mut(rx, Some(src)))
        } else {
            None
        };
        let (newly_failed, rx, src_tx) = {
            let r = self.receptions.get_mut(&rid).expect("unknown reception");
            let sinr = sic_sinr.unwrap_or_else(|| match far_term {
                Some(f) => {
                    let denom = r.interference.value() + f;
                    if denom <= 0.0 {
                        f64::INFINITY
                    } else {
                        r.signal.value() / denom
                    }
                }
                None => Self::sinr_of(r),
            });
            r.min_sinr = r.min_sinr.min(sinr);
            let newly_failed = !r.failed && sinr < r.threshold;
            if newly_failed {
                r.failed = true;
            }
            (newly_failed, r.rx, r.src_tx)
        };
        if newly_failed {
            // In far mode the snapshot only names near interferers — a
            // failure caused purely by the aggregated tail has no single
            // culprit to report, by construction.
            let near_radius = self.far.as_ref().map(|f| f.near_radius);
            let rxp = self.position(rx);
            let blame: Vec<Blame> = self
                .active_tx
                .iter()
                .filter(|(&id, _)| TxId(id) != src_tx)
                .filter(|(_, tx)| match near_radius {
                    Some(rad) => self.position(tx.station).distance(rxp) <= rad,
                    None => true,
                })
                .map(|(_, tx)| Blame {
                    station: tx.station,
                    intended_rx: tx.intended_rx,
                    contribution: self.received_power(rx, tx.station, tx.power),
                    jammer: tx.jammer,
                    violator: tx.violator,
                })
                .filter(|b| b.contribution.value() > 0.0)
                .collect();
            let r = self.receptions.get_mut(&rid).expect("unknown reception");
            r.interference_at_failure = r.interference + PowerW(far_term.unwrap_or(0.0));
            r.blame = blame;
        }
    }

    /// One TX start/end in far mode. Aggregate bookkeeping has already
    /// been applied by the caller; this walks every receiver with an
    /// in-flight reception — in (cell-index, receiver-id) order — pushing
    /// the event's exact per-cell churn into far snapshots, applying exact
    /// near deltas, and re-evaluating only the receptions whose
    /// denominator actually moved beyond tolerance.
    ///
    /// The walk is partitioned into contiguous shards of that same
    /// cell-ordered work list. Shards read shared state only, every
    /// per-receiver decision is independent of every other receiver, and
    /// the merge applies outputs in work-list order — so results are
    /// bit-identical whether shards run inline or on the worker pool, at
    /// any thread count.
    fn far_sweep(&mut self, p: SweepParams) {
        let far = self.far.as_ref().expect("far sweep only in far mode");
        if far.active_rx.is_empty() {
            return;
        }
        parn_sim::counter_inc!("core.shard.sweeps");
        parn_sim::time_scope!("phys.far_sweep");
        let work = far.active_rx.as_slice();
        let updates: Vec<RxUpdate> = match &self.pool {
            Some(pool) if work.len() >= PAR_MIN_WORK => {
                parn_sim::counter_inc!("core.shard.parallel");
                let pool = Arc::clone(pool);
                let shards = self.threads.min(work.len());
                let chunk = work.len().div_ceil(shards);
                let this = &*self;
                let params = &p;
                let jobs: Vec<_> = work
                    .chunks(chunk)
                    .map(|shard| move || this.sweep_shard(shard, params))
                    .collect();
                pool.run(jobs).into_iter().flatten().collect()
            }
            _ => self.sweep_shard(work, &p),
        };
        self.apply_sweep(updates);
    }

    fn sweep_shard(&self, shard: &[ActiveRx], p: &SweepParams) -> Vec<RxUpdate> {
        shard.iter().map(|a| self.sweep_receiver(a, p)).collect()
    }

    /// Decide one receiver's fate for one sweep: its snapshot update, its
    /// receptions' near-delta updates, and any re-evaluations. Pure reads;
    /// the returned update is applied by [`Self::apply_sweep`].
    fn sweep_receiver(&self, a: &ActiveRx, p: &SweepParams) -> RxUpdate {
        let far = self.far.as_ref().expect("far mode");
        let thermal = self.thermal.value();
        let rx = a.rx;
        let rxp = a.pos;
        let dist_to_tx = rxp.distance(p.txp);
        let near = dist_to_tx <= far.near_radius;
        // The exact |delta| this event applied to rx's far tail — zero for
        // near receivers, whose running sums track this transmitter
        // exactly.
        let tail_delta = if near {
            0.0
        } else {
            self.far_contribution_inner(
                rxp,
                rx,
                p.tx_station,
                p.power,
                dist_to_tx,
                p.tx_cell_center,
            )
        };
        // `total_drift` after this event's bump — both start and end bump
        // by |power|, so shards can stamp `global_at` without mutable
        // access.
        let drift_after = p.drift_before + p.power;
        let snap = a.snap.as_ref();
        // Can the incrementally maintained value absorb this push, or is a
        // recompute due? (Dormancy gap, rounding turnover, or the value
        // being cancelled below zero by this very subtraction.)
        let trusted = match snap {
            Some(s) => {
                let budget = s.value + thermal;
                (p.drift_before - s.global_at) * far.g_near <= far.tolerance * budget
                    && s.churn <= CHURN_REFRESH_FACTOR * budget
                    && (p.is_start || s.value - tail_delta >= 0.0)
            }
            None => false,
        };
        let rid_list = &a.rids;
        let mut rids: Vec<RidUpdate> = Vec::new();
        if p.is_start {
            // Push the signed delta forward, or recompute when the value
            // can't be trusted; decide whether the receptions re-evaluate.
            let (snap_new, skip_evals) = if trusted {
                parn_sim::counter_inc!("phys.far_cache.hit");
                let s = snap.expect("trusted implies snapshot");
                let value = s.value + tail_delta;
                let rise = s.rise + tail_delta;
                // Near receivers always re-evaluate (their running sums
                // just gained this transmission's exact contribution);
                // far receivers skip while the accumulated rise stays
                // inside the tolerance budget.
                let skip = !near && rise <= far.tolerance * (value + thermal);
                (
                    FarSnapshot {
                        value,
                        rise: if skip { rise } else { 0.0 },
                        churn: s.churn + tail_delta,
                        global_at: drift_after,
                    },
                    skip,
                )
            } else {
                parn_sim::counter_inc!("phys.far_cache.recompute");
                (
                    FarSnapshot::fresh(self.recompute_far(rx), drift_after),
                    false,
                )
            };
            if skip_evals {
                parn_sim::counter_inc!("phys.sinr.skipped_reevals", rid_list.len() as u64);
            } else {
                let near_delta = if near {
                    self.received_power(rx, p.tx_station, PowerW(p.power))
                        .value()
                } else {
                    0.0
                };
                for &rid in rid_list {
                    let r = &self.receptions[&rid];
                    if r.src_tx.0 == p.tx_id {
                        // Its own signal, never its interference. Fresh
                        // ids can't be a source, but a move re-attaching
                        // an existing transmission can sweep past it.
                        continue;
                    }
                    let new_i = r.interference.value() + near_delta;
                    let eval = self.eval_reception(r, new_i, snap_new.value);
                    rids.push(RidUpdate {
                        rid,
                        new_interference: if near { Some(new_i) } else { None },
                        clamped: false,
                        resummed: false,
                        eval: Some(eval),
                    });
                }
            }
            RxUpdate {
                snap: SnapUpdate::Set(snap_new),
                rids,
            }
        } else {
            // TX end: interference only drops, so nothing re-evaluates
            // (mirrors the dense path); near receivers subtract the exact
            // delta, far receivers push the tail value down. Dormant
            // receivers (no snapshot) stay dormant.
            if near {
                let delta = self
                    .received_power(rx, p.tx_station, PowerW(p.power))
                    .value();
                for &rid in rid_list {
                    let r = &self.receptions[&rid];
                    if r.src_tx.0 == p.tx_id {
                        continue; // its own signal, never its interference
                    }
                    let mut new_i = r.interference.value() - delta;
                    let mut clamped = false;
                    let mut resummed = false;
                    if new_i < 0.0 {
                        clamped = true;
                        if -new_i > RESUM_REL_EPS * delta {
                            resummed = true;
                            new_i = self.near_interference_at(rx, Some(r.src_tx)).value();
                        } else {
                            new_i = 0.0;
                        }
                    }
                    rids.push(RidUpdate {
                        rid,
                        new_interference: Some(new_i),
                        clamped,
                        resummed,
                        eval: None,
                    });
                }
            }
            let snap_update = match snap {
                Some(s) if trusted => SnapUpdate::Set(FarSnapshot {
                    value: s.value - tail_delta,
                    rise: s.rise,
                    churn: s.churn + tail_delta,
                    global_at: drift_after,
                }),
                Some(s) => {
                    // The value can't absorb this subtraction (rounding
                    // floor or turnover guard): rebuild it now — the
                    // receptions here stay live and will consume it.
                    parn_sim::counter_inc!("phys.far_cache.recompute");
                    SnapUpdate::Set(FarSnapshot {
                        value: self.recompute_far(rx),
                        rise: s.rise,
                        churn: 0.0,
                        global_at: drift_after,
                    })
                }
                None => SnapUpdate::Keep,
            };
            RxUpdate {
                snap: snap_update,
                rids,
            }
        }
    }

    /// Re-evaluate one reception against an updated near sum and far tail
    /// value (shard-side, read-only). Mirrors [`Self::reevaluate`]'s far
    /// branch exactly.
    fn eval_reception(&self, r: &ActiveReception, new_interference: f64, far_v: f64) -> EvalUpdate {
        parn_sim::counter_inc!("phys.sinr.reevaluations");
        let far_term = self.far_term_from(far_v, r.rx, Some(r.src_tx));
        let sinr = if self.sic_depth > 0 {
            self.sinr_with_sic(r)
        } else {
            let denom = new_interference + far_term;
            if denom <= 0.0 {
                f64::INFINITY
            } else {
                r.signal.value() / denom
            }
        };
        let newly_failed = !r.failed && sinr < r.threshold;
        let mut blame = Vec::new();
        let mut interference_at_failure = 0.0;
        if newly_failed {
            // Blame names near interferers only — a failure caused purely
            // by the aggregated tail has no single culprit, by
            // construction.
            let far = self.far.as_ref().expect("far mode");
            let rxp = self.position(r.rx);
            blame = self
                .active_tx
                .iter()
                .filter(|(&id, _)| TxId(id) != r.src_tx)
                .filter(|(_, tx)| self.position(tx.station).distance(rxp) <= far.near_radius)
                .map(|(_, tx)| Blame {
                    station: tx.station,
                    intended_rx: tx.intended_rx,
                    contribution: self.received_power(r.rx, tx.station, tx.power),
                    jammer: tx.jammer,
                    violator: tx.violator,
                })
                .filter(|b| b.contribution.value() > 0.0)
                .collect();
            interference_at_failure = new_interference + far_term;
        }
        EvalUpdate {
            sinr,
            newly_failed,
            blame,
            interference_at_failure,
        }
    }

    /// Apply shard outputs in work-list (cell-index) order — the stable
    /// reduction step that keeps runs bit-identical across thread counts.
    fn apply_sweep(&mut self, updates: Vec<RxUpdate>) {
        for (i, up) in updates.into_iter().enumerate() {
            match up.snap {
                SnapUpdate::Keep => {}
                SnapUpdate::Set(s) => {
                    let far = self.far.as_mut().expect("far mode");
                    far.active_rx[i].snap = Some(s);
                }
            }
            for ru in up.rids {
                if ru.clamped {
                    parn_sim::counter_inc!("phys.interference.clamped");
                }
                if ru.resummed {
                    parn_sim::counter_inc!("phys.interference.resummed");
                }
                let r = self
                    .receptions
                    .get_mut(&ru.rid)
                    .expect("reception vanished");
                if let Some(i) = ru.new_interference {
                    r.interference = PowerW(i);
                }
                if let Some(e) = ru.eval {
                    r.min_sinr = r.min_sinr.min(e.sinr);
                    if e.newly_failed {
                        r.failed = true;
                        r.blame = e.blame;
                        r.interference_at_failure = PowerW(e.interference_at_failure);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gains::GainMatrix;
    use crate::geom::Point;
    use crate::propagation::FreeSpace;

    /// Three stations on a line: 0 --10m-- 1 --20m-- 2.
    fn tracker() -> SinrTracker {
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        SinrTracker::new(Arc::new(gm), PowerW(1e-9), 1e12)
    }

    #[test]
    fn clean_reception_succeeds() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success);
        assert!(rep.min_sinr > 1e5); // 0.01 W signal over ~1e-9 W noise
        assert!(rep.blame.is_empty());
        assert_eq!((rep.rx, rep.src), (1, 0));
    }

    #[test]
    fn interference_sums_eq5() {
        let mut t = tracker();
        let _a = t.start_transmission(0, PowerW(1.0), None);
        let _b = t.start_transmission(2, PowerW(4.0), None);
        // At station 1: 1.0/100 + 4.0/400 + thermal.
        let n = t.interference_at(1, None);
        assert!((n.value() - (0.01 + 0.01 + 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn exclusion_removes_source() {
        let mut t = tracker();
        let a = t.start_transmission(0, PowerW(1.0), None);
        let n = t.interference_at(1, Some(a));
        assert!((n.value() - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn strong_interferer_kills_reception() {
        let mut t = tracker();
        let tx = t.start_transmission(2, PowerW(1.0), Some(1));
        // Signal at 1: 1/400 = 0.0025.
        let rx = t.begin_reception(1, tx, 0.1);
        // Station 0 fires up next door: interference 1/100 = 0.01,
        // SINR = 0.25 — still above 0.1. Then it raises power.
        let i1 = t.start_transmission(0, PowerW(1.0), None);
        assert!(t.current_sinr(rx) > 0.1);
        let i2 = t.start_transmission(0, PowerW(10.0), None);
        assert!(t.current_sinr(rx) < 0.1);
        t.end_transmission(i1);
        t.end_transmission(i2);
        // Interference gone, but the dip already doomed the packet.
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(!rep.success);
        assert!(rep.min_sinr < 0.1);
        // Blame snapshot holds both interferers from the failure moment.
        assert_eq!(rep.blame.len(), 2);
        assert!(rep.blame.iter().all(|b| b.station == 0));
    }

    #[test]
    fn late_interferer_after_end_is_harmless() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.1);
        let rep = t.complete_reception(rx);
        assert!(rep.success);
        // Interference arriving after completion doesn't matter.
        let i = t.start_transmission(2, PowerW(100.0), None);
        t.end_transmission(i);
        t.end_transmission(tx);
    }

    #[test]
    fn self_transmission_is_fatal_type3() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        // Station 1 transmits while receiving.
        let own = t.start_transmission(1, PowerW(1.0), Some(2));
        assert!(t.current_sinr(rx) < 1e-9);
        t.end_transmission(own);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(!rep.success);
        let self_blame: Vec<_> = rep.blame.iter().filter(|b| b.station == 1).collect();
        assert_eq!(self_blame.len(), 1);
        assert!(self_blame[0].contribution.value() > 1e6);
    }

    #[test]
    fn two_receptions_at_one_station_type2_with_headroom() {
        // Two senders to one receiver: with spread spectrum both can
        // survive if thresholds are low (multiple despreading channels).
        let mut t = tracker();
        let ta = t.start_transmission(0, PowerW(1.0), Some(1)); // 0.01 at 1
        let tb = t.start_transmission(2, PowerW(4.0), Some(1)); // 0.01 at 1
        let ra = t.begin_reception(1, ta, 0.5);
        let rb = t.begin_reception(1, tb, 0.5);
        // Each sees the other as interference: SINR ≈ 1.0 > 0.5.
        assert!((t.current_sinr(ra) - 1.0).abs() < 1e-3);
        assert!((t.current_sinr(rb) - 1.0).abs() < 1e-3);
        let rep_a = t.complete_reception(ra);
        let rep_b = t.complete_reception(rb);
        t.end_transmission(ta);
        t.end_transmission(tb);
        assert!(rep_a.success && rep_b.success);
    }

    #[test]
    fn two_receptions_fail_with_tight_threshold() {
        let mut t = tracker();
        let ta = t.start_transmission(0, PowerW(1.0), Some(1));
        let tb = t.start_transmission(2, PowerW(4.0), Some(1));
        let ra = t.begin_reception(1, ta, 2.0);
        let rb = t.begin_reception(1, tb, 2.0);
        let rep_a = t.complete_reception(ra);
        let rep_b = t.complete_reception(rb);
        t.end_transmission(ta);
        t.end_transmission(tb);
        assert!(!rep_a.success && !rep_b.success);
        // Each blames the other sender, whose intended_rx is station 1 —
        // the Type 2 signature.
        assert_eq!(rep_a.blame.len(), 1);
        assert_eq!(rep_a.blame[0].intended_rx, Some(1));
        assert_eq!(rep_b.blame[0].station, 0);
    }

    #[test]
    fn min_sinr_tracks_worst_moment() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 1e-6);
        let i = t.start_transmission(2, PowerW(400.0), None); // interference 1.0 at station 1
        t.end_transmission(i);
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success); // threshold was tiny
                              // Worst moment: signal 0.01 over interference ~1.0.
        assert!((rep.min_sinr - 0.01).abs() < 1e-4, "min {}", rep.min_sinr);
    }

    #[test]
    fn sensed_power_for_carrier_sense() {
        let mut t = tracker();
        assert!((t.sensed_power(1).value() - 1e-9).abs() < 1e-18);
        let tx = t.start_transmission(0, PowerW(1.0), None);
        assert!(t.sensed_power(1).value() > 0.009);
        t.end_transmission(tx);
        assert!((t.sensed_power(1).value() - 1e-9).abs() < 1e-12);
    }

    #[test]
    fn active_counters() {
        let mut t = tracker();
        assert_eq!((t.active_transmissions(), t.active_receptions()), (0, 0));
        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 0.01);
        assert_eq!((t.active_transmissions(), t.active_receptions()), (1, 1));
        t.abort_reception(rx);
        t.end_transmission(tx);
        assert_eq!((t.active_transmissions(), t.active_receptions()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "ending unknown transmission")]
    fn double_end_panics() {
        let mut t = tracker();
        let tx = t.start_transmission(0, PowerW(1.0), None);
        t.end_transmission(tx);
        t.end_transmission(tx);
    }

    #[test]
    fn clamp_drift_triggers_exact_resummation() {
        use std::sync::atomic::Ordering;
        // Zero thermal floor and a 17-decades dynamic range: a weak
        // contribution is swallowed by rounding when a strong one joins the
        // running sum, so removing strong-then-weak drives the sum negative.
        // The clamp must then resum exactly, not silently zero the drift.
        let pos = vec![
            Point::new(0.0, 0.0),  // src
            Point::new(10.0, 0.0), // rx
            Point::new(20.0, 0.0), // weak interferer (gain 1e-2 at rx)
            Point::new(0.0, 10.0), // strong interferer (gain ~5e-3 at rx)
        ];
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        let mut t = SinrTracker::new(Arc::new(gm), PowerW::ZERO, 1e12);
        let clamped = parn_sim::obs::counter("phys.interference.clamped");
        let resummed = parn_sim::obs::counter("phys.interference.resummed");
        let (clamped0, resummed0) = (
            clamped.load(Ordering::Relaxed),
            resummed.load(Ordering::Relaxed),
        );

        let tx = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx = t.begin_reception(1, tx, 1e-9);
        for _ in 0..100 {
            // Weak first (1e-15 W · 1e-2 = 1e-17 W at rx), then strong
            // (200 W · ~5e-3 = 1 W): the weak term is below one ulp of the
            // strong one, so end-strong/end-weak leaves a negative residue.
            let weak = t.start_transmission(2, PowerW(1e-15), None);
            let strong = t.start_transmission(3, PowerW(200.0), None);
            t.end_transmission(strong);
            t.end_transmission(weak);
            // After every cycle the running sum must bit-match a
            // from-scratch recompute of the active set (here: empty).
            let exact = t.interference_at(1, Some(tx));
            let running = t.receptions[&rx.0].interference;
            assert_eq!(
                running.value().to_bits(),
                exact.value().to_bits(),
                "running {running:?} diverged from exact {exact:?}"
            );
        }
        assert!(
            clamped.load(Ordering::Relaxed) > clamped0,
            "clamp never fired — test geometry no longer exercises drift"
        );
        assert!(
            resummed.load(Ordering::Relaxed) > resummed0,
            "resummation never fired"
        );
        let rep = t.complete_reception(rx);
        t.end_transmission(tx);
        assert!(rep.success);
    }

    #[test]
    fn moves_recompute_exactly_in_exact_mode() {
        // A move transaction in exact mode must leave the tracker in the
        // same state (bit for bit) as a fresh tracker built over the moved
        // positions with the same active set.
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(-15.0, 20.0),
        ];
        let gm = Arc::new(GainMatrix::build_shared(&pts, Arc::new(FreeSpace::unit())));
        let mut t = SinrTracker::new(Arc::clone(&gm) as _, PowerW(1e-9), 1e12);
        let tx0 = t.start_transmission(0, PowerW(1.0), Some(1));
        let rx0 = t.begin_reception(1, tx0, 0.01);
        let _tx2 = t.start_transmission(2, PowerW(0.5), None);

        let movers = [1usize, 2];
        t.begin_moves(&movers);
        pts[1] = Point::new(12.0, 5.0);
        pts[2] = Point::new(-20.0, 3.0);
        for &m in &movers {
            gm.relocate(m, pts[m]);
        }
        t.finish_moves();

        let fresh_gm = Arc::new(GainMatrix::build(&pts, &FreeSpace::unit()));
        let mut f = SinrTracker::new(fresh_gm as _, PowerW(1e-9), 1e12);
        let ftx0 = f.start_transmission(0, PowerW(1.0), Some(1));
        let frx0 = f.begin_reception(1, ftx0, 0.01);
        let _ftx2 = f.start_transmission(2, PowerW(0.5), None);
        for s in 0..pts.len() {
            assert_eq!(
                t.interference_at(s, None).value().to_bits(),
                f.interference_at(s, None).value().to_bits(),
                "interference diverged at {s}"
            );
        }
        assert_eq!(
            t.current_sinr(rx0).to_bits(),
            f.current_sinr(frx0).to_bits()
        );
    }

    mod far_field {
        use super::*;
        use crate::gainmodel::{GainModel, GridGainModel};
        use crate::placement::Placement;
        use parn_sim::Rng;

        fn grid_model(n: usize, radius: f64, seed: u64) -> Arc<GridGainModel> {
            let pts = Placement::UniformDisk { n, radius }.generate(&mut Rng::new(seed));
            Arc::new(GridGainModel::new(&pts, Box::new(FreeSpace::unit())))
        }

        #[test]
        #[should_panic(expected = "requires the grid gain backend")]
        fn dense_backend_rejects_far_field() {
            let gm = GainMatrix::build(&[Point::ORIGIN, Point::new(10.0, 0.0)], &FreeSpace::unit());
            let _ = SinrTracker::new(Arc::new(gm), PowerW(1e-12), 1e12).with_far_field(50.0, 0.0);
        }

        #[test]
        fn far_tail_stays_within_documented_bound() {
            let gm = grid_model(400, 200.0, 11);
            let thermal = PowerW(1e-13);
            let near_radius = 150.0;
            let tolerance = 0.05;
            let delta = gm.grid().half_diagonal();
            // Documented bound: geometric cell-aggregation error plus the
            // snapshot-cache staleness allowance.
            let bound = 2.0 * delta / (near_radius - delta) + tolerance;
            assert!(bound < 1.0, "test geometry too coarse: {bound}");

            let mut far_t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12)
                .with_far_field(near_radius, tolerance);
            let mut rng = Rng::new(21);
            let mut txs = Vec::new();
            for _ in 0..40 {
                let s = rng.below(400) as usize;
                if txs.iter().any(|&(t, _)| t == s) {
                    continue;
                }
                let p = PowerW(rng.range_f64(1e-4, 1e-1));
                far_t.start_transmission(s, p, None);
                txs.push((s, p));
            }
            for rx in (0..400).step_by(37) {
                if txs.iter().any(|&(s, _)| s == rx) {
                    continue; // self-interference would swamp the compare
                }
                let rxp = gm.position(rx);
                let near_exact: f64 = txs
                    .iter()
                    .filter(|&&(s, _)| s != rx && gm.position(s).distance(rxp) <= near_radius)
                    .map(|&(s, p)| gm.gain(rx, s).value() * p.value())
                    .sum();
                let far_exact: f64 = txs
                    .iter()
                    .filter(|&&(s, _)| gm.position(s).distance(rxp) > near_radius)
                    .map(|&(s, p)| gm.gain(rx, s).value() * p.value())
                    .sum();
                let total = far_t.interference_at(rx, None).value();
                let far_approx = total - thermal.value() - near_exact;
                assert!(
                    (far_approx - far_exact).abs() <= bound * far_exact + 1e-18,
                    "rx {rx}: approx {far_approx:e} vs exact {far_exact:e} \
                     (bound {bound})"
                );
            }
        }

        #[test]
        fn far_mode_reception_agrees_with_exact_when_margin_is_wide() {
            // A clean link with scattered weak far interferers: both modes
            // must agree on success and closely on min SINR.
            let gm = grid_model(200, 300.0, 5);
            let thermal = PowerW(1e-13);
            let run = |far: bool| {
                let mut t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12);
                if far {
                    t = t.with_far_field(100.0, 0.05);
                }
                let mut rng = Rng::new(77);
                let mut noise = Vec::new();
                for _ in 0..15 {
                    let s = 2 + rng.below(198) as usize;
                    noise.push(t.start_transmission(s, PowerW(1e-3), None));
                }
                let tx = t.start_transmission(0, PowerW(1.0), Some(1));
                let rx = t.begin_reception(1, tx, 1e-3);
                let rep = t.complete_reception(rx);
                for id in noise {
                    t.end_transmission(id);
                }
                t.end_transmission(tx);
                rep
            };
            let exact = run(false);
            let approx = run(true);
            assert_eq!(exact.success, approx.success);
            let rel = (exact.min_sinr - approx.min_sinr).abs() / exact.min_sinr;
            assert!(rel < 0.5, "min_sinr diverged: {rel}");
        }

        #[test]
        fn sweep_results_are_bit_identical_across_thread_counts() {
            // Enough live receivers (> PAR_MIN_WORK) that the pooled path
            // actually engages, then heavy interferer churn so sweeps do
            // real work. Every per-reception outcome must match to the bit
            // regardless of thread count — the stable-reduction-order
            // guarantee the CI determinism matrix also checks end to end.
            let gm = grid_model(400, 300.0, 13);
            let run = |threads: usize| {
                let mut t =
                    SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, PowerW(1e-13), 1e12)
                        .with_far_field(60.0, 0.05)
                        .with_threads_unclamped(threads);
                let mut rng = Rng::new(99);
                let mut links = Vec::new();
                for i in 0..120 {
                    let tx = t.start_transmission(2 * i, PowerW(0.1), Some(2 * i + 1));
                    let rx = t.begin_reception(2 * i + 1, tx, 1e-2);
                    links.push((tx, rx));
                }
                let mut churn = Vec::new();
                for k in 0..60 {
                    churn.push(t.start_transmission(
                        240 + k,
                        PowerW(rng.range_f64(1e-4, 1.0)),
                        None,
                    ));
                    if k % 3 == 2 {
                        t.end_transmission(churn.remove(0));
                    }
                }
                for id in churn {
                    t.end_transmission(id);
                }
                let mut out = Vec::new();
                for (tx, rx) in links {
                    let rep = t.complete_reception(rx);
                    t.end_transmission(tx);
                    out.push((rep.success, rep.min_sinr.to_bits(), rep.blame.len()));
                }
                out
            };
            let single = run(1);
            for threads in [2, 4] {
                assert_eq!(single, run(threads), "diverged at threads={threads}");
            }
        }

        #[test]
        fn far_aggregates_survive_moves_and_drain_to_floor() {
            // Rounds of station moves while transmissions are on air: the
            // detach/re-attach bookkeeping (slot fix-ups, per-cell totals)
            // must stay exact, so tearing everything down afterwards
            // returns every receiver to the thermal floor.
            let gm = grid_model(300, 250.0, 17);
            let thermal = PowerW(1e-12);
            let mut t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12)
                .with_far_field(80.0, 0.02);
            let mut ids = Vec::new();
            for s in (0..300).step_by(7) {
                ids.push(t.start_transmission(s, PowerW(1e-2), None));
            }
            let mut rng = Rng::new(3);
            for round in 0..5 {
                let movers: Vec<usize> = (0..300).filter(|s| s % 50 == round).collect();
                t.begin_moves(&movers);
                for &m in &movers {
                    gm.relocate(
                        m,
                        Point::new(rng.range_f64(-240.0, 240.0), rng.range_f64(-240.0, 240.0)),
                    );
                }
                t.finish_moves();
            }
            for id in ids {
                t.end_transmission(id);
            }
            for rx in [0usize, 150, 299] {
                let floor = t.interference_at(rx, None).value();
                assert!(
                    (floor - thermal.value()).abs() <= 1e-15,
                    "residual {floor:e} at {rx}"
                );
            }
        }

        #[test]
        fn far_mode_move_agrees_with_exact_mid_reception() {
            // Move the source, the receiver, and an active interferer in
            // the middle of a reception; far mode must agree with the
            // exact tracker on the outcome and closely on min SINR.
            let run = |far: bool| {
                let gm = grid_model(200, 300.0, 5);
                let mut t =
                    SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, PowerW(1e-13), 1e12);
                if far {
                    t = t.with_far_field(100.0, 0.05);
                }
                let mut noise = Vec::new();
                for k in 0..12usize {
                    noise.push(t.start_transmission(50 + 11 * k, PowerW(1e-3), None));
                }
                let tx = t.start_transmission(0, PowerW(1.0), Some(1));
                let rx = t.begin_reception(1, tx, 1e-3);
                let movers = [0usize, 1, 50];
                t.begin_moves(&movers);
                let p0 = gm.position(0);
                gm.relocate(0, Point::new(p0.x + 8.0, p0.y - 3.0));
                let p1 = gm.position(1);
                gm.relocate(1, Point::new(p1.x - 5.0, p1.y + 6.0));
                gm.relocate(50, Point::new(p1.x + 20.0, p1.y));
                t.finish_moves();
                let rep = t.complete_reception(rx);
                for id in noise {
                    t.end_transmission(id);
                }
                t.end_transmission(tx);
                rep
            };
            let exact = run(false);
            let approx = run(true);
            assert_eq!(exact.success, approx.success);
            let rel = (exact.min_sinr - approx.min_sinr).abs() / exact.min_sinr;
            assert!(rel < 0.5, "min_sinr diverged: {rel}");
        }

        #[test]
        fn far_interference_returns_to_floor_after_teardown() {
            let gm = grid_model(300, 250.0, 9);
            let thermal = PowerW(1e-12);
            let mut t = SinrTracker::new(Arc::clone(&gm) as Arc<dyn GainModel>, thermal, 1e12)
                .with_far_field(80.0, 0.02);
            let mut ids = Vec::new();
            for s in (0..300).step_by(11) {
                ids.push(t.start_transmission(s, PowerW(1e-2), None));
            }
            assert!(t.interference_at(150, None).value() > thermal.value());
            for id in ids {
                t.end_transmission(id);
            }
            // All aggregates drained: back to thermal exactly.
            let floor = t.interference_at(150, None).value();
            assert!(
                (floor - thermal.value()).abs() <= 1e-15,
                "residual {floor:e}"
            );
        }
    }
}
