//! Planar geometry for station placement and routing predicates.
//!
//! Stations live in a 2-D plane (the paper's "infinite flat earth",
//! truncated to a metro-sized disk by the radio horizon, §4). Distances are
//! in meters by convention, though the physics is scale-free.

use std::fmt;

/// A point in the plane (meters).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// East–west coordinate.
    pub x: f64,
    /// North–south coordinate.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared distance (cheaper; enough for comparisons).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment to `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Translate by a vector.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A disk (used for the metro region and for relay predicates).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Disk {
    /// Center of the disk.
    pub center: Point,
    /// Radius in meters.
    pub radius: f64,
}

impl Disk {
    /// Construct a disk.
    pub fn new(center: Point, radius: f64) -> Disk {
        debug_assert!(radius >= 0.0);
        Disk { center, radius }
    }

    /// The disk whose *diameter* is the segment `ab` — the paper's
    /// minimum-energy relay region (§6.2): with `1/r²` loss, relaying via
    /// `B` beats transmitting `A→C` directly exactly when `B` lies inside
    /// this disk.
    pub fn on_diameter(a: Point, b: Point) -> Disk {
        Disk::new(a.midpoint(b), a.distance(b) / 2.0)
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius * (1.0 + 1e-12)
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

/// Test whether relaying `a → relay → c` uses no more *energy* than the
/// direct hop `a → c`, under `1/r^alpha` power loss with power control
/// (transmit power ∝ rᵅ).
///
/// For `alpha = 2` this is equivalent to `relay ∈ Disk::on_diameter(a, c)`
/// (by the Pythagorean inequality `|ar|² + |rc|² ≤ |ac|²` iff the angle at
/// the relay is ≥ 90°). The general form lets ablations explore other
/// exponents.
pub fn relay_saves_energy(a: Point, relay: Point, c: Point, alpha: f64) -> bool {
    let d_ar = a.distance(relay);
    let d_rc = relay.distance(c);
    let d_ac = a.distance(c);
    d_ar.powf(alpha) + d_rc.powf(alpha) <= d_ac.powf(alpha) * (1.0 + 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn disk_contains() {
        let d = Disk::new(Point::ORIGIN, 10.0);
        assert!(d.contains(Point::new(10.0, 0.0)));
        assert!(d.contains(Point::new(7.0, 7.0)));
        assert!(!d.contains(Point::new(7.2, 7.2)));
        assert!((d.area() - std::f64::consts::PI * 100.0).abs() < 1e-9);
    }

    #[test]
    fn diameter_disk_matches_paper_figure() {
        // Paper §6.2: relay B between A and C; exactly centered halves the
        // per-hop distance, quartering power — inside the circle.
        let a = Point::new(0.0, 0.0);
        let c = Point::new(10.0, 0.0);
        let d = Disk::on_diameter(a, c);
        assert_eq!(d.center, Point::new(5.0, 0.0));
        assert!((d.radius - 5.0).abs() < 1e-12);
        assert!(d.contains(Point::new(5.0, 0.0)));
        assert!(d.contains(Point::new(5.0, 4.9)));
        assert!(!d.contains(Point::new(5.0, 5.1)));
    }

    #[test]
    fn relay_energy_alpha2_equals_diameter_circle() {
        let a = Point::new(0.0, 0.0);
        let c = Point::new(8.0, 0.0);
        let disk = Disk::on_diameter(a, c);
        // A grid of candidate relays: the energy predicate and the circle
        // predicate must agree everywhere (alpha = 2).
        for ix in -20..=40 {
            for iy in -20..=20 {
                let p = Point::new(ix as f64 * 0.5, iy as f64 * 0.5);
                assert_eq!(
                    relay_saves_energy(a, p, c, 2.0),
                    disk.contains(p),
                    "disagree at {p}"
                );
            }
        }
    }

    #[test]
    fn centered_relay_halves_energy() {
        // Paper: relay exactly centered cuts each hop's power by 4; doubled
        // duration, so total energy halves. With cost ∝ r²:
        let a = Point::new(0.0, 0.0);
        let c = Point::new(10.0, 0.0);
        let b = a.midpoint(c);
        let direct = a.distance_sq(c);
        let relayed = a.distance_sq(b) + b.distance_sq(c);
        assert!((relayed / direct - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relay_alpha4_region_is_larger() {
        // With steeper loss, relaying pays off in a wider region.
        let a = Point::new(0.0, 0.0);
        let c = Point::new(10.0, 0.0);
        let p = Point::new(5.0, 6.0); // outside the alpha=2 circle
        assert!(!relay_saves_energy(a, p, c, 2.0));
        assert!(relay_saves_energy(a, p, c, 4.0));
    }

    #[test]
    fn degenerate_relay_on_endpoint() {
        let a = Point::new(0.0, 0.0);
        let c = Point::new(10.0, 0.0);
        assert!(relay_saves_energy(a, a, c, 2.0));
        assert!(relay_saves_energy(a, c, c, 2.0));
    }
}
