//! Propagation models: from transmit power to received power.
//!
//! The paper's §3.3 simplification makes each path a scalar: received power
//! = transmitted power × `g_ij` with `g_ij ∝ 1/r²` (free-space loss). §3.5
//! notes this *overestimates* distant interferers (obstructed paths) — a
//! deliberately pessimistic calibration. §4 adds two refinements we also
//! model: slight atmospheric attenuation (`e^{-αr}` factor) and the radio
//! horizon, either of which tames the diverging interference integral.

use crate::geom::Point;
use crate::units::Gain;

/// A propagation model: maps a transmitter/receiver position pair to a
/// scalar power gain (the paper's `h_ij²`).
pub trait Propagation {
    /// Power gain of the path from `tx` to `rx`.
    fn power_gain(&self, tx: Point, rx: Point) -> Gain;

    /// Power gain at a given distance, where the model is isotropic.
    fn gain_at_distance(&self, r: f64) -> Gain {
        self.power_gain(Point::ORIGIN, Point::new(r, 0.0))
    }

    /// A distance beyond which the gain is guaranteed *strictly below*
    /// `g`, or `None` when no such bound is known (e.g. shadowed models,
    /// whose log-normal factor is unbounded). Spatial indexes use this to
    /// turn "all stations with gain ≥ g" into a bounded range query.
    fn range_for_gain(&self, g: Gain) -> Option<f64> {
        let _ = g;
        None
    }

    /// Whether the model is reciprocal (`g(a→b) == g(b→a)` exactly).
    /// All bundled models are; a directional model would override this,
    /// which routes gain-matrix construction through the per-ordered-pair
    /// path.
    fn is_symmetric(&self) -> bool {
        true
    }
}

/// Free-space propagation: `g = k / max(r, r_min)²`.
///
/// `k` bundles antenna gains and wavelength (the paper's κ); `r_min` is a
/// near-field clamp so co-located stations do not produce infinite gain
/// (physically, the far-field formula is invalid below ~a wavelength).
#[derive(Clone, Copy, Debug)]
pub struct FreeSpace {
    /// Antenna/wavelength constant κ (gain at 1 m, dimensionally m²).
    pub k: f64,
    /// Near-field clamp distance (m).
    pub r_min: f64,
}

impl FreeSpace {
    /// A model with κ = 1 and a 1 m near-field clamp — the paper's
    /// relative-units convention.
    pub fn unit() -> FreeSpace {
        FreeSpace { k: 1.0, r_min: 1.0 }
    }
}

impl Propagation for FreeSpace {
    fn power_gain(&self, tx: Point, rx: Point) -> Gain {
        let r = tx.distance(rx).max(self.r_min);
        Gain(self.k / (r * r))
    }

    fn range_for_gain(&self, g: Gain) -> Option<f64> {
        // g(r) = k/r² < g  ⇔  r > √(k/g); the r_min clamp only lowers
        // gains at short range, so the bound stays valid.
        (g.value() > 0.0).then(|| (self.k / g.value()).sqrt())
    }
}

/// Power-law propagation with arbitrary exponent: `g = k / max(r, r_min)^α`.
///
/// α = 2 reproduces [`FreeSpace`]; urban ground-level paths are often
/// modelled with α ∈ [3, 4]. Used by ablation experiments.
#[derive(Clone, Copy, Debug)]
pub struct PowerLaw {
    /// Gain constant.
    pub k: f64,
    /// Path-loss exponent α.
    pub alpha: f64,
    /// Near-field clamp distance (m).
    pub r_min: f64,
}

impl Propagation for PowerLaw {
    fn power_gain(&self, tx: Point, rx: Point) -> Gain {
        let r = tx.distance(rx).max(self.r_min);
        Gain(self.k / r.powf(self.alpha))
    }

    fn range_for_gain(&self, g: Gain) -> Option<f64> {
        (g.value() > 0.0 && self.alpha > 0.0).then(|| (self.k / g.value()).powf(1.0 / self.alpha))
    }
}

/// Free-space loss with exponential atmospheric attenuation:
/// `g = k · e^{-a·r} / max(r, r_min)²`.
///
/// The paper (§4) observes that "the slightest bit of atmospheric
/// attenuation ... would make the integral converge".
#[derive(Clone, Copy, Debug)]
pub struct Attenuated {
    /// Gain constant.
    pub k: f64,
    /// Attenuation coefficient (1/m).
    pub atten: f64,
    /// Near-field clamp distance (m).
    pub r_min: f64,
}

impl Propagation for Attenuated {
    fn power_gain(&self, tx: Point, rx: Point) -> Gain {
        let r = tx.distance(rx).max(self.r_min);
        Gain(self.k * (-self.atten * r).exp() / (r * r))
    }

    fn range_for_gain(&self, g: Gain) -> Option<f64> {
        // e^{-ar} ≤ 1, so the free-space bound is a valid (loose) cover.
        (g.value() > 0.0).then(|| (self.k / g.value()).sqrt())
    }
}

/// Radio-horizon cutoff wrapping an inner model: beyond `horizon` meters the
/// gain is exactly zero ("only stations that are not hidden over the horizon
/// can contribute", §4).
#[derive(Clone, Copy, Debug)]
pub struct HorizonLimited<P> {
    /// The within-horizon model.
    pub inner: P,
    /// Horizon distance (m).
    pub horizon: f64,
}

impl<P: Propagation> Propagation for HorizonLimited<P> {
    fn power_gain(&self, tx: Point, rx: Point) -> Gain {
        if tx.distance(rx) > self.horizon {
            Gain::ZERO
        } else {
            self.inner.power_gain(tx, rx)
        }
    }

    fn range_for_gain(&self, g: Gain) -> Option<f64> {
        if g.value() <= 0.0 {
            // Beyond the horizon the gain is exactly zero, which is not
            // strictly below a zero threshold.
            return None;
        }
        let inner = self.inner.range_for_gain(g).unwrap_or(f64::INFINITY);
        Some(inner.min(self.horizon))
    }
}

/// Log-normal shadowing on top of an inner model: each (unordered) station
/// pair gets a fixed, reciprocal shadow factor `10^(X/10)` with
/// `X ~ N(0, sigma_db)`, drawn deterministically from the pair's positions
/// and a seed.
///
/// §3.5 calibrates deliberately optimistically-pessimistic: "actual
/// propagation in most cases will either be nearly equal to the free space
/// propagation ... or will be attenuated (when there are obstructions)".
/// Shadowing lets robustness experiments inject those obstructions. Note
/// that shadowed gains are what stations *observe*, so routing and power
/// control adapt to them automatically.
#[derive(Clone, Copy, Debug)]
pub struct Shadowed<P> {
    /// The unshadowed model.
    pub inner: P,
    /// Standard deviation of the shadowing term in dB (4–12 dB typical).
    pub sigma_db: f64,
    /// Seed for the per-pair draw.
    pub seed: u64,
}

impl<P: Propagation> Shadowed<P> {
    fn shadow_db(&self, a: Point, b: Point) -> f64 {
        // Symmetric, position-keyed hash: quantize coordinates to
        // millimeters and combine order-independently.
        let q = |p: Point| -> u64 {
            let x = (p.x * 1000.0).round() as i64 as u64;
            let y = (p.y * 1000.0).round() as i64 as u64;
            parn_sim::rng::mix64(x ^ y.rotate_left(21))
        };
        let key = q(a) ^ q(b);
        let h1 = parn_sim::rng::mix64(key ^ self.seed);
        let h2 = parn_sim::rng::mix64(h1);
        // Box–Muller from two hash-derived uniforms in (0, 1).
        let u1 = (h1 >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        let u1 = (1.0 - u1).max(1e-300);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        z * self.sigma_db
    }
}

impl<P: Propagation> Propagation for Shadowed<P> {
    fn power_gain(&self, tx: Point, rx: Point) -> Gain {
        if tx == rx {
            return self.inner.power_gain(tx, rx);
        }
        let base = self.inner.power_gain(tx, rx);
        base * 10f64.powf(self.shadow_db(tx, rx) / 10.0)
    }
}

/// Radio horizon distance for antennas at heights `h1`, `h2` (meters),
/// using the standard 4/3-earth-radius model the paper cites:
/// `d ≈ √(2·k·Re·h1) + √(2·k·Re·h2)` with `k = 4/3`.
pub fn radio_horizon_m(h1: f64, h2: f64) -> f64 {
    const EARTH_RADIUS_M: f64 = 6_371_000.0;
    let ke = 4.0 / 3.0 * EARTH_RADIUS_M;
    (2.0 * ke * h1).sqrt() + (2.0 * ke * h2).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::db;

    #[test]
    fn free_space_inverse_square() {
        let m = FreeSpace::unit();
        let g1 = m.gain_at_distance(10.0).value();
        let g2 = m.gain_at_distance(20.0).value();
        assert!((g1 / g2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn six_db_per_doubling() {
        // Paper §4: "free-space radio propagation falls off by a factor of
        // four, or 6 dB, for each doubling in distance".
        let m = FreeSpace::unit();
        let drop = db(m.gain_at_distance(50.0).value()) - db(m.gain_at_distance(100.0).value());
        assert!((drop - 6.0206).abs() < 1e-3, "drop {drop}");
    }

    #[test]
    fn near_field_clamp() {
        let m = FreeSpace { k: 1.0, r_min: 2.0 };
        assert_eq!(m.gain_at_distance(0.0), m.gain_at_distance(2.0));
        assert_eq!(m.gain_at_distance(1.0).value(), 0.25);
    }

    #[test]
    fn power_law_matches_free_space_at_alpha2() {
        let fs = FreeSpace::unit();
        let pl = PowerLaw {
            k: 1.0,
            alpha: 2.0,
            r_min: 1.0,
        };
        for r in [1.0, 5.0, 33.0, 1000.0] {
            assert!(
                (fs.gain_at_distance(r).value() - pl.gain_at_distance(r).value()).abs() < 1e-15
            );
        }
    }

    #[test]
    fn power_law_alpha4_steeper() {
        let pl = PowerLaw {
            k: 1.0,
            alpha: 4.0,
            r_min: 1.0,
        };
        let g1 = pl.gain_at_distance(10.0).value();
        let g2 = pl.gain_at_distance(20.0).value();
        assert!((g1 / g2 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn attenuated_below_free_space() {
        let fs = FreeSpace::unit();
        let at = Attenuated {
            k: 1.0,
            atten: 0.001,
            r_min: 1.0,
        };
        let r = 1000.0;
        let ratio = at.gain_at_distance(r).value() / fs.gain_at_distance(r).value();
        assert!((ratio - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn horizon_cutoff() {
        let m = HorizonLimited {
            inner: FreeSpace::unit(),
            horizon: 100.0,
        };
        assert!(m.gain_at_distance(99.0).value() > 0.0);
        assert_eq!(m.gain_at_distance(101.0), Gain::ZERO);
    }

    #[test]
    fn radio_horizon_plausible() {
        // 10 m antennas see each other out to roughly 26 km.
        let d = radio_horizon_m(10.0, 10.0);
        assert!((25_000.0..28_000.0).contains(&d), "d = {d}");
        // Higher antennas see farther.
        assert!(radio_horizon_m(100.0, 100.0) > d);
    }

    #[test]
    fn shadowing_is_deterministic_and_reciprocal() {
        let m = Shadowed {
            inner: FreeSpace::unit(),
            sigma_db: 8.0,
            seed: 42,
        };
        let a = Point::new(3.0, 4.0);
        let b = Point::new(50.0, -20.0);
        assert_eq!(m.power_gain(a, b), m.power_gain(a, b));
        assert_eq!(m.power_gain(a, b), m.power_gain(b, a), "not reciprocal");
    }

    #[test]
    fn shadowing_statistics() {
        let m = Shadowed {
            inner: FreeSpace::unit(),
            sigma_db: 8.0,
            seed: 7,
        };
        let fs = FreeSpace::unit();
        let mut devs = Vec::new();
        for i in 0..2000 {
            let a = Point::new(i as f64 * 1.7, 0.0);
            let b = Point::new(i as f64 * 1.7, 100.0);
            let ratio = m.power_gain(a, b).value() / fs.power_gain(a, b).value();
            devs.push(10.0 * ratio.log10());
        }
        let mean = devs.iter().sum::<f64>() / devs.len() as f64;
        let var = devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / devs.len() as f64;
        assert!(mean.abs() < 0.8, "mean {mean} dB");
        assert!((var.sqrt() - 8.0).abs() < 0.5, "sd {} dB", var.sqrt());
    }

    #[test]
    fn shadowing_seed_changes_draw() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let m1 = Shadowed {
            inner: FreeSpace::unit(),
            sigma_db: 8.0,
            seed: 1,
        };
        let m2 = Shadowed {
            inner: FreeSpace::unit(),
            sigma_db: 8.0,
            seed: 2,
        };
        assert_ne!(m1.power_gain(a, b), m2.power_gain(a, b));
    }

    #[test]
    fn zero_sigma_is_transparent() {
        let m = Shadowed {
            inner: FreeSpace::unit(),
            sigma_db: 0.0,
            seed: 9,
        };
        let a = Point::new(1.0, 2.0);
        let b = Point::new(30.0, 40.0);
        let g = m.power_gain(a, b).value();
        let f = FreeSpace::unit().power_gain(a, b).value();
        assert!((g - f).abs() / f < 1e-12);
    }

    #[test]
    fn symmetric_paths() {
        let m = FreeSpace::unit();
        let a = Point::new(3.0, -7.0);
        let b = Point::new(-20.0, 14.0);
        assert_eq!(m.power_gain(a, b), m.power_gain(b, a));
    }
}
