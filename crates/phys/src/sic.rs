//! Successive interference cancellation (SIC).
//!
//! §3.4, footnote 2: "packet radio networks considered here might
//! nevertheless benefit from receivers that model and subtract only a few
//! of the strongest interfering signals", per Verdú practical only for a
//! handful of interferers. This module implements that receiver upgrade:
//! greedily decode-and-subtract the strongest interferer while it is
//! itself decodable, up to a configured depth, then test the wanted
//! signal against what remains.
//!
//! Off by default everywhere; the `abl_sic` harness measures what it buys.

/// Effective SINR of a wanted signal after cancelling up to `depth` of the
/// strongest interferers.
///
/// * `signal` — wanted signal power at the receiver;
/// * `noise_floor` — non-cancellable noise (thermal + external din);
/// * `interferers` — individual interferer powers at the receiver;
/// * `depth` — maximum number of cancellations (0 = plain receiver);
/// * `decode_threshold` — SINR an interferer must itself reach (over
///   everything else, including the wanted signal) to be decoded,
///   reconstructed and subtracted.
///
/// Returns the SINR the wanted signal sees after cancellation
/// (∞ when nothing interferes at all).
pub fn effective_sinr(
    signal: f64,
    noise_floor: f64,
    interferers: &[f64],
    depth: usize,
    decode_threshold: f64,
) -> f64 {
    debug_assert!(signal >= 0.0 && noise_floor >= 0.0);
    let mut remaining: Vec<f64> = interferers.to_vec();
    remaining.sort_by(|a, b| b.partial_cmp(a).expect("NaN interferer power"));
    let mut total: f64 = noise_floor + remaining.iter().sum::<f64>();
    let mut cancelled = 0;
    while cancelled < depth {
        let Some(&strongest) = remaining.first() else {
            break;
        };
        // Can the receiver decode the strongest interferer, treating
        // everything else (including the wanted signal) as noise?
        let its_noise = total - strongest + signal;
        if its_noise <= 0.0 || strongest / its_noise < decode_threshold {
            break; // not decodable: cancellation chain stops
        }
        remaining.remove(0);
        total -= strongest;
        cancelled += 1;
    }
    if total <= 0.0 {
        f64::INFINITY
    } else {
        signal / total
    }
}

/// How many of the given interferers a `depth`-deep SIC receiver would
/// cancel (diagnostic companion to [`effective_sinr`]).
pub fn cancellable_count(
    signal: f64,
    noise_floor: f64,
    interferers: &[f64],
    depth: usize,
    decode_threshold: f64,
) -> usize {
    let mut remaining: Vec<f64> = interferers.to_vec();
    remaining.sort_by(|a, b| b.partial_cmp(a).expect("NaN interferer power"));
    let mut total: f64 = noise_floor + remaining.iter().sum::<f64>();
    let mut cancelled = 0;
    while cancelled < depth {
        let Some(&strongest) = remaining.first() else {
            break;
        };
        let its_noise = total - strongest + signal;
        if its_noise <= 0.0 || strongest / its_noise < decode_threshold {
            break;
        }
        remaining.remove(0);
        total -= strongest;
        cancelled += 1;
    }
    cancelled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_is_plain_receiver() {
        let sinr = effective_sinr(1.0, 0.1, &[2.0, 0.5], 0, 1.0);
        assert!((sinr - 1.0 / 2.6).abs() < 1e-12);
    }

    #[test]
    fn cancels_dominant_interferer() {
        // Interferer at 10 over (noise 0.1 + signal 1.0): SINR ~9 >> 1,
        // decodable; after cancellation the wanted signal sees 0.1.
        let sinr = effective_sinr(1.0, 0.1, &[10.0], 1, 1.0);
        assert!((sinr - 10.0).abs() < 1e-9);
        assert_eq!(cancellable_count(1.0, 0.1, &[10.0], 1, 1.0), 1);
    }

    #[test]
    fn comparable_power_interferer_not_decodable() {
        // Equal powers: interferer SINR = 1.0/(0.1+1.0) < 1: no capture.
        let plain = effective_sinr(1.0, 0.1, &[1.0], 0, 1.0);
        let sic = effective_sinr(1.0, 0.1, &[1.0], 2, 1.0);
        assert_eq!(plain, sic);
        assert_eq!(cancellable_count(1.0, 0.1, &[1.0], 2, 1.0), 0);
    }

    #[test]
    fn chain_of_cancellations() {
        // Two strong tiers: 100 then 10, then the signal at 1.
        let s0 = effective_sinr(1.0, 0.01, &[100.0, 10.0], 0, 1.0);
        let s1 = effective_sinr(1.0, 0.01, &[100.0, 10.0], 1, 1.0);
        let s2 = effective_sinr(1.0, 0.01, &[100.0, 10.0], 2, 1.0);
        assert!(s0 < 0.01);
        assert!((s1 - 1.0 / 10.01).abs() < 1e-9);
        assert!((s2 - 100.0).abs() < 1e-6);
        assert_eq!(cancellable_count(1.0, 0.01, &[100.0, 10.0], 2, 1.0), 2);
    }

    #[test]
    fn chain_stops_at_first_undecodable() {
        // Strongest is decodable, but after removing it the next two are
        // equal-power and mask each other: only one cancellation.
        let n = cancellable_count(1.0, 0.01, &[100.0, 5.0, 5.0], 3, 1.0);
        assert_eq!(n, 1);
    }

    #[test]
    fn depth_limits_cancellations() {
        // Geometric tiers, all decodable in sequence — but depth caps it.
        let tiers = [1000.0, 100.0, 10.0];
        assert_eq!(cancellable_count(1.0, 0.001, &tiers, 2, 1.0), 2);
        let s = effective_sinr(1.0, 0.001, &tiers, 2, 1.0);
        assert!((s - 1.0 / 10.001).abs() < 1e-9);
    }

    #[test]
    fn no_interferers_is_clean() {
        let s = effective_sinr(1.0, 0.5, &[], 4, 1.0);
        assert!((s - 2.0).abs() < 1e-12);
        assert!(effective_sinr(1.0, 0.0, &[], 4, 1.0).is_infinite());
    }

    #[test]
    fn spread_spectrum_thresholds_cancel_easily() {
        // With a spread-spectrum decode threshold (~0.02), even a modest
        // interferer is decodable and removable.
        let plain = effective_sinr(1.0, 0.05, &[3.0], 0, 0.02);
        let sic = effective_sinr(1.0, 0.05, &[3.0], 1, 0.02);
        assert!(plain < 0.4);
        assert!(sic > 10.0);
    }
}
