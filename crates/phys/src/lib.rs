//! `parn-phys`: the radio-physics substrate of the `parn` workspace.
//!
//! Implements the physical model of Shepard's SIGCOMM '96 paper:
//!
//! * [`units`] — decibels, powers, power gains;
//! * [`geom`] — planar geometry, including the minimum-energy relay circle;
//! * [`placement`] — station placement models (uniform disk, Poisson,
//!   grid, clustered);
//! * [`propagation`] — free-space `1/r²` loss and variants (power-law,
//!   atmospheric attenuation, radio horizon);
//! * [`gains`] — the propagation matrix `H` (stored as power gains);
//! * [`shannon`] — capacity, the reception criterion
//!   `S/N ≥ β·(2^(C/W) − 1)`, processing-gain budgeting;
//! * [`noise`] — the §4 noise-growth analysis (Figure 1):
//!   `S/N ≈ 1/(π·η·ln M)`;
//! * [`sic`] — successive interference cancellation (§3.4 footnote 2);
//! * [`sinr`] — the incremental interference tracker used by every MAC in
//!   the workspace (interference is the *power sum* of concurrent
//!   transmissions — no success-if-exclusive shortcut);
//! * [`linkbudget`] — system sizing and the metro-scale projection;
//! * [`sample`] — distance-weighted (gravity) destination sampling over
//!   the spatial index;
//! * [`capacity`] — closed-form Aloha-coverage and ad-hoc-capacity
//!   references for the saturation envelope (E7).

#![warn(missing_docs)]

pub mod capacity;
pub mod gainmodel;
pub mod gains;
pub mod geom;
pub mod grid;
pub mod linkbudget;
pub mod noise;
pub mod partition;
pub mod placement;
pub mod propagation;
pub mod sample;
pub mod shannon;
pub mod sic;
pub mod sinr;
pub mod units;

pub use gainmodel::{GainModel, GridGainModel};
pub use gains::{GainMatrix, StationId};
pub use geom::{Disk, Point};
pub use grid::GridIndex;
pub use partition::{CutAxis, GeoCut, PartitionOverlay};
pub use propagation::{FreeSpace, Propagation};
pub use sample::GravitySampler;
pub use shannon::ReceptionCriterion;
pub use sinr::{ReceptionReport, RxId, SinrTracker, TxId};
pub use units::{Db, Gain, PowerW};
