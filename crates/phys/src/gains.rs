//! The propagation matrix `H` (stored as power gains `g_ij = h_ij²`).
//!
//! In a real network "stations may observe the actual propagation between
//! stations that are capable of direct communication" (§3.5); in the
//! simulator we precompute the full matrix from a placement and a
//! propagation model. Routing (§6.2) and neighbour discovery read it.

use std::fmt;
use std::sync::{Arc, RwLock};

use crate::geom::Point;
use crate::propagation::Propagation;
use crate::units::Gain;

/// Index of a station.
pub type StationId = usize;

/// Dense matrix of pairwise power gains.
///
/// `g(i, j)` is the power gain from transmitter `j` to receiver `i`
/// (paper's `h_ij²` indexing: first index is the receiver). For our
/// isotropic models the matrix is symmetric, but the API keeps the
/// receiver-first convention so directional models could drop in.
///
/// Positions are time-varying when the matrix is built with
/// [`build_shared`](Self::build_shared): [`relocate`](Self::relocate)
/// moves one station and recomputes its row and column in place. The
/// table lives behind a lock so the simulator can move stations through
/// a shared handle; all writes happen on the single-threaded event loop
/// (reader threads only ever observe a quiescent table).
pub struct GainMatrix {
    n: usize,
    inner: RwLock<Inner>,
    model: Option<Arc<dyn Propagation + Send + Sync>>,
}

struct Inner {
    g: Vec<f64>,
    positions: Vec<Point>,
}

impl Clone for GainMatrix {
    fn clone(&self) -> GainMatrix {
        let inner = self.inner.read().unwrap();
        GainMatrix {
            n: self.n,
            inner: RwLock::new(Inner {
                g: inner.g.clone(),
                positions: inner.positions.clone(),
            }),
            model: self.model.clone(),
        }
    }
}

impl fmt::Debug for GainMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GainMatrix")
            .field("n", &self.n)
            .field("mobile", &self.model.is_some())
            .finish()
    }
}

fn compute_table(positions: &[Point], model: &dyn Propagation) -> Vec<f64> {
    let n = positions.len();
    let mut g = vec![0.0; n * n];
    if model.is_symmetric() {
        // One propagation evaluation per unordered pair.
        for i in 0..n {
            for j in (i + 1)..n {
                let v = model.power_gain(positions[j], positions[i]).value();
                g[i * n + j] = v;
                g[j * n + i] = v;
            }
        }
    } else {
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g[i * n + j] = model.power_gain(positions[j], positions[i]).value();
                }
            }
        }
    }
    g
}

impl GainMatrix {
    /// Build from station positions and a propagation model.
    /// Self-paths `g(i, i)` are stored as zero: a station's own transmitter
    /// is handled specially (Type 3 collisions, §5).
    ///
    /// The model is not retained, so the matrix is static:
    /// [`relocate`](Self::relocate) panics. Mobility runs use
    /// [`build_shared`](Self::build_shared).
    pub fn build<P: Propagation>(positions: &[Point], model: &P) -> GainMatrix {
        GainMatrix {
            n: positions.len(),
            inner: RwLock::new(Inner {
                g: compute_table(positions, model),
                positions: positions.to_vec(),
            }),
            model: None,
        }
    }

    /// Like [`build`](Self::build), but retains the propagation model so
    /// [`relocate`](Self::relocate) can recompute a moved station's gains.
    pub fn build_shared(
        positions: &[Point],
        model: Arc<dyn Propagation + Send + Sync>,
    ) -> GainMatrix {
        GainMatrix {
            n: positions.len(),
            inner: RwLock::new(Inner {
                g: compute_table(positions, &*model),
                positions: positions.to_vec(),
            }),
            model: Some(model),
        }
    }

    /// Build directly from an explicit gain table (row-major,
    /// receiver-first). Positions default to the origin; useful in tests.
    pub fn from_raw(n: usize, g: Vec<f64>) -> GainMatrix {
        assert_eq!(g.len(), n * n, "gain table size mismatch");
        GainMatrix {
            n,
            inner: RwLock::new(Inner {
                g,
                positions: vec![Point::ORIGIN; n],
            }),
            model: None,
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no stations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Power gain from transmitter `tx` to receiver `rx`.
    #[inline]
    pub fn gain(&self, rx: StationId, tx: StationId) -> Gain {
        Gain(self.inner.read().unwrap().g[rx * self.n + tx])
    }

    /// Position of one station (current, i.e. post-move).
    pub fn position(&self, id: StationId) -> Point {
        self.inner.read().unwrap().positions[id]
    }

    /// Move station `id` to `to` and recompute its row (gains *into* it)
    /// and column (gains *from* it) with the retained propagation model.
    /// Entries match what a fresh [`build`](Self::build) over the moved
    /// positions would produce, bit for bit.
    ///
    /// Panics when the matrix was built without a shared model
    /// ([`build`](Self::build) / [`from_raw`](Self::from_raw)).
    pub fn relocate(&self, id: StationId, to: Point) {
        let model = self
            .model
            .as_ref()
            .expect("GainMatrix::relocate needs a matrix built with build_shared");
        let mut inner = self.inner.write().unwrap();
        let n = self.n;
        inner.positions[id] = to;
        let Inner { g, positions } = &mut *inner;
        for j in 0..n {
            if j == id {
                continue;
            }
            // Receiver-first indexing, power_gain(tx, rx) — exactly the
            // orientation `compute_table` uses for both build paths.
            g[id * n + j] = model.power_gain(positions[j], positions[id]).value();
            g[j * n + id] = model.power_gain(positions[id], positions[j]).value();
        }
    }

    /// All stations whose path gain *to* `rx` is at least `threshold` —
    /// the stations `rx` can plausibly hear directly.
    pub fn hearable_by(&self, rx: StationId, threshold: Gain) -> Vec<StationId> {
        let inner = self.inner.read().unwrap();
        (0..self.n)
            .filter(|&tx| tx != rx && Gain(inner.g[rx * self.n + tx]) >= threshold)
            .collect()
    }

    /// The strongest `k` paths into `rx`, best first.
    pub fn strongest_neighbors(&self, rx: StationId, k: usize) -> Vec<StationId> {
        let inner = self.inner.read().unwrap();
        let mut ids: Vec<StationId> = (0..self.n).filter(|&j| j != rx).collect();
        ids.sort_by(|&a, &b| inner.g[rx * self.n + b].total_cmp(&inner.g[rx * self.n + a]));
        ids.truncate(k);
        ids
    }

    /// Sum of gains into `rx` from every other station — the receiver's
    /// exposure if everyone transmitted at unit power simultaneously.
    pub fn total_exposure(&self, rx: StationId) -> f64 {
        let inner = self.inner.read().unwrap();
        (0..self.n)
            .filter(|&j| j != rx)
            .map(|j| inner.g[rx * self.n + j])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::FreeSpace;

    fn line_positions() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
        ]
    }

    #[test]
    fn build_and_access() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        assert_eq!(m.len(), 3);
        assert!((m.gain(0, 1).value() - 0.01).abs() < 1e-15);
        assert!((m.gain(0, 2).value() - 1.0 / 900.0).abs() < 1e-15);
        assert_eq!(m.gain(1, 1), Gain::ZERO, "self-path is zero");
    }

    #[test]
    fn symmetry_for_isotropic_model() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.gain(i, j), m.gain(j, i));
            }
        }
    }

    #[test]
    fn hearable_threshold() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        // Station 0: gain from 1 is 0.01, from 2 is ~0.0011.
        assert_eq!(m.hearable_by(0, Gain(0.005)), vec![1]);
        assert_eq!(m.hearable_by(0, Gain(0.0005)), vec![1, 2]);
        assert!(m.hearable_by(0, Gain(0.5)).is_empty());
    }

    #[test]
    fn strongest_neighbors_sorted() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        assert_eq!(m.strongest_neighbors(2, 2), vec![1, 0]);
        assert_eq!(m.strongest_neighbors(2, 1), vec![1]);
        assert_eq!(m.strongest_neighbors(2, 10).len(), 2);
    }

    #[test]
    fn total_exposure_sums() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        let e = m.total_exposure(0);
        assert!((e - (0.01 + 1.0 / 900.0)).abs() < 1e-15);
    }

    #[test]
    fn from_raw_round_trip() {
        let m = GainMatrix::from_raw(2, vec![0.0, 0.5, 0.25, 0.0]);
        assert_eq!(m.gain(0, 1).value(), 0.5);
        assert_eq!(m.gain(1, 0).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_raw_checks_size() {
        GainMatrix::from_raw(2, vec![0.0; 3]);
    }

    #[test]
    fn strongest_neighbors_handles_colocated_stations() {
        // Two stations on top of each other (and of the receiver): the
        // degenerate zero-distance placement must not panic and must keep
        // a deterministic order.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
        ];
        let m = GainMatrix::build(&pts, &FreeSpace::unit());
        let ids = m.strongest_neighbors(0, 4);
        assert_eq!(ids.len(), 3);
        // Co-located stations 1 and 2 tie at the r_min-clamped gain and
        // beat the 5 m station; the stable sort keeps 1 before 2.
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn strongest_neighbors_tolerates_nan_gains() {
        let mut g = vec![0.0; 9];
        g[1] = f64::NAN; // gain(rx=0, tx=1)
        g[2] = 0.5; // gain(rx=0, tx=2)
        let m = GainMatrix::from_raw(3, g);
        // total_cmp orders NaN above every finite value in descending
        // order, so the call completes instead of panicking.
        let ids = m.strongest_neighbors(0, 2);
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&2));
    }

    #[test]
    fn asymmetric_models_use_the_ordered_pair_path() {
        #[derive(Debug)]
        struct EastWind;
        impl Propagation for EastWind {
            fn power_gain(&self, tx: Point, rx: Point) -> Gain {
                let r = tx.distance(rx).max(1.0);
                // Links pointing east are 10x stronger: direction-dependent.
                let boost = if rx.x > tx.x { 10.0 } else { 1.0 };
                Gain(boost / (r * r))
            }
            fn is_symmetric(&self) -> bool {
                false
            }
        }
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let m = GainMatrix::build(&pts, &EastWind);
        assert!((m.gain(1, 0).value() - 0.1).abs() < 1e-15);
        assert!((m.gain(0, 1).value() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn relocate_matches_fresh_build_bit_for_bit() {
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(-5.0, 12.0),
        ];
        let m = GainMatrix::build_shared(&pts, Arc::new(FreeSpace::unit()));
        pts[1] = Point::new(4.0, -9.0);
        m.relocate(1, pts[1]);
        pts[3] = Point::new(25.0, 25.0);
        m.relocate(3, pts[3]);
        let fresh = GainMatrix::build(&pts, &FreeSpace::unit());
        for (i, &p) in pts.iter().enumerate() {
            for j in 0..4 {
                assert_eq!(m.gain(i, j), fresh.gain(i, j), "({}, {})", i, j);
            }
            assert_eq!(m.position(i), p);
        }
    }

    #[test]
    #[should_panic(expected = "build_shared")]
    fn relocate_requires_a_shared_model() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        m.relocate(0, Point::new(1.0, 1.0));
    }

    #[test]
    fn symmetric_build_matches_ordered_build() {
        // Force the ordered-pair path via an is_symmetric() = false
        // wrapper around the same model; entries must be identical.
        #[derive(Debug)]
        struct NotSymmetric(FreeSpace);
        impl Propagation for NotSymmetric {
            fn power_gain(&self, tx: Point, rx: Point) -> Gain {
                self.0.power_gain(tx, rx)
            }
            fn is_symmetric(&self) -> bool {
                false
            }
        }
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(-7.0, 2.0),
            Point::new(11.0, -5.0),
        ];
        let fast = GainMatrix::build(&pts, &FreeSpace::unit());
        let slow = GainMatrix::build(&pts, &NotSymmetric(FreeSpace::unit()));
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(fast.gain(i, j), slow.gain(i, j));
            }
        }
    }
}
