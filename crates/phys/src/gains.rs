//! The propagation matrix `H` (stored as power gains `g_ij = h_ij²`).
//!
//! In a real network "stations may observe the actual propagation between
//! stations that are capable of direct communication" (§3.5); in the
//! simulator we precompute the full matrix from a placement and a
//! propagation model. Routing (§6.2) and neighbour discovery read it.

use crate::geom::Point;
use crate::propagation::Propagation;
use crate::units::Gain;

/// Index of a station.
pub type StationId = usize;

/// Dense matrix of pairwise power gains.
///
/// `g(i, j)` is the power gain from transmitter `j` to receiver `i`
/// (paper's `h_ij²` indexing: first index is the receiver). For our
/// isotropic models the matrix is symmetric, but the API keeps the
/// receiver-first convention so directional models could drop in.
#[derive(Clone, Debug)]
pub struct GainMatrix {
    n: usize,
    g: Vec<f64>,
    positions: Vec<Point>,
}

impl GainMatrix {
    /// Build from station positions and a propagation model.
    /// Self-paths `g(i, i)` are stored as zero: a station's own transmitter
    /// is handled specially (Type 3 collisions, §5).
    pub fn build<P: Propagation>(positions: &[Point], model: &P) -> GainMatrix {
        let n = positions.len();
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g[i * n + j] = model.power_gain(positions[j], positions[i]).value();
                }
            }
        }
        GainMatrix {
            n,
            g,
            positions: positions.to_vec(),
        }
    }

    /// Build directly from an explicit gain table (row-major,
    /// receiver-first). Positions default to the origin; useful in tests.
    pub fn from_raw(n: usize, g: Vec<f64>) -> GainMatrix {
        assert_eq!(g.len(), n * n, "gain table size mismatch");
        GainMatrix {
            n,
            g,
            positions: vec![Point::ORIGIN; n],
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no stations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Power gain from transmitter `tx` to receiver `rx`.
    #[inline]
    pub fn gain(&self, rx: StationId, tx: StationId) -> Gain {
        Gain(self.g[rx * self.n + tx])
    }

    /// Station positions (as built).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Position of one station.
    pub fn position(&self, id: StationId) -> Point {
        self.positions[id]
    }

    /// All stations whose path gain *to* `rx` is at least `threshold` —
    /// the stations `rx` can plausibly hear directly.
    pub fn hearable_by(&self, rx: StationId, threshold: Gain) -> Vec<StationId> {
        (0..self.n)
            .filter(|&tx| tx != rx && self.gain(rx, tx) >= threshold)
            .collect()
    }

    /// The strongest `k` paths into `rx`, best first.
    pub fn strongest_neighbors(&self, rx: StationId, k: usize) -> Vec<StationId> {
        let mut ids: Vec<StationId> =
            (0..self.n).filter(|&j| j != rx).collect();
        ids.sort_by(|&a, &b| {
            self.gain(rx, b)
                .value()
                .partial_cmp(&self.gain(rx, a).value())
                .expect("NaN gain")
        });
        ids.truncate(k);
        ids
    }

    /// Sum of gains into `rx` from every other station — the receiver's
    /// exposure if everyone transmitted at unit power simultaneously.
    pub fn total_exposure(&self, rx: StationId) -> f64 {
        (0..self.n)
            .filter(|&j| j != rx)
            .map(|j| self.gain(rx, j).value())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::FreeSpace;

    fn line_positions() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(30.0, 0.0),
        ]
    }

    #[test]
    fn build_and_access() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        assert_eq!(m.len(), 3);
        assert!((m.gain(0, 1).value() - 0.01).abs() < 1e-15);
        assert!((m.gain(0, 2).value() - 1.0 / 900.0).abs() < 1e-15);
        assert_eq!(m.gain(1, 1), Gain::ZERO, "self-path is zero");
    }

    #[test]
    fn symmetry_for_isotropic_model() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.gain(i, j), m.gain(j, i));
            }
        }
    }

    #[test]
    fn hearable_threshold() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        // Station 0: gain from 1 is 0.01, from 2 is ~0.0011.
        assert_eq!(m.hearable_by(0, Gain(0.005)), vec![1]);
        assert_eq!(m.hearable_by(0, Gain(0.0005)), vec![1, 2]);
        assert!(m.hearable_by(0, Gain(0.5)).is_empty());
    }

    #[test]
    fn strongest_neighbors_sorted() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        assert_eq!(m.strongest_neighbors(2, 2), vec![1, 0]);
        assert_eq!(m.strongest_neighbors(2, 1), vec![1]);
        assert_eq!(m.strongest_neighbors(2, 10).len(), 2);
    }

    #[test]
    fn total_exposure_sums() {
        let m = GainMatrix::build(&line_positions(), &FreeSpace::unit());
        let e = m.total_exposure(0);
        assert!((e - (0.01 + 1.0 / 900.0)).abs() < 1e-15);
    }

    #[test]
    fn from_raw_round_trip() {
        let m = GainMatrix::from_raw(2, vec![0.0, 0.5, 0.25, 0.0]);
        assert_eq!(m.gain(0, 1).value(), 0.5);
        assert_eq!(m.gain(1, 0).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_raw_checks_size() {
        GainMatrix::from_raw(2, vec![0.0; 3]);
    }
}
