//! Fault injection and healing policy.
//!
//! Shepard's target network is *anarchic* — stations bought and installed
//! by users, with no operator to keep them alive — so the simulator must
//! model stations dying, rebooting with amnesia, glitching clocks, and
//! being jammed. A [`FaultPlan`] is a deterministic, fully serializable
//! script of such events; [`HealConfig`] selects how the network routes
//! around them: an omniscient [`HealMode::Oracle`] (the pre-fault-aware
//! behavior, kept for comparison) or protocol-level [`HealMode::Local`]
//! detection (consecutive hop failures → suspicion → eviction → local
//! route repair → re-admission when the neighbor is heard again).
//!
//! Plans are data, not RNG draws inside the simulator: the same plan
//! produces the same injections on every PHY backend, and
//! `NetConfig::to_json` embeds the whole plan so a `BENCH_*.json`
//! artifact is reproducible from its own provenance.

use parn_phys::PowerW;
use parn_sim::json::{obj, Json};
use parn_sim::{Duration, Rng};

/// What kind of fault strikes a station.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Permanent crash-stop: the station goes dark and never returns.
    Crash,
    /// Crash followed by a reboot `down_for` later. The station rejoins
    /// with a *fresh* clock and schedule (reboot loses all volatile
    /// state), so neighbors must re-learn it.
    CrashRecover {
        /// How long the station stays dark before rebooting.
        down_for: Duration,
    },
    /// An instantaneous discontinuity in the station's local clock
    /// (`ticks` may be negative). The station rebuilds its own schedule
    /// and re-anchors its clock models; its *neighbors'* models of it go
    /// stale — that staleness is the injected fault.
    ClockJump {
        /// Signed jump applied to the station's clock offset, in ticks.
        ticks: i64,
    },
    /// A jammer anchored at the station's position radiates `power` for
    /// `for_`, injected into the SINR tracker as an extra transmitter.
    /// Losses it causes classify as [`crate::LossCause::Jammed`], not as
    /// protocol collisions.
    Jam {
        /// Jammer window length.
        for_: Duration,
        /// Jammer radiated power.
        power: PowerW,
    },
}

impl FaultKind {
    /// Short machine-readable tag (used in traces and JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::CrashRecover { .. } => "crash_recover",
            FaultKind::ClockJump { .. } => "clock_jump",
            FaultKind::Jam { .. } => "jam",
        }
    }
}

/// One scheduled fault: `kind` strikes `station` at `at` (simulation
/// time, relative to the start of the run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Duration,
    /// The afflicted station (for [`FaultKind::Jam`], the anchor
    /// position of the jammer).
    pub station: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of fault injections.
///
/// Build one explicitly with the chainable constructors, from legacy
/// `(time, station)` crash pairs via [`FaultPlan::crashes`], or
/// pseudo-randomly (but reproducibly) via [`FaultPlan::generate`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in authored order (the simulator's event
    /// queue orders them by time with deterministic FIFO tie-breaking).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults — the default).
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Append an arbitrary fault event.
    pub fn with(mut self, at: Duration, station: usize, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, station, kind });
        self
    }

    /// Append a permanent crash-stop.
    pub fn crash(self, at: Duration, station: usize) -> FaultPlan {
        self.with(at, station, FaultKind::Crash)
    }

    /// Append a crash that reboots `down_for` later.
    pub fn crash_recover(self, at: Duration, station: usize, down_for: Duration) -> FaultPlan {
        self.with(at, station, FaultKind::CrashRecover { down_for })
    }

    /// Append a clock discontinuity.
    pub fn clock_jump(self, at: Duration, station: usize, ticks: i64) -> FaultPlan {
        self.with(at, station, FaultKind::ClockJump { ticks })
    }

    /// Append a jammer window anchored at `station`.
    pub fn jam(self, at: Duration, station: usize, for_: Duration, power: PowerW) -> FaultPlan {
        self.with(at, station, FaultKind::Jam { for_, power })
    }

    /// Plan of permanent crashes from `(time, station)` pairs — the shape
    /// of the old `NetConfig::failures` field.
    pub fn crashes(pairs: impl IntoIterator<Item = (Duration, usize)>) -> FaultPlan {
        FaultPlan {
            events: pairs
                .into_iter()
                .map(|(at, station)| FaultEvent {
                    at,
                    station,
                    kind: FaultKind::Crash,
                })
                .collect(),
        }
    }

    /// Generate a reproducible pseudo-random plan of `count` faults over
    /// `n` stations within `(0, horizon)`.
    ///
    /// Mix: ~½ crash-recover (down 2–25 % of the horizon), ~¼ permanent
    /// crashes, ~⅛ clock jumps (±½ slot … ±50 slots at the default
    /// 100 ns tick), ~⅛ jammer windows (1–10 % of the horizon, 1–10 mW).
    /// Deterministic in `(seed, n, count, horizon)` and independent of
    /// every other RNG stream in the simulator.
    pub fn generate(seed: u64, n: usize, count: usize, horizon: Duration) -> FaultPlan {
        let mut rng = Rng::new(seed).substream("faultplan");
        let mut plan = FaultPlan::none();
        let h = horizon.as_secs_f64();
        for _ in 0..count {
            let at = Duration::from_secs_f64(rng.range_f64(0.05, 0.95) * h);
            let station = rng.below(n as u64) as usize;
            let kind = match rng.below(8) {
                0..=3 => FaultKind::CrashRecover {
                    down_for: Duration::from_secs_f64(rng.range_f64(0.02, 0.25) * h),
                },
                4 | 5 => FaultKind::Crash,
                6 => FaultKind::ClockJump {
                    // ±(½ … 50) slots at the paper's 10 ms slot / 100 ns tick.
                    ticks: {
                        let mag = rng.range_f64(5e4, 5e6);
                        if rng.below(2) == 0 {
                            mag as i64
                        } else {
                            -(mag as i64)
                        }
                    },
                },
                _ => FaultKind::Jam {
                    for_: Duration::from_secs_f64(rng.range_f64(0.01, 0.10) * h),
                    power: PowerW(rng.range_f64(1e-3, 1e-2)),
                },
            };
            plan = plan.with(at, station, kind);
        }
        plan
    }

    /// Check the plan against a network of `n` stations: every station
    /// index in range, every duration positive.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if ev.station >= n {
                return Err(format!(
                    "fault #{i}: station {} out of range (n = {n})",
                    ev.station
                ));
            }
            match ev.kind {
                FaultKind::CrashRecover { down_for } if down_for == Duration::ZERO => {
                    return Err(format!("fault #{i}: zero down interval"));
                }
                FaultKind::Jam { for_, power } => {
                    if for_ == Duration::ZERO {
                        return Err(format!("fault #{i}: zero jam window"));
                    }
                    if power.0 <= 0.0 || power.0.is_nan() {
                        return Err(format!("fault #{i}: non-positive jam power"));
                    }
                }
                FaultKind::ClockJump { ticks: 0 } => {
                    return Err(format!("fault #{i}: zero clock jump"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Full plan as JSON (array of event objects) — embedded into
    /// `NetConfig::to_json` so artifacts carry their exact fault script.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.events
                .iter()
                .map(|ev| {
                    let mut fields: Vec<(String, Json)> = vec![
                        ("at_s".into(), Json::from(ev.at.as_secs_f64())),
                        ("station".into(), Json::from(ev.station as u64)),
                        ("kind".into(), Json::from(ev.kind.tag())),
                    ];
                    match ev.kind {
                        FaultKind::Crash => {}
                        FaultKind::CrashRecover { down_for } => {
                            fields.push(("down_for_s".into(), down_for.as_secs_f64().into()));
                        }
                        FaultKind::ClockJump { ticks } => {
                            fields.push(("ticks".into(), Json::Int(ticks)));
                        }
                        FaultKind::Jam { for_, power } => {
                            fields.push(("for_s".into(), for_.as_secs_f64().into()));
                            fields.push(("power_w".into(), power.0.into()));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }
}

/// How the network heals around faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealMode {
    /// Omniscient healing: a global route rebuild fires a fixed delay
    /// after each crash or recovery, standing in for an idealized
    /// distributed Bellman–Ford reconvergence. Failed hops retry
    /// immediately. This is the pre-existing behavior, kept as the
    /// comparison upper bound.
    Oracle,
    /// Protocol-level healing: each station tracks per-neighbor liveness
    /// from its own hop outcomes (implicit acks), suspects a neighbor
    /// after consecutive failures, evicts it after a timeout, repairs
    /// routes around evicted stations, backs off retransmissions with
    /// capped randomized delays, and re-admits a neighbor the moment it
    /// is heard again.
    Local,
}

/// Healing policy and its tunables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealConfig {
    /// Detection/repair mode.
    pub mode: HealMode,
    /// [`HealMode::Oracle`]: delay between a crash (or recovery) and the
    /// global route rebuild.
    pub oracle_delay: Duration,
    /// [`HealMode::Local`]: consecutive failed hop attempts to a
    /// neighbor before it becomes *suspected*.
    pub suspect_after: u32,
    /// [`HealMode::Local`]: a suspected neighbor that keeps failing for
    /// this long is *evicted* from the routing view.
    pub evict_timeout: Duration,
    /// [`HealMode::Local`]: base delay of the capped binary-exponential
    /// retransmission backoff.
    pub backoff_base: Duration,
    /// [`HealMode::Local`]: backoff cap.
    pub backoff_cap: Duration,
}

impl HealConfig {
    /// Oracle healing with the paper-era 500 ms reconvergence stand-in.
    pub fn oracle() -> HealConfig {
        HealConfig {
            mode: HealMode::Oracle,
            oracle_delay: Duration::from_millis(500),
            suspect_after: 3,
            evict_timeout: Duration::from_millis(150),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(160),
        }
    }

    /// Local (protocol-level) healing with default timings: suspect
    /// after 3 consecutive failures, evict 150 ms later, back off
    /// 10 ms·2ᵏ capped at 160 ms with ±50 % jitter.
    pub fn local() -> HealConfig {
        HealConfig {
            mode: HealMode::Local,
            ..HealConfig::oracle()
        }
    }

    /// Provenance JSON for `NetConfig::to_json`.
    pub fn to_json(&self) -> Json {
        obj([
            (
                "mode",
                match self.mode {
                    HealMode::Oracle => "oracle",
                    HealMode::Local => "local",
                }
                .into(),
            ),
            ("oracle_delay_s", self.oracle_delay.as_secs_f64().into()),
            ("suspect_after", u64::from(self.suspect_after).into()),
            ("evict_timeout_s", self.evict_timeout.as_secs_f64().into()),
            ("backoff_base_s", self.backoff_base.as_secs_f64().into()),
            ("backoff_cap_s", self.backoff_cap.as_secs_f64().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = FaultPlan::none()
            .crash(Duration::from_secs(1), 3)
            .crash_recover(Duration::from_secs(2), 4, Duration::from_secs(1))
            .clock_jump(Duration::from_secs(3), 5, -100)
            .jam(
                Duration::from_secs(4),
                6,
                Duration::from_millis(500),
                PowerW(0.01),
            );
        assert_eq!(p.len(), 4);
        assert!(p.validate(10).is_ok());
        assert!(p.validate(5).is_err()); // stations 5 and 6 out of range
    }

    #[test]
    fn crashes_matches_legacy_shape() {
        let p = FaultPlan::crashes([(Duration::from_secs(4), 3), (Duration::from_secs(4), 11)]);
        assert_eq!(p.len(), 2);
        assert!(p
            .events
            .iter()
            .all(|ev| matches!(ev.kind, FaultKind::Crash)));
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let a = FaultPlan::generate(7, 40, 12, Duration::from_secs(10));
        let b = FaultPlan::generate(7, 40, 12, Duration::from_secs(10));
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.validate(40).is_ok());
        let c = FaultPlan::generate(8, 40, 12, Duration::from_secs(10));
        assert_ne!(a, c);
    }

    #[test]
    fn validate_rejects_degenerate_events() {
        let zero_down = FaultPlan::none().crash_recover(Duration::from_secs(1), 0, Duration::ZERO);
        assert!(zero_down.validate(4).is_err());
        let zero_jump = FaultPlan::none().clock_jump(Duration::from_secs(1), 0, 0);
        assert!(zero_jump.validate(4).is_err());
        let dud_jam = FaultPlan::none().jam(
            Duration::from_secs(1),
            0,
            Duration::from_secs(1),
            PowerW(0.0),
        );
        assert!(dud_jam.validate(4).is_err());
    }

    #[test]
    fn plan_json_carries_every_field() {
        let p = FaultPlan::none()
            .crash_recover(Duration::from_secs(2), 4, Duration::from_secs(1))
            .jam(
                Duration::from_secs(4),
                6,
                Duration::from_millis(500),
                PowerW(0.01),
            );
        let s = p.to_json().to_string();
        assert!(s.contains("crash_recover"), "{s}");
        assert!(s.contains("down_for_s"), "{s}");
        assert!(s.contains("power_w"), "{s}");
    }

    #[test]
    fn heal_config_json_names_mode() {
        assert!(HealConfig::oracle()
            .to_json()
            .to_string()
            .contains("oracle"));
        assert!(HealConfig::local().to_json().to_string().contains("local"));
    }
}
