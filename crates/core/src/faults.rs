//! Fault injection and healing policy.
//!
//! Shepard's target network is *anarchic* — stations bought and installed
//! by users, with no operator to keep them alive — so the simulator must
//! model stations dying, rebooting with amnesia, glitching clocks, and
//! being jammed. A [`FaultPlan`] is a deterministic, fully serializable
//! script of such events; [`HealConfig`] selects how the network routes
//! around them: an omniscient [`HealMode::Oracle`] (the pre-fault-aware
//! behavior, kept for comparison) or protocol-level [`HealMode::Local`]
//! detection (consecutive hop failures → suspicion → eviction → local
//! route repair → re-admission when the neighbor is heard again).
//!
//! Plans are data, not RNG draws inside the simulator: the same plan
//! produces the same injections on every PHY backend, and
//! `NetConfig::to_json` embeds the whole plan so a `BENCH_*.json`
//! artifact is reproducible from its own provenance.

use parn_phys::PowerW;
use parn_sim::json::{obj, Json};
use parn_sim::{Duration, Rng};

pub use parn_phys::partition::CutAxis;

/// How a Byzantine station misbehaves (see [`FaultKind::Byzantine`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzMode {
    /// Schedule violator (§7.3 attack): the station transmits rogue
    /// bursts outside its published windows, colliding with receptions
    /// it is supposed to protect. Losses it causes classify as
    /// [`crate::LossCause::Violation`].
    Violator,
    /// Route poisoner: while the fault is active, every distance-vector
    /// advertisement the station sends claims zero-cost zero-hop routes
    /// to every destination — the classic black-hole attack on
    /// Bellman–Ford. Inert outside `RouteMode::Distributed`.
    Poisoner,
}

impl ByzMode {
    /// Short machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ByzMode::Violator => "violator",
            ByzMode::Poisoner => "poisoner",
        }
    }
}

/// What kind of fault strikes a station.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Permanent crash-stop: the station goes dark and never returns.
    Crash,
    /// Crash followed by a reboot `down_for` later. The station rejoins
    /// with a *fresh* clock and schedule (reboot loses all volatile
    /// state), so neighbors must re-learn it.
    CrashRecover {
        /// How long the station stays dark before rebooting.
        down_for: Duration,
    },
    /// An instantaneous discontinuity in the station's local clock
    /// (`ticks` may be negative). The station rebuilds its own schedule
    /// and re-anchors its clock models; its *neighbors'* models of it go
    /// stale — that staleness is the injected fault.
    ClockJump {
        /// Signed jump applied to the station's clock offset, in ticks.
        ticks: i64,
    },
    /// A jammer anchored at the station's position radiates `power` for
    /// `for_`, injected into the SINR tracker as an extra transmitter.
    /// Losses it causes classify as [`crate::LossCause::Jammed`], not as
    /// protocol collisions.
    Jam {
        /// Jammer window length.
        for_: Duration,
        /// Jammer radiated power.
        power: PowerW,
    },
    /// A geographic partition: a shadowing transient along a straight
    /// cut that attenuates every link crossing it for `for_`, then
    /// lifts. Regions sever **without any station dying** — both sides
    /// keep their clocks, schedules and traffic; only cross-cut links
    /// fade. The `station` field of the event is ignored (the cut is a
    /// region, not a station).
    Partition {
        /// Orientation of the cut line.
        axis: CutAxis,
        /// Position of the line along its perpendicular axis (meters).
        offset: f64,
        /// Attenuation applied to severed links, in dB (> 0; applied as
        /// a power division).
        atten_db: f64,
        /// How long the partition lasts before healing.
        for_: Duration,
    },
    /// A Byzantine station: keeps running the protocol outwardly but
    /// misbehaves per `mode` for `for_` (see [`ByzMode`]).
    Byzantine {
        /// The misbehavior.
        mode: ByzMode,
        /// How long the station misbehaves before reverting.
        for_: Duration,
    },
    /// A budget-limited reactive jammer anchored near `station`: it
    /// senses ongoing data receptions and jams each one it can afford,
    /// spending air-time from `budget` subject to a `duty` cap (the
    /// (1−ε)-fraction adversary of the competitive-MAC literature). The
    /// fault stays armed until the budget is exhausted or the run ends.
    ReactiveJam {
        /// Total jam air-time the adversary may spend.
        budget: Duration,
        /// Maximum fraction of elapsed wall time spent jamming (0, 1].
        duty: f64,
    },
}

impl FaultKind {
    /// Short machine-readable tag (used in traces and JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::CrashRecover { .. } => "crash_recover",
            FaultKind::ClockJump { .. } => "clock_jump",
            FaultKind::Jam { .. } => "jam",
            FaultKind::Partition { .. } => "partition",
            FaultKind::Byzantine { .. } => "byzantine",
            FaultKind::ReactiveJam { .. } => "reactive_jam",
        }
    }
}

/// One scheduled fault: `kind` strikes `station` at `at` (simulation
/// time, relative to the start of the run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Duration,
    /// The afflicted station (for [`FaultKind::Jam`], the anchor
    /// position of the jammer).
    pub station: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of fault injections.
///
/// Build one explicitly with the chainable constructors, from legacy
/// `(time, station)` crash pairs via [`FaultPlan::crashes`], or
/// pseudo-randomly (but reproducibly) via [`FaultPlan::generate`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in authored order (the simulator's event
    /// queue orders them by time with deterministic FIFO tie-breaking).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults — the default).
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Append an arbitrary fault event.
    pub fn with(mut self, at: Duration, station: usize, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, station, kind });
        self
    }

    /// Append a permanent crash-stop.
    pub fn crash(self, at: Duration, station: usize) -> FaultPlan {
        self.with(at, station, FaultKind::Crash)
    }

    /// Append a crash that reboots `down_for` later.
    pub fn crash_recover(self, at: Duration, station: usize, down_for: Duration) -> FaultPlan {
        self.with(at, station, FaultKind::CrashRecover { down_for })
    }

    /// Append a clock discontinuity.
    pub fn clock_jump(self, at: Duration, station: usize, ticks: i64) -> FaultPlan {
        self.with(at, station, FaultKind::ClockJump { ticks })
    }

    /// Append a jammer window anchored at `station`.
    pub fn jam(self, at: Duration, station: usize, for_: Duration, power: PowerW) -> FaultPlan {
        self.with(at, station, FaultKind::Jam { for_, power })
    }

    /// Append a geographic partition along `axis = offset`, attenuating
    /// severed links by `atten_db` for `for_`. (The per-event station
    /// field is unused; 0 by convention.)
    pub fn partition(
        self,
        at: Duration,
        axis: CutAxis,
        offset: f64,
        atten_db: f64,
        for_: Duration,
    ) -> FaultPlan {
        self.with(
            at,
            0,
            FaultKind::Partition {
                axis,
                offset,
                atten_db,
                for_,
            },
        )
    }

    /// Append a Byzantine misbehavior window at `station`.
    pub fn byzantine(
        self,
        at: Duration,
        station: usize,
        mode: ByzMode,
        for_: Duration,
    ) -> FaultPlan {
        self.with(at, station, FaultKind::Byzantine { mode, for_ })
    }

    /// Append a budget-limited reactive jammer anchored at `station`.
    pub fn reactive_jam(
        self,
        at: Duration,
        station: usize,
        budget: Duration,
        duty: f64,
    ) -> FaultPlan {
        self.with(at, station, FaultKind::ReactiveJam { budget, duty })
    }

    /// Plan of permanent crashes from `(time, station)` pairs — the shape
    /// of the old `NetConfig::failures` field.
    pub fn crashes(pairs: impl IntoIterator<Item = (Duration, usize)>) -> FaultPlan {
        FaultPlan {
            events: pairs
                .into_iter()
                .map(|(at, station)| FaultEvent {
                    at,
                    station,
                    kind: FaultKind::Crash,
                })
                .collect(),
        }
    }

    /// Generate a reproducible pseudo-random plan of `count` faults over
    /// `n` stations within `(0, horizon)`.
    ///
    /// Mix: ~⁴⁄₁₁ crash-recover (down 2–25 % of the horizon), ~²⁄₁₁
    /// permanent crashes, and one eleventh each of: clock jumps (±½ slot
    /// … ±50 slots at the default 100 ns tick), jammer windows (1–10 %
    /// of the horizon, 1–10 mW), geographic partitions (a 20–60 dB cut
    /// through the paper-density disk, 5–25 % of the horizon), Byzantine
    /// stations (violator or poisoner, 5–25 % of the horizon), and
    /// reactive jammers (budget 1–5 % of the horizon, duty 0.2–0.8).
    /// Deterministic in `(seed, n, count, horizon)` and independent of
    /// every other RNG stream in the simulator.
    pub fn generate(seed: u64, n: usize, count: usize, horizon: Duration) -> FaultPlan {
        let mut rng = Rng::new(seed).substream("faultplan");
        let mut plan = FaultPlan::none();
        let h = horizon.as_secs_f64();
        // Paper-default deployment radius at ρ = 0.01 /m² — partition
        // offsets drawn inside the middle of the disk so the cut always
        // crosses populated area.
        let radius = (n as f64 / (std::f64::consts::PI * 0.01)).sqrt();
        for _ in 0..count {
            let at = Duration::from_secs_f64(rng.range_f64(0.05, 0.95) * h);
            let station = rng.below(n as u64) as usize;
            let kind = match rng.below(11) {
                0..=3 => FaultKind::CrashRecover {
                    down_for: Duration::from_secs_f64(rng.range_f64(0.02, 0.25) * h),
                },
                4 | 5 => FaultKind::Crash,
                6 => FaultKind::ClockJump {
                    // ±(½ … 50) slots at the paper's 10 ms slot / 100 ns tick.
                    ticks: {
                        let mag = rng.range_f64(5e4, 5e6);
                        if rng.below(2) == 0 {
                            mag as i64
                        } else {
                            -(mag as i64)
                        }
                    },
                },
                7 => FaultKind::Jam {
                    for_: Duration::from_secs_f64(rng.range_f64(0.01, 0.10) * h),
                    power: PowerW(rng.range_f64(1e-3, 1e-2)),
                },
                8 => FaultKind::Partition {
                    axis: if rng.below(2) == 0 {
                        CutAxis::Vertical
                    } else {
                        CutAxis::Horizontal
                    },
                    offset: rng.range_f64(-0.5, 0.5) * radius,
                    atten_db: rng.range_f64(20.0, 60.0),
                    for_: Duration::from_secs_f64(rng.range_f64(0.05, 0.25) * h),
                },
                9 => FaultKind::Byzantine {
                    mode: if rng.below(2) == 0 {
                        ByzMode::Violator
                    } else {
                        ByzMode::Poisoner
                    },
                    for_: Duration::from_secs_f64(rng.range_f64(0.05, 0.25) * h),
                },
                _ => FaultKind::ReactiveJam {
                    budget: Duration::from_secs_f64(rng.range_f64(0.01, 0.05) * h),
                    duty: rng.range_f64(0.2, 0.8),
                },
            };
            plan = plan.with(at, station, kind);
        }
        plan
    }

    /// Check the plan against a network of `n` stations: every station
    /// index in range, every duration positive.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if ev.station >= n {
                return Err(format!(
                    "fault #{i}: station {} out of range (n = {n})",
                    ev.station
                ));
            }
            match ev.kind {
                FaultKind::CrashRecover { down_for } if down_for == Duration::ZERO => {
                    return Err(format!("fault #{i}: zero down interval"));
                }
                FaultKind::Jam { for_, power } => {
                    if for_ == Duration::ZERO {
                        return Err(format!("fault #{i}: zero jam window"));
                    }
                    if power.0 <= 0.0 || power.0.is_nan() {
                        return Err(format!("fault #{i}: non-positive jam power"));
                    }
                }
                FaultKind::ClockJump { ticks: 0 } => {
                    return Err(format!("fault #{i}: zero clock jump"));
                }
                FaultKind::Partition {
                    offset,
                    atten_db,
                    for_,
                    ..
                } => {
                    if for_ == Duration::ZERO {
                        return Err(format!("fault #{i}: zero partition window"));
                    }
                    if !atten_db.is_finite() || atten_db <= 0.0 {
                        return Err(format!("fault #{i}: non-positive partition attenuation"));
                    }
                    if !offset.is_finite() {
                        return Err(format!("fault #{i}: non-finite partition offset"));
                    }
                }
                FaultKind::Byzantine { for_, .. } if for_ == Duration::ZERO => {
                    return Err(format!("fault #{i}: zero byzantine window"));
                }
                FaultKind::ReactiveJam { budget, duty } => {
                    if budget == Duration::ZERO {
                        return Err(format!("fault #{i}: zero reactive-jam budget"));
                    }
                    if !(duty > 0.0 && duty <= 1.0) {
                        return Err(format!("fault #{i}: reactive-jam duty outside (0, 1]"));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Full plan as JSON (array of event objects) — embedded into
    /// `NetConfig::to_json` so artifacts carry their exact fault script.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.events
                .iter()
                .map(|ev| {
                    let mut fields: Vec<(String, Json)> = vec![
                        ("at_s".into(), Json::from(ev.at.as_secs_f64())),
                        ("station".into(), Json::from(ev.station as u64)),
                        ("kind".into(), Json::from(ev.kind.tag())),
                    ];
                    match ev.kind {
                        FaultKind::Crash => {}
                        FaultKind::CrashRecover { down_for } => {
                            fields.push(("down_for_s".into(), down_for.as_secs_f64().into()));
                        }
                        FaultKind::ClockJump { ticks } => {
                            fields.push(("ticks".into(), Json::Int(ticks)));
                        }
                        FaultKind::Jam { for_, power } => {
                            fields.push(("for_s".into(), for_.as_secs_f64().into()));
                            fields.push(("power_w".into(), power.0.into()));
                        }
                        FaultKind::Partition {
                            axis,
                            offset,
                            atten_db,
                            for_,
                        } => {
                            fields.push((
                                "axis".into(),
                                match axis {
                                    CutAxis::Vertical => "vertical",
                                    CutAxis::Horizontal => "horizontal",
                                }
                                .into(),
                            ));
                            fields.push(("offset_m".into(), offset.into()));
                            fields.push(("atten_db".into(), atten_db.into()));
                            fields.push(("for_s".into(), for_.as_secs_f64().into()));
                        }
                        FaultKind::Byzantine { mode, for_ } => {
                            fields.push(("mode".into(), mode.tag().into()));
                            fields.push(("for_s".into(), for_.as_secs_f64().into()));
                        }
                        FaultKind::ReactiveJam { budget, duty } => {
                            fields.push(("budget_s".into(), budget.as_secs_f64().into()));
                            fields.push(("duty".into(), duty.into()));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }
}

/// How the network heals around faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealMode {
    /// Omniscient healing: a global route rebuild fires a fixed delay
    /// after each crash or recovery, standing in for an idealized
    /// distributed Bellman–Ford reconvergence. Failed hops retry
    /// immediately. This is the pre-existing behavior, kept as the
    /// comparison upper bound.
    Oracle,
    /// Protocol-level healing: each station tracks per-neighbor liveness
    /// from its own hop outcomes (implicit acks), suspects a neighbor
    /// after consecutive failures, evicts it after a timeout, repairs
    /// routes around evicted stations, backs off retransmissions with
    /// capped randomized delays, and re-admits a neighbor the moment it
    /// is heard again.
    Local,
}

/// Healing policy and its tunables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealConfig {
    /// Detection/repair mode.
    pub mode: HealMode,
    /// [`HealMode::Oracle`]: delay between a crash (or recovery) and the
    /// global route rebuild.
    pub oracle_delay: Duration,
    /// [`HealMode::Local`]: consecutive failed hop attempts to a
    /// neighbor before it becomes *suspected*.
    pub suspect_after: u32,
    /// [`HealMode::Local`]: a suspected neighbor that keeps failing for
    /// this long is *evicted* from the routing view.
    pub evict_timeout: Duration,
    /// [`HealMode::Local`]: base delay of the capped binary-exponential
    /// retransmission backoff.
    pub backoff_base: Duration,
    /// [`HealMode::Local`]: backoff cap.
    pub backoff_cap: Duration,
    /// [`HealMode::Local`]: enable flap damping — each eviction of a
    /// neighbor adds one point of penalty at the observer; while the
    /// exponentially decayed penalty is at or above
    /// [`HealConfig::flap_suppress`], readmission of that neighbor is
    /// suppressed (retried as the penalty decays). Stops an
    /// intermittent adversary (e.g. a reactive jammer) from driving
    /// suspect → evict → readmit oscillation. Off by default.
    pub flap_damping: bool,
    /// Penalty threshold at or above which readmission is suppressed.
    pub flap_suppress: f64,
    /// Exponential half-life of the flap penalty.
    pub flap_half_life: Duration,
}

impl HealConfig {
    /// Oracle healing with the paper-era 500 ms reconvergence stand-in.
    pub fn oracle() -> HealConfig {
        HealConfig {
            mode: HealMode::Oracle,
            oracle_delay: Duration::from_millis(500),
            suspect_after: 3,
            evict_timeout: Duration::from_millis(150),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(160),
            flap_damping: false,
            flap_suppress: 3.0,
            flap_half_life: Duration::from_secs(1),
        }
    }

    /// Local (protocol-level) healing with default timings: suspect
    /// after 3 consecutive failures, evict 150 ms later, back off
    /// 10 ms·2ᵏ capped at 160 ms with ±50 % jitter.
    pub fn local() -> HealConfig {
        HealConfig {
            mode: HealMode::Local,
            ..HealConfig::oracle()
        }
    }

    /// Provenance JSON for `NetConfig::to_json`.
    pub fn to_json(&self) -> Json {
        obj([
            (
                "mode",
                match self.mode {
                    HealMode::Oracle => "oracle",
                    HealMode::Local => "local",
                }
                .into(),
            ),
            ("oracle_delay_s", self.oracle_delay.as_secs_f64().into()),
            ("suspect_after", u64::from(self.suspect_after).into()),
            ("evict_timeout_s", self.evict_timeout.as_secs_f64().into()),
            ("backoff_base_s", self.backoff_base.as_secs_f64().into()),
            ("backoff_cap_s", self.backoff_cap.as_secs_f64().into()),
            ("flap_damping", self.flap_damping.into()),
            ("flap_suppress", self.flap_suppress.into()),
            ("flap_half_life_s", self.flap_half_life.as_secs_f64().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = FaultPlan::none()
            .crash(Duration::from_secs(1), 3)
            .crash_recover(Duration::from_secs(2), 4, Duration::from_secs(1))
            .clock_jump(Duration::from_secs(3), 5, -100)
            .jam(
                Duration::from_secs(4),
                6,
                Duration::from_millis(500),
                PowerW(0.01),
            );
        assert_eq!(p.len(), 4);
        assert!(p.validate(10).is_ok());
        assert!(p.validate(5).is_err()); // stations 5 and 6 out of range
    }

    #[test]
    fn crashes_matches_legacy_shape() {
        let p = FaultPlan::crashes([(Duration::from_secs(4), 3), (Duration::from_secs(4), 11)]);
        assert_eq!(p.len(), 2);
        assert!(p
            .events
            .iter()
            .all(|ev| matches!(ev.kind, FaultKind::Crash)));
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let a = FaultPlan::generate(7, 40, 12, Duration::from_secs(10));
        let b = FaultPlan::generate(7, 40, 12, Duration::from_secs(10));
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.validate(40).is_ok());
        let c = FaultPlan::generate(8, 40, 12, Duration::from_secs(10));
        assert_ne!(a, c);
    }

    #[test]
    fn validate_rejects_degenerate_events() {
        let zero_down = FaultPlan::none().crash_recover(Duration::from_secs(1), 0, Duration::ZERO);
        assert!(zero_down.validate(4).is_err());
        let zero_jump = FaultPlan::none().clock_jump(Duration::from_secs(1), 0, 0);
        assert!(zero_jump.validate(4).is_err());
        let dud_jam = FaultPlan::none().jam(
            Duration::from_secs(1),
            0,
            Duration::from_secs(1),
            PowerW(0.0),
        );
        assert!(dud_jam.validate(4).is_err());
    }

    #[test]
    fn plan_json_carries_every_field() {
        let p = FaultPlan::none()
            .crash_recover(Duration::from_secs(2), 4, Duration::from_secs(1))
            .jam(
                Duration::from_secs(4),
                6,
                Duration::from_millis(500),
                PowerW(0.01),
            );
        let s = p.to_json().to_string();
        assert!(s.contains("crash_recover"), "{s}");
        assert!(s.contains("down_for_s"), "{s}");
        assert!(s.contains("power_w"), "{s}");
    }

    #[test]
    fn adversarial_builders_validate_and_serialize() {
        let p = FaultPlan::none()
            .partition(
                Duration::from_secs(1),
                CutAxis::Vertical,
                3.5,
                40.0,
                Duration::from_secs(2),
            )
            .byzantine(
                Duration::from_secs(2),
                2,
                ByzMode::Violator,
                Duration::from_secs(1),
            )
            .byzantine(
                Duration::from_secs(2),
                3,
                ByzMode::Poisoner,
                Duration::from_secs(1),
            )
            .reactive_jam(Duration::from_secs(3), 1, Duration::from_millis(250), 0.5);
        assert_eq!(p.len(), 4);
        assert!(p.validate(5).is_ok());
        let s = p.to_json().to_string();
        assert!(s.contains("\"kind\":\"partition\""), "{s}");
        assert!(s.contains("\"axis\":\"vertical\""), "{s}");
        assert!(s.contains("\"atten_db\":40.0"), "{s}");
        assert!(s.contains("\"mode\":\"violator\""), "{s}");
        assert!(s.contains("\"mode\":\"poisoner\""), "{s}");
        assert!(s.contains("\"kind\":\"reactive_jam\""), "{s}");
        assert!(s.contains("\"budget_s\":0.25"), "{s}");
        assert!(s.contains("\"duty\":0.5"), "{s}");
    }

    #[test]
    fn validate_rejects_degenerate_adversarial_events() {
        let zero_window = FaultPlan::none().partition(
            Duration::from_secs(1),
            CutAxis::Horizontal,
            0.0,
            30.0,
            Duration::ZERO,
        );
        assert!(zero_window.validate(4).is_err());
        let dud_atten = FaultPlan::none().partition(
            Duration::from_secs(1),
            CutAxis::Horizontal,
            0.0,
            0.0,
            Duration::from_secs(1),
        );
        assert!(dud_atten.validate(4).is_err());
        let zero_byz = FaultPlan::none().byzantine(
            Duration::from_secs(1),
            0,
            ByzMode::Violator,
            Duration::ZERO,
        );
        assert!(zero_byz.validate(4).is_err());
        let dud_duty =
            FaultPlan::none().reactive_jam(Duration::from_secs(1), 0, Duration::from_secs(1), 0.0);
        assert!(dud_duty.validate(4).is_err());
        let no_budget =
            FaultPlan::none().reactive_jam(Duration::from_secs(1), 0, Duration::ZERO, 0.5);
        assert!(no_budget.validate(4).is_err());
    }

    #[test]
    fn generate_covers_the_adversarial_kinds() {
        // Over enough draws the widened mix must produce every kind.
        let p = FaultPlan::generate(11, 40, 200, Duration::from_secs(10));
        assert!(p.validate(40).is_ok());
        let has = |f: fn(&FaultKind) -> bool| p.events.iter().any(|ev| f(&ev.kind));
        assert!(has(|k| matches!(k, FaultKind::Partition { .. })));
        assert!(has(|k| matches!(k, FaultKind::Byzantine { .. })));
        assert!(has(|k| matches!(k, FaultKind::ReactiveJam { .. })));
        assert!(has(|k| matches!(k, FaultKind::Crash)));
    }

    #[test]
    fn heal_config_json_carries_flap_fields() {
        let mut h = HealConfig::local();
        h.flap_damping = true;
        let s = h.to_json().to_string();
        assert!(s.contains("\"flap_damping\":true"), "{s}");
        assert!(s.contains("\"flap_suppress\":3.0"), "{s}");
        assert!(s.contains("\"flap_half_life_s\":1.0"), "{s}");
    }

    #[test]
    fn heal_config_json_names_mode() {
        assert!(HealConfig::oracle()
            .to_json()
            .to_string()
            .contains("oracle"));
        assert!(HealConfig::local().to_json().to_string().contains("local"));
    }
}
