//! Per-station protocol state.
//!
//! A station owns its clock/schedule, its models of neighbours' clocks,
//! per-next-hop packet queues, and its transmitter commitments. The MAC
//! logic that manipulates this state lives in
//! [`network`](crate::network), which has the global view (gain matrix,
//! SINR tracker) a simulator needs; nothing in here lets a station peek at
//! state a real station could not hold.

use crate::packet::Packet;
use parn_phys::StationId;
use parn_sched::{RemoteClockModel, StationSchedule, Window};
use parn_sim::Time;
use std::collections::{BTreeMap, VecDeque};

/// Local liveness estimate of one neighbour (`HealMode::Local`): built
/// entirely from this station's own hop outcomes (implicit acks), never
/// from global state.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeighborHealth {
    /// Consecutive failed hop attempts to this neighbour (reset on any
    /// success).
    pub consecutive_failures: u32,
    /// When suspicion started (the failure that crossed the suspect
    /// threshold). `None` while the neighbour is in good standing.
    pub suspected_at: Option<Time>,
    /// Whether this station has evicted the neighbour from its routing
    /// view (cleared on re-admission).
    pub evicted: bool,
    /// Flap-damping penalty accrued by this neighbour: each eviction adds
    /// one point, and the score decays exponentially with the configured
    /// half-life. Readmission is suppressed while the decayed score stays
    /// at or above `HealConfig::flap_suppress`. Meaningful only when
    /// `HealConfig::flap_damping` is on (stays 0.0 otherwise).
    pub flap_penalty: f64,
    /// When `flap_penalty` was last updated (the decay reference point).
    pub flap_updated: Option<Time>,
}

/// A transmission the MAC has committed to.
#[derive(Clone, Debug)]
pub struct PlannedTx {
    /// Scheduled air start.
    pub start: Time,
    /// The neighbour addressed.
    pub next_hop: StationId,
    /// The packet to carry.
    pub packet: Packet,
}

/// One station's mutable protocol state.
#[derive(Debug)]
pub struct Station {
    /// Station id.
    pub id: StationId,
    /// Own schedule: the shared slot function reckoned by this station's
    /// clock.
    pub schedule: StationSchedule,
    /// Models of tracked neighbours' clocks (routing neighbours plus
    /// §7.3-protected close stations). BTreeMap for deterministic
    /// iteration.
    pub models: BTreeMap<StationId, RemoteClockModel>,
    /// Per-next-hop FIFO queues (no head-of-line blocking across
    /// neighbours: the MAC picks whichever queue can go earliest).
    pub queues: BTreeMap<StationId, VecDeque<Packet>>,
    /// Outstanding planned transmissions, keyed by start tick. Multiple
    /// plans let the transmitter stay busy across its transmit windows —
    /// the "no head-of-line blocking" behaviour behind §7.2's duty cycles.
    pub pending_tx: BTreeMap<u64, PlannedTx>,
    /// Future/ongoing transmitter commitments `[start, end)`, pruned as
    /// time passes. Used to keep plans from overlapping.
    pub reservations: Vec<(Time, Time)>,
    /// Despreading channels currently occupied by in-flight receptions.
    pub active_rx: usize,
    /// Routing neighbours (next hops this station uses).
    pub routing_neighbors: Vec<StationId>,
    /// Close stations whose receive windows this station must respect when
    /// transmitting at significant power (§7.3).
    pub protected: Vec<StationId>,
    /// Whether a MAC retry event is already scheduled (dedupes retries).
    pub retry_pending: bool,
    /// Per-packet transmit attempts for the head entries, keyed by packet
    /// id (cleared on success/drop).
    pub attempts: BTreeMap<u64, u32>,
    /// Per-neighbour liveness tracking for local failure detection
    /// (`HealMode::Local`). BTreeMap for deterministic iteration.
    pub liveness: BTreeMap<StationId, NeighborHealth>,
    /// Whether a triggered distance-vector update round is already
    /// scheduled (dedupes bursts of table changes into one round).
    pub update_pending: bool,
    /// When this station last heard each other station — directly (any
    /// reception or implicit ack) or through hello gossip. BTreeMap for
    /// deterministic iteration.
    pub last_heard: BTreeMap<StationId, Time>,
}

impl Station {
    /// Fresh station state.
    pub fn new(id: StationId, schedule: StationSchedule) -> Station {
        Station {
            id,
            schedule,
            models: BTreeMap::new(),
            queues: BTreeMap::new(),
            pending_tx: BTreeMap::new(),
            reservations: Vec::new(),
            active_rx: 0,
            routing_neighbors: Vec::new(),
            protected: Vec::new(),
            retry_pending: false,
            attempts: BTreeMap::new(),
            liveness: BTreeMap::new(),
            update_pending: false,
            last_heard: BTreeMap::new(),
        }
    }

    /// Enqueue a packet for a next hop.
    pub fn enqueue(&mut self, next_hop: StationId, mut packet: Packet, now: Time) {
        packet.enqueued = now;
        self.queues.entry(next_hop).or_default().push_back(packet);
    }

    /// Total queued packets (excluding any pending transmission).
    pub fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// True when there is nothing to send and nothing planned.
    pub fn idle(&self) -> bool {
        self.pending_tx.is_empty() && self.queued() == 0
    }

    /// Drop reservations that ended at or before `now`.
    pub fn prune_reservations(&mut self, now: Time) {
        self.reservations.retain(|&(_, end)| end > now);
    }

    /// Whether `[start, start+len)` overlaps any reservation.
    pub fn conflicts_with_reservation(&self, start: Time, end: Time) -> bool {
        self.reservations.iter().any(|&(s, e)| start < e && s < end)
    }

    /// Remove reserved intervals from a sorted window list (both lists in
    /// global time). Returns the usable remainder.
    pub fn subtract_reservations(&self, windows: &[Window]) -> Vec<Window> {
        let mut out = Vec::new();
        for &w in windows {
            let mut cur = w;
            // Reservations are few; scan them all.
            let mut cuts: Vec<(Time, Time)> = self
                .reservations
                .iter()
                .copied()
                .filter(|&(s, e)| s < cur.end && cur.start < e)
                .collect();
            cuts.sort();
            for (s, e) in cuts {
                if s > cur.start {
                    out.push(Window::new(cur.start, s.min(cur.end)));
                }
                if e >= cur.end {
                    cur = Window::new(cur.end, cur.end); // fully consumed
                    break;
                }
                cur = Window::new(e.max(cur.start), cur.end);
            }
            if !cur.is_empty() {
                out.push(cur);
            }
        }
        out.retain(|w| !w.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parn_sched::{SchedParams, StationClock};

    fn station() -> Station {
        Station::new(
            0,
            StationSchedule::new(SchedParams::paper_default(), StationClock::ideal()),
        )
    }

    fn pkt(id: u64) -> Packet {
        Packet::new(id, 0, 5, Time::ZERO)
    }

    #[test]
    fn enqueue_and_count() {
        let mut s = station();
        assert!(s.idle());
        s.enqueue(1, pkt(1), Time(5));
        s.enqueue(1, pkt(2), Time(6));
        s.enqueue(2, pkt(3), Time(7));
        assert_eq!(s.queued(), 3);
        assert!(!s.idle());
        assert_eq!(s.queues[&1].len(), 2);
        assert_eq!(s.queues[&1][0].enqueued, Time(5));
    }

    #[test]
    fn reservation_pruning_and_conflicts() {
        let mut s = station();
        s.reservations.push((Time(10), Time(20)));
        s.reservations.push((Time(30), Time(40)));
        assert!(s.conflicts_with_reservation(Time(15), Time(18)));
        assert!(s.conflicts_with_reservation(Time(19), Time(31)));
        assert!(!s.conflicts_with_reservation(Time(20), Time(30)));
        s.prune_reservations(Time(25));
        assert_eq!(s.reservations, vec![(Time(30), Time(40))]);
        s.prune_reservations(Time(40));
        assert!(s.reservations.is_empty());
    }

    #[test]
    fn subtract_reservations_cuts_windows() {
        let mut s = station();
        s.reservations.push((Time(10), Time(20)));
        let ws = vec![Window::new(Time(0), Time(30))];
        let out = s.subtract_reservations(&ws);
        assert_eq!(
            out,
            vec![
                Window::new(Time(0), Time(10)),
                Window::new(Time(20), Time(30))
            ]
        );
    }

    #[test]
    fn subtract_reservations_edge_cases() {
        let mut s = station();
        // Reservation covering a whole window.
        s.reservations.push((Time(0), Time(50)));
        let out = s.subtract_reservations(&[Window::new(Time(10), Time(40))]);
        assert!(out.is_empty());
        // Reservation overlapping only the start.
        s.reservations = vec![(Time(0), Time(15))];
        let out = s.subtract_reservations(&[Window::new(Time(10), Time(40))]);
        assert_eq!(out, vec![Window::new(Time(15), Time(40))]);
        // Two reservations inside one window.
        s.reservations = vec![(Time(12), Time(14)), (Time(20), Time(22))];
        let out = s.subtract_reservations(&[Window::new(Time(10), Time(30))]);
        assert_eq!(
            out,
            vec![
                Window::new(Time(10), Time(12)),
                Window::new(Time(14), Time(20)),
                Window::new(Time(22), Time(30))
            ]
        );
    }

    #[test]
    fn no_reservations_passthrough() {
        let s = station();
        let ws = vec![Window::new(Time(5), Time(9))];
        assert_eq!(s.subtract_reservations(&ws), ws);
    }
}
