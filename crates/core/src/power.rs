//! Transmit power control (paper §6.1).
//!
//! "Transmit with sufficient power to deliver a constant pre-determined
//! amount of power to the intended receiver." The delivered level is not
//! critical — scaling all powers scales all interference equally — but
//! fixing it reduces SINR variance and automatically adapts to density
//! (denser area ⇒ closer neighbours ⇒ lower powers ⇒ constant power
//! density).

use parn_phys::{Gain, PowerW};

/// A power-control policy.
#[derive(Clone, Copy, Debug)]
pub enum PowerPolicy {
    /// The paper's scheme: deliver `target` at the intended receiver,
    /// subject to a transmitter ceiling.
    Controlled {
        /// Power to deliver at the receiver.
        target: PowerW,
        /// Transmitter maximum.
        max: PowerW,
    },
    /// No power control: always transmit at a fixed power (the baseline
    /// assumption of §4's analysis and of the ablation A1).
    Fixed(PowerW),
}

impl PowerPolicy {
    /// The transmit power to use over a path with the given power gain.
    pub fn tx_power(&self, path_gain: Gain) -> PowerW {
        match *self {
            PowerPolicy::Controlled { target, max } => {
                debug_assert!(path_gain.value() > 0.0, "powering a dead path");
                let p = target.value() / path_gain.value();
                PowerW(p.min(max.value()))
            }
            PowerPolicy::Fixed(p) => p,
        }
    }

    /// The power that will actually arrive at the receiver.
    pub fn delivered(&self, path_gain: Gain) -> PowerW {
        path_gain.apply(self.tx_power(path_gain))
    }

    /// Whether the path can receive the full target (i.e. the ceiling does
    /// not bind). Always true for `Fixed`.
    pub fn full_delivery(&self, path_gain: Gain) -> bool {
        match *self {
            PowerPolicy::Controlled { target, max } => {
                target.value() <= max.value() * path_gain.value()
            }
            PowerPolicy::Fixed(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlled_inverts_gain() {
        let p = PowerPolicy::Controlled {
            target: PowerW(1e-6),
            max: PowerW(10.0),
        };
        let g = Gain(1e-4);
        assert!((p.tx_power(g).value() - 1e-2).abs() < 1e-15);
        assert!((p.delivered(g).value() - 1e-6).abs() < 1e-18);
        assert!(p.full_delivery(g));
    }

    #[test]
    fn ceiling_binds_on_weak_paths() {
        let p = PowerPolicy::Controlled {
            target: PowerW(1e-6),
            max: PowerW(0.001),
        };
        let weak = Gain(1e-12);
        assert_eq!(p.tx_power(weak), PowerW(0.001));
        assert!(!p.full_delivery(weak));
        assert!(p.delivered(weak).value() < 1e-6);
    }

    #[test]
    fn constant_delivery_across_distances() {
        // §6.1: quadrupled density ⇒ half distance ⇒ quarter power, same
        // delivered level.
        let p = PowerPolicy::Controlled {
            target: PowerW(1e-6),
            max: PowerW(10.0),
        };
        let near = Gain(4e-4); // twice as close = 4x gain
        let far = Gain(1e-4);
        assert!((p.tx_power(far).value() / p.tx_power(near).value() - 4.0).abs() < 1e-12);
        assert_eq!(p.delivered(near), p.delivered(far));
    }

    #[test]
    fn fixed_ignores_gain() {
        let p = PowerPolicy::Fixed(PowerW(0.5));
        assert_eq!(p.tx_power(Gain(1e-9)), PowerW(0.5));
        assert_eq!(p.tx_power(Gain(0.5)), PowerW(0.5));
        assert!(p.full_delivery(Gain(1e-12)));
        // Delivered varies with distance — the thing power control fixes.
        assert!(p.delivered(Gain(1e-9)).value() < p.delivered(Gain(0.5)).value());
    }
}
