//! Simulation configuration.
//!
//! One [`NetConfig`] describes a complete scenario: placement, radio
//! parameters, the schedule function, power control, routing thresholds,
//! traffic, and run length. Defaults follow the paper's running example
//! (§6–§7): free-space loss, ~20 dB processing gain, 5 dB margin,
//! `p = 0.3`, quarter-slot packets, minimum-energy routing.

use crate::faults::{FaultPlan, HealConfig};
use crate::mobility::{ChurnPlan, MobilityConfig};
use parn_phys::placement::Placement;
use parn_phys::{PowerW, ReceptionCriterion};
use parn_sched::SchedParams;
use parn_sim::Duration;

pub use crate::traffic::{DestPolicy, SourceModel, TrafficConfig};

/// How neighbours keep their clock models fresh after the initial
/// rendezvous.
#[derive(Clone, Debug)]
pub enum SyncMode {
    /// Idealized: every `resync_interval`, each station exchanges clock
    /// readings with every tracked neighbour out of band.
    Oracle,
    /// No maintenance after the boot rendezvous: clock models keep their
    /// single boot sample forever (staleness experiments).
    None,
    /// Realistic (§7): every successful reception carries the sender's
    /// clock reading in its header (the receiver refines its model of the
    /// sender for free), and each station additionally beacons a one-hop
    /// `Hello` to every routing neighbour at this interval, through the
    /// normal MAC, paying real air time.
    Piggyback {
        /// Hello beacon cadence.
        hello_interval: Duration,
    },
}

/// Clock and schedule-maintenance parameters.
#[derive(Clone, Debug)]
pub struct ClockConfig {
    /// Maximum clock rate error magnitude (ppm).
    pub max_ppm: f64,
    /// Interval between clock-sample exchanges with neighbours
    /// (Oracle mode).
    pub resync_interval: Duration,
    /// Guard band shaved off each predicted window edge.
    pub guard: Duration,
    /// Maintenance mechanism.
    pub sync: SyncMode,
}

/// Which PHY gain backend the simulator builds.
#[derive(Clone, Debug)]
pub enum PhyBackend {
    /// The reference dense gain matrix: exact, O(M²) memory. Caps out
    /// near 10⁴ stations.
    Dense,
    /// Spatially indexed gains: O(M) memory, on-demand gain computation,
    /// range-bounded neighbour queries. Without far-field aggregation it
    /// produces bit-identical simulations to `Dense` for deterministic
    /// propagation models.
    Grid {
        /// When set, interference beyond a near radius is aggregated per
        /// grid cell instead of summed per station — required to push
        /// past ~10⁴ stations. Introduces a bounded SINR error on the far
        /// tail (see `parn_phys::sinr::SinrTracker::with_far_field`).
        far_field: Option<FarFieldConfig>,
    },
}

/// Far-field aggregation knobs (Grid backend only).
#[derive(Clone, Copy, Debug)]
pub struct FarFieldConfig {
    /// Near radius as a multiple of the usable reach `reach_factor/√ρ`;
    /// interference from inside is exact, beyond is aggregated. 1.0 keeps
    /// every usable link and every significant interferer exact.
    pub near_radius_factor: f64,
    /// Extra relative staleness the far-tail snapshot cache may accept
    /// before recomputing (0 recomputes on every change).
    pub tolerance: f64,
}

impl FarFieldConfig {
    /// Paper-calibrated default: exact interference out to the usable
    /// reach, 5% cache tolerance — both error terms together stay well
    /// under the 5 dB β margin.
    pub fn default_for_paper() -> FarFieldConfig {
        FarFieldConfig {
            near_radius_factor: 1.0,
            tolerance: 0.05,
        }
    }
}

/// How routing tables are computed.
#[derive(Clone, Debug)]
pub enum RouteMode {
    /// All-pairs Dijkstra from a central view (reference).
    Centralized,
    /// Distributed asynchronous Bellman–Ford run as a real protocol (§6.2):
    /// every station keeps a private distance-vector state and learns
    /// routes only from advertisements carried over the scheduled channel.
    /// Converges to the same minimum-energy fixed point as `Centralized`;
    /// tie-breaks may differ. Tuned by [`DvConfig`].
    Distributed,
    /// Direct-edge table only (O(E) memory): valid when traffic is
    /// single-hop (`DestPolicy::Neighbors`), the regime the early
    /// metro-scale experiments ran in.
    OneHop,
    /// Greedy geographic forwarding (O(E) memory): each hop relays to the
    /// usable neighbour strictly closest to the destination's position.
    /// The all-pairs-free option that still routes *multi-hop* — required
    /// for far-destination traffic (`DestPolicy::Gravity`/`Hotspot`) at
    /// metro scale, where a dense table would need M² entries. Packets
    /// that reach a greedy dead end are dropped as `Unroutable` and
    /// accounted.
    Greedy,
}

/// Distance-vector protocol knobs (`RouteMode::Distributed`).
#[derive(Clone, Copy, Debug)]
pub struct DvConfig {
    /// Cadence of each station's periodic full-vector advertisement to
    /// every link neighbour (the loss-recovery net; triggered updates
    /// carry most changes sooner).
    pub update_interval: Duration,
    /// Delay between a routing-table change and the triggered update it
    /// provokes — batches bursts of changes into one advertisement round.
    pub triggered_delay: Duration,
    /// Hold-down: after a station loses its route to a destination, it
    /// ignores third-party claims for that destination for this long
    /// (bounds count-to-infinity; first-hand link restoration is exempt).
    pub holddown: Duration,
    /// A convergence episode is declared over when no routing table
    /// anywhere has changed for this long.
    pub convergence_quiet: Duration,
}

impl DvConfig {
    /// Defaults scaled to the 10 ms slot: triggered updates batch at one
    /// slot, periodic refresh every 40 slots, hold-down just above the
    /// refresh cadence, quiescence after 20 quiet slots.
    pub fn paper_default() -> DvConfig {
        DvConfig {
            update_interval: Duration::from_millis(400),
            triggered_delay: Duration::from_millis(10),
            holddown: Duration::from_millis(500),
            convergence_quiet: Duration::from_millis(200),
        }
    }

    /// Provenance serialization (see [`NetConfig::to_json`]).
    pub fn to_json(&self) -> parn_sim::Json {
        use parn_sim::json::obj;
        obj([
            (
                "update_interval_s",
                self.update_interval.as_secs_f64().into(),
            ),
            (
                "triggered_delay_s",
                self.triggered_delay.as_secs_f64().into(),
            ),
            ("holddown_s", self.holddown.as_secs_f64().into()),
            (
                "convergence_quiet_s",
                self.convergence_quiet.as_secs_f64().into(),
            ),
        ])
    }
}

/// The §7.3 rule for protecting nearby neighbours' receive windows.
#[derive(Clone, Debug)]
pub struct NeighborProtection {
    /// Whether the rule is active.
    pub enabled: bool,
    /// An interferer is "significant" when it would add at least this
    /// fraction of the ambient interference (the paper's ¼ ⇒ ~1 dB).
    pub significance_fraction: f64,
}

/// The complete scenario description.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Root random seed; every run with the same config is identical.
    pub seed: u64,
    /// Station placement.
    pub placement: Placement,
    /// Reception criterion (design rate, bandwidth, margin).
    pub criterion: ReceptionCriterion,
    /// Schedule function (slot length, receive duty cycle, salt).
    pub sched: SchedParams,
    /// Clock behaviour and schedule maintenance.
    pub clock: ClockConfig,
    /// Power delivered to the intended receiver under power control
    /// (§6.1: the absolute level is not critical; it must simply dominate
    /// thermal noise).
    pub delivered_power: PowerW,
    /// When set, disables §6.1 power control: every transmission uses this
    /// fixed power regardless of hop length (ablation A1).
    pub fixed_power: Option<PowerW>,
    /// Transmitter power ceiling.
    pub max_power: PowerW,
    /// Thermal noise floor at each receiver.
    pub thermal_noise: PowerW,
    /// Extra constant interference representing the rest of the metro
    /// beyond the simulated stations (0 for self-contained scenarios).
    pub external_din: PowerW,
    /// Log-normal shadowing standard deviation (dB) applied on top of
    /// free-space loss; 0 disables it. Stations observe the shadowed
    /// gains, so routing and power control adapt (paper §3.5's
    /// "attenuated when there are obstructions" case).
    pub shadowing_sigma_db: f64,
    /// Self-interference power gain (duplexer leakage; effectively ∞).
    pub self_gain: f64,
    /// Despreading channels per receiver (§5: "GPS receivers often have
    /// six or twelve").
    pub despreaders: usize,
    /// Reach factor: a hop is usable when its distance is at most
    /// `reach × 1/√ρ` (the paper doubles the characteristic distance ⇒ 2).
    pub reach_factor: f64,
    /// §7.3 neighbour-protection rule.
    pub protection: NeighborProtection,
    /// Traffic.
    pub traffic: TrafficConfig,
    /// How far ahead the MAC searches for a usable window before
    /// re-trying, in slots.
    pub mac_horizon_slots: u64,
    /// Hop retransmission limit before a packet is abandoned.
    pub max_retries: u32,
    /// Packets per slot: packet air time = slot / divisor (thesis: 4).
    pub packet_divisor: u64,
    /// Maximum simultaneously planned (committed, not yet sent)
    /// transmissions per station. More than one keeps the transmitter busy
    /// across its windows — the no-head-of-line-blocking behaviour that
    /// lets §7.2's duty cycles approach 50%.
    pub max_outstanding_plans: usize,
    /// Worker threads for the far-field SINR sweep (1 = fully inline).
    /// Results are bit-identical at any value — shards merge in a fixed
    /// cell-index order — so this is purely a wall-clock knob.
    pub threads: usize,
    /// PHY gain backend (dense reference matrix or spatial index).
    pub phy_backend: PhyBackend,
    /// Routing-table construction mode.
    pub route_mode: RouteMode,
    /// Distance-vector exchange tuning (used by `RouteMode::Distributed`;
    /// inert otherwise).
    pub dv: DvConfig,
    /// Injected faults: a deterministic script of crashes,
    /// crash-recoveries, clock jumps, and jammer windows (see
    /// [`crate::faults`]). Empty by default.
    pub faults: FaultPlan,
    /// How the network heals around the injected faults: oracle route
    /// rebuilds on a timer, or local per-neighbor detection and repair.
    pub heal: HealConfig,
    /// Continuous station motion (see [`crate::mobility`]). `None` (the
    /// default) keeps every position static and every byte of config and
    /// metrics JSON identical to pre-mobility builds.
    pub mobility: Option<MobilityConfig>,
    /// Scripted membership churn: clean departures and re-admissions
    /// (see [`crate::mobility`]). Empty by default.
    pub churn: ChurnPlan,
    /// Simulated run length.
    pub run_for: Duration,
    /// Initial portion excluded from steady-state statistics.
    pub warmup: Duration,
}

impl NetConfig {
    /// The paper-flavoured default scenario: `n` stations uniform in a
    /// disk sized for density ρ = 1 station / 100 m² (characteristic
    /// distance 10 m), 100 kb/s design rate in 10 MHz (20 dB processing
    /// gain), 5 dB margin, 10 ms slots at `p = 0.3`.
    pub fn paper_default(n: usize, seed: u64) -> NetConfig {
        let rho = 0.01; // stations per m²
        let radius = (n as f64 / (std::f64::consts::PI * rho)).sqrt();
        NetConfig {
            seed,
            placement: Placement::UniformDisk { n, radius },
            criterion: ReceptionCriterion::with_5db_margin(1e5, 1e7),
            sched: SchedParams::paper_default(),
            clock: ClockConfig {
                max_ppm: 20.0,
                resync_interval: Duration::from_secs(5),
                guard: Duration::from_micros(200),
                sync: SyncMode::Oracle,
            },
            delivered_power: PowerW(1e-6),
            fixed_power: None,
            max_power: PowerW(1.0),
            thermal_noise: PowerW(1e-13),
            external_din: PowerW::ZERO,
            shadowing_sigma_db: 0.0,
            self_gain: 1e12,
            despreaders: 8,
            reach_factor: 2.0,
            protection: NeighborProtection {
                enabled: true,
                significance_fraction: 0.25,
            },
            traffic: TrafficConfig {
                arrivals_per_station_per_sec: 2.0,
                dest: DestPolicy::UniformAll,
                source: SourceModel::Poisson,
            },
            mac_horizon_slots: 200,
            max_retries: 10,
            packet_divisor: 4,
            max_outstanding_plans: 8,
            threads: 1,
            phy_backend: PhyBackend::Dense,
            route_mode: RouteMode::Centralized,
            dv: DvConfig::paper_default(),
            faults: FaultPlan::none(),
            heal: HealConfig::oracle(),
            mobility: None,
            churn: ChurnPlan::none(),
            run_for: Duration::from_secs(20),
            warmup: Duration::from_secs(2),
        }
    }

    /// Serialize the complete scenario for the provenance manifest in
    /// `BENCH_*.json` artifacts (schema in `docs/OBSERVABILITY.md`).
    ///
    /// Every field that shapes the run is included, so an artifact line is
    /// enough to reconstruct the configuration exactly (modulo code
    /// version, which provenance carries as the git SHA).
    pub fn to_json(&self) -> parn_sim::Json {
        use parn_sim::json::{obj, Json};
        let placement = match &self.placement {
            Placement::UniformDisk { n, radius } => obj([
                ("kind", "uniform_disk".into()),
                ("n", (*n).into()),
                ("radius_m", (*radius).into()),
            ]),
            Placement::PoissonDisk { density, radius } => obj([
                ("kind", "poisson_disk".into()),
                ("density_per_m2", (*density).into()),
                ("radius_m", (*radius).into()),
            ]),
            Placement::Grid {
                nx,
                ny,
                spacing,
                jitter,
            } => obj([
                ("kind", "grid".into()),
                ("nx", (*nx).into()),
                ("ny", (*ny).into()),
                ("spacing_m", (*spacing).into()),
                ("jitter_m", (*jitter).into()),
            ]),
            Placement::Clustered {
                clusters,
                per_cluster,
                sigma,
                radius,
            } => obj([
                ("kind", "clustered".into()),
                ("clusters", (*clusters).into()),
                ("per_cluster", (*per_cluster).into()),
                ("sigma_m", (*sigma).into()),
                ("radius_m", (*radius).into()),
            ]),
        };
        let sync = match &self.clock.sync {
            SyncMode::Oracle => obj([("kind", "oracle".into())]),
            SyncMode::None => obj([("kind", "none".into())]),
            SyncMode::Piggyback { hello_interval } => obj([
                ("kind", "piggyback".into()),
                ("hello_interval_s", hello_interval.as_secs_f64().into()),
            ]),
        };
        let phy_backend = match &self.phy_backend {
            PhyBackend::Dense => obj([("kind", "dense".into())]),
            PhyBackend::Grid { far_field } => obj([
                ("kind", "grid".into()),
                (
                    "far_field",
                    match far_field {
                        None => Json::Null,
                        Some(ff) => obj([
                            ("near_radius_factor", ff.near_radius_factor.into()),
                            ("tolerance", ff.tolerance.into()),
                        ]),
                    },
                ),
            ]),
        };
        let route_mode = match self.route_mode {
            RouteMode::Centralized => "centralized",
            RouteMode::Distributed => "distributed",
            RouteMode::OneHop => "one_hop",
            RouteMode::Greedy => "greedy",
        };
        let mut top = obj([
            ("seed", self.seed.into()),
            ("placement", placement),
            (
                "criterion",
                obj([
                    ("rate_bps", self.criterion.rate_bps.into()),
                    ("bandwidth_hz", self.criterion.bandwidth_hz.into()),
                    ("margin", self.criterion.margin.into()),
                ]),
            ),
            (
                "sched",
                obj([
                    ("slot_s", self.sched.slot.as_secs_f64().into()),
                    ("rx_prob", self.sched.rx_prob.into()),
                    ("salt", self.sched.salt.into()),
                ]),
            ),
            (
                "clock",
                obj([
                    ("max_ppm", self.clock.max_ppm.into()),
                    (
                        "resync_interval_s",
                        self.clock.resync_interval.as_secs_f64().into(),
                    ),
                    ("guard_s", self.clock.guard.as_secs_f64().into()),
                    ("sync", sync),
                ]),
            ),
            ("delivered_power_w", self.delivered_power.value().into()),
            (
                "fixed_power_w",
                match self.fixed_power {
                    None => Json::Null,
                    Some(p) => p.value().into(),
                },
            ),
            ("max_power_w", self.max_power.value().into()),
            ("thermal_noise_w", self.thermal_noise.value().into()),
            ("external_din_w", self.external_din.value().into()),
            ("shadowing_sigma_db", self.shadowing_sigma_db.into()),
            ("self_gain", self.self_gain.into()),
            ("despreaders", self.despreaders.into()),
            ("reach_factor", self.reach_factor.into()),
            (
                "protection",
                obj([
                    ("enabled", self.protection.enabled.into()),
                    (
                        "significance_fraction",
                        self.protection.significance_fraction.into(),
                    ),
                ]),
            ),
            ("traffic", self.traffic.to_json()),
            ("mac_horizon_slots", self.mac_horizon_slots.into()),
            ("max_retries", u64::from(self.max_retries).into()),
            ("packet_divisor", self.packet_divisor.into()),
            ("max_outstanding_plans", self.max_outstanding_plans.into()),
            ("threads", self.threads.into()),
            ("phy_backend", phy_backend),
            ("route_mode", route_mode.into()),
            ("dv", self.dv.to_json()),
            ("faults", self.faults.to_json()),
            ("heal", self.heal.to_json()),
            ("run_for_s", self.run_for.as_secs_f64().into()),
            ("warmup_s", self.warmup.as_secs_f64().into()),
        ]);
        // Dynamic-topology blocks are appended only when in use, keeping
        // static-scenario provenance byte-identical to pre-mobility
        // builds (the golden-metrics guarantee).
        if let Json::Obj(entries) = &mut top {
            if let Some(m) = &self.mobility {
                entries.push(("mobility".into(), m.to_json()));
            }
            if !self.churn.is_empty() {
                entries.push(("churn".into(), self.churn.to_json()));
            }
        }
        top
    }

    /// Air time of one fixed-size packet (slot / divisor).
    pub fn packet_airtime(&self) -> Duration {
        self.sched.slot / self.packet_divisor
    }

    /// Payload carried per packet at the design rate.
    pub fn packet_bits(&self) -> f64 {
        self.criterion.rate_bps * self.packet_airtime().as_secs_f64()
    }

    /// The SINR threshold every reception must hold.
    pub fn sinr_threshold(&self) -> f64 {
        self.criterion.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_self_consistent() {
        let c = NetConfig::paper_default(100, 1);
        assert_eq!(c.packet_airtime(), Duration::from_micros(2500));
        // 100 kb/s × 2.5 ms = 250 bits per packet.
        assert!((c.packet_bits() - 250.0).abs() < 1e-9);
        // ~20 dB processing gain ⇒ threshold well below 0 dB.
        assert!(c.sinr_threshold() < 0.1);
        assert!(c.sinr_threshold() > 0.001);
    }

    #[test]
    fn default_density_sizing() {
        let c = NetConfig::paper_default(314, 1);
        match c.placement {
            Placement::UniformDisk { n, radius } => {
                assert_eq!(n, 314);
                // ρ = n/(πR²) = 0.01.
                let rho = n as f64 / (std::f64::consts::PI * radius * radius);
                assert!((rho - 0.01).abs() < 1e-6);
            }
            _ => panic!("unexpected placement"),
        }
    }

    #[test]
    fn delivered_power_dominates_thermal() {
        let c = NetConfig::paper_default(100, 1);
        assert!(c.delivered_power.value() > 1e4 * c.thermal_noise.value());
    }

    #[test]
    fn to_json_omits_dynamic_topology_when_unused() {
        let c = NetConfig::paper_default(10, 1);
        let s = c.to_json().to_string();
        assert!(!s.contains("\"mobility\""), "{s}");
        assert!(!s.contains("\"churn\""), "{s}");
    }

    #[test]
    fn to_json_embeds_mobility_and_churn_when_set() {
        use crate::mobility::MobilityConfig;
        let mut c = NetConfig::paper_default(10, 1);
        c.mobility = Some(MobilityConfig::paper_default());
        c.churn = crate::mobility::ChurnPlan::none().leave_for(
            Duration::from_secs(2),
            3,
            Duration::from_secs(1),
        );
        let s = c.to_json().to_string();
        assert!(s.contains("\"mobility\""), "{s}");
        assert!(s.contains("\"model\":\"random_waypoint\""), "{s}");
        assert!(s.contains("\"churn\""), "{s}");
        assert!(s.contains("\"kind\":\"leave\""), "{s}");
    }

    #[test]
    fn to_json_embeds_the_full_fault_plan() {
        // Regression: `failures` used to serialize as a bare count, making
        // artifacts irreproducible from their own provenance.
        let mut c = NetConfig::paper_default(10, 1);
        c.faults = FaultPlan::none()
            .crash(Duration::from_secs(4), 3)
            .crash_recover(Duration::from_secs(5), 7, Duration::from_secs(2));
        let s = c.to_json().to_string();
        assert!(s.contains("\"kind\":\"crash\""), "{s}");
        assert!(s.contains("\"kind\":\"crash_recover\""), "{s}");
        assert!(s.contains("\"down_for_s\""), "{s}");
        assert!(s.contains("\"station\":7"), "{s}");
        assert!(s.contains("\"heal\""), "{s}");
        assert!(s.contains("\"oracle\""), "{s}");
    }
}
