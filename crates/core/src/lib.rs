//! `parn-core`: Shepard's decentralized, collision-free channel access
//! scheme for large dense packet radio networks (SIGCOMM '96), as a
//! runnable simulation and library.
//!
//! * [`config`] — scenario description with paper-flavoured defaults;
//! * [`faults`] — deterministic fault plans (crash / crash-recover /
//!   clock jump / jammer) and the healing policy (oracle vs local);
//! * [`mobility`] — station motion models and join/leave churn plans
//!   (dynamic topology);
//! * [`packet`] — packets and loss causes;
//! * [`power`] — §6.1 power control (deliver constant power);
//! * [`collision`] — the §5 collision taxonomy over PHY failure reports;
//! * [`station`] — per-station protocol state;
//! * [`network`] — the full event-driven simulator (MAC + PHY + routing +
//!   traffic);
//! * [`traffic`] — composable traffic models (Poisson / bursty on-off
//!   sources × uniform / neighbour / gravity / hotspot destinations);
//! * [`metrics`] — loss/delay/duty accounting.
//!
//! ```
//! use parn_core::{NetConfig, Network};
//! let mut cfg = NetConfig::paper_default(20, 1);
//! cfg.run_for = parn_sim::Duration::from_secs(3);
//! cfg.warmup = parn_sim::Duration::from_secs(1);
//! let metrics = Network::run(cfg);
//! assert_eq!(metrics.collision_losses(), 0);
//! ```

#![warn(missing_docs)]

pub mod collision;
pub mod config;
pub mod faults;
pub mod metrics;
pub mod mobility;
pub mod network;
pub mod packet;
pub mod power;
pub mod station;
pub mod traffic;

pub use collision::{classify, classify_with, CollisionKinds};
pub use config::{
    ClockConfig, DestPolicy, DvConfig, FarFieldConfig, NeighborProtection, NetConfig, PhyBackend,
    RouteMode, SourceModel, SyncMode, TrafficConfig,
};
pub use faults::{ByzMode, CutAxis, FaultEvent, FaultKind, FaultPlan, HealConfig, HealMode};
pub use metrics::Metrics;
pub use mobility::{ChurnEvent, ChurnKind, ChurnPlan, MobilityConfig, MobilityModel};
pub use network::{Event, Network};
pub use packet::{ControlPayload, LossCause, Packet, PacketKind};
pub use power::PowerPolicy;
