//! Packets.
//!
//! The scheme fixes the air-time of every packet to a quarter slot
//! (§7.2); a "packet" here is the unit the MAC schedules, forwarded
//! hop-by-hop along minimum-energy routes.

use parn_phys::StationId;
use parn_sim::Time;
use std::sync::Arc;

/// Unique packet identifier.
pub type PacketId = u64;

/// What a packet carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// Application payload, forwarded end-to-end.
    Data,
    /// A single-hop hello beacon carrying the sender's clock reading
    /// (schedule maintenance under piggyback synchronization). Best
    /// effort: never retried, not counted as traffic.
    Hello,
    /// A single-hop distance-vector advertisement (`RouteMode::Distributed`
    /// §6.2): the sender's routing vector with split horizon / poisoned
    /// reverse applied for the addressee. Same ledger treatment as hellos:
    /// best effort, never retried, outside the traffic books.
    RouteUpdate,
}

/// Control-plane payload attached to a hello or route-update packet.
///
/// The bits are snapshotted when the transmission *starts* (like the
/// clock reading a hello carries) and delivered intact on success; the
/// PHY never examines them.
#[derive(Clone, Debug, Default)]
pub struct ControlPayload {
    /// Distance-vector advertisement: `(total route energy, hop count)`
    /// per destination, poisoned for routes through the addressee.
    pub route_vector: Option<Vec<(f64, u32)>>,
    /// Liveness gossip: when the sender last heard each tracked station
    /// (directly or through earlier gossip). Lets idle neighbours be
    /// ruled alive without any data traffic.
    pub last_heard: Option<Vec<(StationId, Time)>>,
}

/// A packet in flight through the network.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Payload kind.
    pub kind: PacketKind,
    /// Originating station.
    pub src: StationId,
    /// Final destination.
    pub dst: StationId,
    /// Creation (arrival at source) time.
    pub created: Time,
    /// Hops traversed so far.
    pub hops: u32,
    /// Time the packet was enqueued at the current holder (for per-hop
    /// queueing-delay statistics).
    pub enqueued: Time,
    /// Stations this packet has been held by, source first. Forwarding
    /// back into this set is refused (the per-packet loop-freedom
    /// invariant for distributed routing); shared cheaply across clones.
    pub visited: Vec<StationId>,
    /// Control payload (hello gossip / distance-vector advertisement),
    /// snapshotted at transmission start. `None` for data packets and for
    /// queued control packets that have not gone on the air yet.
    pub payload: Option<Arc<ControlPayload>>,
}

impl Packet {
    /// A fresh packet at its source.
    pub fn new(id: PacketId, src: StationId, dst: StationId, now: Time) -> Packet {
        Packet {
            id,
            kind: PacketKind::Data,
            src,
            dst,
            created: now,
            hops: 0,
            enqueued: now,
            visited: vec![src],
            payload: None,
        }
    }

    /// Age since creation.
    pub fn age(&self, now: Time) -> parn_sim::Duration {
        now.since(self.created)
    }
}

/// Why a packet (or one reception of it) was lost.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LossCause {
    /// SINR dipped below threshold: unrelated transmitter(s) (Type 1).
    CollisionType1,
    /// SINR dipped below threshold: another sender to the same receiver
    /// (Type 2).
    CollisionType2,
    /// The receiver was itself transmitting (Type 3).
    CollisionType3,
    /// All despreading channels at the receiver were busy.
    DespreaderExhausted,
    /// SINR below threshold with no significant local interferer (the
    /// ambient din alone was too high — a link-budget failure, not a
    /// collision).
    Din,
    /// The packet was held by, or addressed to, a station that failed.
    StationFailed,
    /// The destination became unreachable after a topology change and the
    /// packet was dropped at rerouting time.
    Unroutable,
    /// SINR below threshold with a deliberate jammer as a significant
    /// interferer — adversarial interference, not a protocol collision.
    Jammed,
    /// The packet exhausted its per-hop retransmission budget and was
    /// dropped by its holder.
    RetriesExhausted,
    /// Forwarding the packet would have revisited a station it already
    /// passed through (a transient distance-vector loop); dropped at the
    /// holder instead of cycling.
    RoutingLoop,
    /// SINR below threshold with a Byzantine schedule violator as a
    /// significant interferer — a station transmitting outside its
    /// published §7.3 windows, not a protocol collision and not a plain
    /// jammer.
    Violation,
    /// The packet was held by, or addressed to, a station that cleanly
    /// left the network (a churn departure, not a crash).
    Departed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_lifecycle_fields() {
        let p = Packet::new(7, 1, 5, Time::from_secs(2));
        assert_eq!(p.id, 7);
        assert_eq!(p.kind, PacketKind::Data);
        assert_eq!((p.src, p.dst), (1, 5));
        assert_eq!(p.hops, 0);
        assert_eq!(p.visited, vec![1]);
        assert!(p.payload.is_none());
        assert_eq!(p.age(Time::from_secs(5)).as_secs_f64(), 3.0);
    }
}
