//! Station mobility and membership churn.
//!
//! Shepard's network is built from stations that users buy, install,
//! carry around, and unplug — topology is *dynamic*, not a one-shot
//! placement. This module describes that dynamism as configuration:
//!
//! * a [`MobilityConfig`] selects a [`MobilityModel`] (random waypoint
//!   or bounded random walk) and the motion-epoch cadence. All motion
//!   randomness comes from a dedicated `"mobility"` RNG substream, so a
//!   run with mobility disabled draws exactly the same numbers from
//!   every other stream as before — the golden byte-identity property.
//! * a [`ChurnPlan`] is a deterministic, fully serializable script of
//!   [`ChurnEvent`]s: stations *leaving* (cleanly powering down, with
//!   an optional timed return at the same position) and *joining* (a
//!   previously departed station reappearing at a new position). Like
//!   [`FaultPlan`](crate::faults::FaultPlan), plans are data — the same
//!   plan produces the same membership trajectory on every PHY backend
//!   and thread count.
//!
//! The station id space is fixed at construction: a join re-admits a
//! departed id rather than growing the network. That keeps every
//! per-station array, the gain backend, and the conservation ledger
//! index-stable through arbitrary churn.

use parn_phys::Point;
use parn_sim::json::{obj, Json};
use parn_sim::{Duration, Rng};

/// How stations move between motion epochs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MobilityModel {
    /// Random waypoint: each station picks a target uniform in the
    /// deployment disk and moves straight toward it at `speed`;
    /// on arrival it immediately draws the next target.
    RandomWaypoint {
        /// Constant station speed (m/s).
        speed: f64,
    },
    /// Bounded random walk: each epoch the station steps `speed × dt`
    /// in a fresh uniform-random direction; steps that would exit the
    /// deployment disk are clamped back to its boundary.
    RandomWalk {
        /// Constant station speed (m/s).
        speed: f64,
    },
}

impl MobilityModel {
    /// The model's constant speed (m/s).
    pub fn speed(&self) -> f64 {
        match *self {
            MobilityModel::RandomWaypoint { speed } | MobilityModel::RandomWalk { speed } => speed,
        }
    }

    /// Short machine-readable tag (used in traces and JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            MobilityModel::RandomWaypoint { .. } => "random_waypoint",
            MobilityModel::RandomWalk { .. } => "random_walk",
        }
    }
}

/// Continuous station motion, discretized into epochs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MobilityConfig {
    /// The motion model.
    pub model: MobilityModel,
    /// Interval between motion epochs: every `epoch`, each alive
    /// station advances along its model and the PHY relocates it.
    pub epoch: Duration,
}

impl MobilityConfig {
    /// Pedestrian-flavoured default: 1.5 m/s random waypoint, advanced
    /// every 200 ms (0.3 m per epoch — well under the 10 m
    /// characteristic distance, so gains drift smoothly).
    pub fn paper_default() -> MobilityConfig {
        MobilityConfig {
            model: MobilityModel::RandomWaypoint { speed: 1.5 },
            epoch: Duration::from_millis(200),
        }
    }

    /// Basic sanity: positive finite speed, nonzero epoch.
    pub fn validate(&self) -> Result<(), String> {
        let v = self.model.speed();
        if !v.is_finite() || v < 0.0 {
            return Err(format!("mobility: bad speed {v}"));
        }
        if self.epoch == Duration::ZERO {
            return Err("mobility: zero epoch".into());
        }
        Ok(())
    }

    /// Provenance serialization (see `NetConfig::to_json`).
    pub fn to_json(&self) -> Json {
        obj([
            ("model", self.model.tag().into()),
            ("speed_mps", self.model.speed().into()),
            ("epoch_s", self.epoch.as_secs_f64().into()),
        ])
    }
}

/// What happens to a station at a churn event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnKind {
    /// The station cleanly powers down. With `for_ = Some(d)` it powers
    /// back up `d` later *at the same position* (a timed outage); with
    /// `None` it stays gone until (at most) an explicit
    /// [`ChurnKind::Join`] re-admits it elsewhere.
    Leave {
        /// Optional timed return.
        for_: Option<Duration>,
    },
    /// A previously departed station reappears at `pos` with fresh
    /// volatile state (new clock, new schedule), exactly like a reboot
    /// at a new location. Only valid after a permanent `Leave` of the
    /// same station.
    Join {
        /// Where the station comes back up.
        pos: Point,
    },
}

impl ChurnKind {
    /// Short machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ChurnKind::Leave { .. } => "leave",
            ChurnKind::Join { .. } => "join",
        }
    }
}

/// One scheduled membership change: `kind` applies to `station` at
/// `at` (simulation time, relative to the start of the run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// When the change happens.
    pub at: Duration,
    /// The station joining or leaving.
    pub station: usize,
    /// What happens.
    pub kind: ChurnKind,
}

/// A deterministic script of join/leave events.
///
/// Build one explicitly with the chainable constructors or
/// pseudo-randomly (but reproducibly) via [`ChurnPlan::generate`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnPlan {
    /// The scheduled events, in authored order (the simulator's event
    /// queue orders them by time with deterministic FIFO tie-breaking).
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// The empty plan (no churn — the default).
    pub fn none() -> ChurnPlan {
        ChurnPlan { events: Vec::new() }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Append an arbitrary churn event.
    pub fn with(mut self, at: Duration, station: usize, kind: ChurnKind) -> ChurnPlan {
        self.events.push(ChurnEvent { at, station, kind });
        self
    }

    /// Append a permanent departure.
    pub fn leave(self, at: Duration, station: usize) -> ChurnPlan {
        self.with(at, station, ChurnKind::Leave { for_: None })
    }

    /// Append a timed outage: down at `at`, back `for_` later at the
    /// same position.
    pub fn leave_for(self, at: Duration, station: usize, for_: Duration) -> ChurnPlan {
        self.with(at, station, ChurnKind::Leave { for_: Some(for_) })
    }

    /// Append a re-admission of a departed station at `pos`.
    pub fn join(self, at: Duration, station: usize, pos: Point) -> ChurnPlan {
        self.with(at, station, ChurnKind::Join { pos })
    }

    /// Generate a reproducible pseudo-random plan of `count` events over
    /// `n` stations within `(0.05, 0.95) × horizon`, positions drawn
    /// uniform in the radius-`region_radius` deployment disk.
    ///
    /// The generator walks the drawn times in order and keeps per-station
    /// presence consistent: a present station can leave (half the time
    /// with a timed return), an absent one can be re-admitted at a fresh
    /// position. Deterministic in all four arguments and independent of
    /// every other RNG stream in the simulator.
    pub fn generate(
        seed: u64,
        n: usize,
        count: usize,
        horizon: Duration,
        region_radius: f64,
    ) -> ChurnPlan {
        let mut rng = Rng::new(seed).substream("churnplan");
        let h = horizon.as_secs_f64();
        let mut times: Vec<f64> = (0..count).map(|_| rng.range_f64(0.05, 0.95) * h).collect();
        times.sort_by(f64::total_cmp);
        // present[s]: station is up right now; busy_until[s]: absolute
        // time before which the station is reserved by a pending timed
        // return and must not be touched again.
        let mut present = vec![true; n];
        let mut busy_until = vec![0.0f64; n];
        let mut plan = ChurnPlan::none();
        for t in times {
            // Bounded retry keeps generation O(count): with few stations
            // mid-outage, a free one is found almost immediately.
            let mut chosen = None;
            for _ in 0..32 {
                let s = rng.below(n as u64) as usize;
                if busy_until[s] <= t {
                    chosen = Some(s);
                    break;
                }
            }
            let Some(s) = chosen else { continue };
            let at = Duration::from_secs_f64(t);
            if present[s] {
                if rng.below(2) == 0 {
                    // Timed outage, capped so the return lands in-run.
                    let d = rng.range_f64(0.02, 0.20) * h;
                    let d = d.min(0.98 * h - t).max(0.001 * h);
                    plan = plan.leave_for(at, s, Duration::from_secs_f64(d));
                    busy_until[s] = t + d;
                } else {
                    plan = plan.leave(at, s);
                    present[s] = false;
                }
            } else {
                plan = plan.join(at, s, uniform_in_disk(&mut rng, region_radius));
                present[s] = true;
            }
        }
        plan
    }

    /// Check the plan against a network of `n` stations: indices in
    /// range, durations positive, and per-station event sequences
    /// consistent (time-ordered per station; `Join` only after a
    /// permanent `Leave`; no event touching a station while a timed
    /// outage is still pending).
    pub fn validate(&self, n: usize) -> Result<(), String> {
        // Per-station walk in time order (stable for ties: authored
        // order — the event queue's FIFO tie-break).
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| self.events[a].at.cmp(&self.events[b].at).then(a.cmp(&b)));
        let mut present = vec![true; n];
        let mut busy_until = vec![Duration::ZERO; n];
        for &i in &order {
            let ev = &self.events[i];
            if ev.station >= n {
                return Err(format!(
                    "churn #{i}: station {} out of range (n = {n})",
                    ev.station
                ));
            }
            let s = ev.station;
            if ev.at < busy_until[s] {
                return Err(format!(
                    "churn #{i}: station {s} still mid-outage at {:?}",
                    ev.at
                ));
            }
            match ev.kind {
                ChurnKind::Leave { for_ } => {
                    if !present[s] {
                        return Err(format!("churn #{i}: station {s} left twice"));
                    }
                    match for_ {
                        Some(d) if d == Duration::ZERO => {
                            return Err(format!("churn #{i}: zero outage"));
                        }
                        Some(d) => busy_until[s] = ev.at + d,
                        None => present[s] = false,
                    }
                }
                ChurnKind::Join { pos } => {
                    if present[s] {
                        return Err(format!("churn #{i}: station {s} joined while present"));
                    }
                    if !pos.x.is_finite() || !pos.y.is_finite() {
                        return Err(format!("churn #{i}: non-finite join position"));
                    }
                    present[s] = true;
                }
            }
        }
        Ok(())
    }

    /// Full plan as JSON (array of event objects) — embedded into
    /// `NetConfig::to_json` so artifacts carry their exact churn script.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.events
                .iter()
                .map(|ev| {
                    let mut fields: Vec<(String, Json)> = vec![
                        ("at_s".into(), Json::from(ev.at.as_secs_f64())),
                        ("station".into(), Json::from(ev.station as u64)),
                        ("kind".into(), Json::from(ev.kind.tag())),
                    ];
                    match ev.kind {
                        ChurnKind::Leave { for_ } => {
                            fields.push((
                                "for_s".into(),
                                match for_ {
                                    None => Json::Null,
                                    Some(d) => d.as_secs_f64().into(),
                                },
                            ));
                        }
                        ChurnKind::Join { pos } => {
                            fields.push(("x_m".into(), pos.x.into()));
                            fields.push(("y_m".into(), pos.y.into()));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }
}

/// Uniform draw in the origin-centered disk of radius `r` (r√u is the
/// correct radial CDF inverse; θ uniform).
pub fn uniform_in_disk(rng: &mut Rng, r: f64) -> Point {
    let rad = r * rng.next_f64().sqrt();
    let theta = rng.next_f64() * std::f64::consts::TAU;
    Point::new(rad * theta.cos(), rad * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_and_serializes() {
        let c = MobilityConfig::paper_default();
        assert!(c.validate().is_ok());
        let s = c.to_json().to_string();
        assert!(s.contains("\"model\":\"random_waypoint\""), "{s}");
        assert!(s.contains("\"speed_mps\":1.5"), "{s}");
        assert!(s.contains("\"epoch_s\":0.2"), "{s}");
        let bad = MobilityConfig {
            model: MobilityModel::RandomWalk { speed: f64::NAN },
            epoch: Duration::from_millis(100),
        };
        assert!(bad.validate().is_err());
        let zero = MobilityConfig {
            model: MobilityModel::RandomWalk { speed: 1.0 },
            epoch: Duration::ZERO,
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn churn_builders_compose_and_validate() {
        let p = ChurnPlan::none()
            .leave_for(Duration::from_secs(1), 2, Duration::from_secs(1))
            .leave(Duration::from_secs(3), 4)
            .join(Duration::from_secs(5), 4, Point::new(3.0, -2.0));
        assert_eq!(p.len(), 3);
        assert!(p.validate(6).is_ok());
        assert!(p.validate(3).is_err()); // station 4 out of range
    }

    #[test]
    fn validate_rejects_inconsistent_sequences() {
        // Join without a prior permanent leave.
        let p = ChurnPlan::none().join(Duration::from_secs(1), 0, Point::new(0.0, 0.0));
        assert!(p.validate(4).is_err());
        // Double permanent leave.
        let p = ChurnPlan::none()
            .leave(Duration::from_secs(1), 0)
            .leave(Duration::from_secs(2), 0);
        assert!(p.validate(4).is_err());
        // Touching a station mid-outage.
        let p = ChurnPlan::none()
            .leave_for(Duration::from_secs(1), 0, Duration::from_secs(5))
            .leave(Duration::from_secs(2), 0);
        assert!(p.validate(4).is_err());
        // Zero outage.
        let p = ChurnPlan::none().leave_for(Duration::from_secs(1), 0, Duration::ZERO);
        assert!(p.validate(4).is_err());
        // Out-of-order authored events are fine as long as the timeline
        // is consistent.
        let p = ChurnPlan::none()
            .join(Duration::from_secs(5), 0, Point::new(1.0, 1.0))
            .leave(Duration::from_secs(1), 0);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let a = ChurnPlan::generate(7, 40, 30, Duration::from_secs(10), 35.0);
        let b = ChurnPlan::generate(7, 40, 30, Duration::from_secs(10), 35.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate(40).is_ok(), "{:?}", a.validate(40));
        let c = ChurnPlan::generate(8, 40, 30, Duration::from_secs(10), 35.0);
        assert_ne!(a, c);
        // Over enough draws both kinds appear.
        let has = |f: fn(&ChurnKind) -> bool| a.events.iter().any(|ev| f(&ev.kind));
        assert!(has(|k| matches!(k, ChurnKind::Leave { .. })));
    }

    #[test]
    fn generated_joins_land_in_the_disk() {
        let p = ChurnPlan::generate(3, 20, 60, Duration::from_secs(20), 25.0);
        assert!(p.validate(20).is_ok());
        for ev in &p.events {
            if let ChurnKind::Join { pos } = ev.kind {
                assert!(pos.x.hypot(pos.y) <= 25.0 + 1e-9);
            }
        }
    }

    #[test]
    fn plan_json_carries_every_field() {
        let p = ChurnPlan::none()
            .leave_for(Duration::from_secs(1), 2, Duration::from_millis(500))
            .leave(Duration::from_secs(3), 4)
            .join(Duration::from_secs(5), 4, Point::new(3.0, -2.0));
        let s = p.to_json().to_string();
        assert!(s.contains("\"kind\":\"leave\""), "{s}");
        assert!(s.contains("\"for_s\":0.5"), "{s}");
        assert!(s.contains("\"for_s\":null"), "{s}");
        assert!(s.contains("\"kind\":\"join\""), "{s}");
        assert!(s.contains("\"x_m\":3.0"), "{s}");
        assert!(s.contains("\"y_m\":-2.0"), "{s}");
    }

    #[test]
    fn uniform_in_disk_stays_inside_and_fills() {
        let mut rng = Rng::new(1).substream("mobility");
        let r = 10.0;
        let mut far = 0;
        for _ in 0..500 {
            let p = uniform_in_disk(&mut rng, r);
            let d = p.x.hypot(p.y);
            assert!(d <= r + 1e-9);
            if d > 0.7 * r {
                far += 1;
            }
        }
        // Area beyond 0.7r is 51% of the disk; a uniform draw must land
        // there often (a naive r·u draw would concentrate centrally).
        assert!(far > 150, "only {far}/500 draws beyond 0.7r");
    }
}
