//! Composable traffic models: who sends *when* ([`SourceModel`]) and
//! *to whom* ([`DestPolicy`]).
//!
//! A [`TrafficConfig`] pairs one of each with a mean per-station arrival
//! rate. Every random choice the models imply is drawn from the
//! simulator's dedicated `"traffic"` RNG substream, so two runs that
//! differ only in traffic knobs still place stations, draw clocks, and
//! schedule faults identically — and a run with all knobs at their
//! defaults (`Poisson` + `UniformAll`) is bit-identical to runs from
//! before these models existed.
//!
//! The non-default models exist to stress the network past the polite
//! regime the paper's examples live in:
//!
//! * [`DestPolicy::Gravity`] sends traffic across the metro (mean hop
//!   count well above 1), exercising relaying and the §6.2 routes;
//! * [`DestPolicy::Hotspot`] concentrates load on a few popular sinks,
//!   exercising the queueing and protected-set machinery around them;
//! * [`SourceModel::OnOff`] clumps arrivals into bursts at the same mean
//!   rate, exercising queue depth rather than steady-state throughput.

use parn_sim::json::obj;
use parn_sim::Json;

/// How packet destinations are drawn for each generated packet.
///
/// ```
/// use parn_core::DestPolicy;
/// // The four shipping policies (plus explicit flow lists):
/// let _uniform = DestPolicy::UniformAll;
/// let _local = DestPolicy::Neighbors;
/// let _metro = DestPolicy::Gravity { exponent: 2.0 };
/// let _sinks = DestPolicy::Hotspot { sinks: 4, skew: 1.0 };
/// let _pinned = DestPolicy::Flows(vec![(0, 9), (3, 7)]);
/// ```
#[derive(Clone, Debug)]
pub enum DestPolicy {
    /// Uniformly among all other stations (multihop traffic).
    UniformAll,
    /// Uniformly among the source's routing neighbours (single-hop).
    Neighbors,
    /// A fixed list of (src, dst) flows, cycled by the generator.
    Flows(Vec<(usize, usize)>),
    /// Distance-weighted destinations: `P(dst) ∝ d(src, dst)^(-exponent)`.
    /// `exponent = 0` is uniform-in-area, `2` the classic gravity model
    /// (most flows local, a heavy tail crossing the metro), larger values
    /// ever more local. Sampled in O(1) per packet against the spatial
    /// index (`parn_phys::GravitySampler`), so it scales to 10⁵ stations.
    Gravity {
        /// Distance-weighting exponent α ≥ 0.
        exponent: f64,
    },
    /// A few popular destinations ("sinks") attract all traffic: sink `k`
    /// (the stations with ids `0..sinks`) is chosen with probability
    /// `∝ (k+1)^(-skew)`. `skew = 0` spreads load evenly over the sinks;
    /// larger values Zipf-concentrate it on the first few.
    Hotspot {
        /// Number of sink stations (ids `0..sinks`); clamped to the
        /// network size at build time. At least 1.
        sinks: usize,
        /// Zipf skew across the sinks, ≥ 0.
        skew: f64,
    },
}

/// How packet arrival *instants* are drawn at each station.
///
/// ```
/// use parn_core::SourceModel;
/// let steady = SourceModel::Poisson;
/// // Bursty on-off: 0.5 s talk spurts separated by 1.5 s of silence.
/// let bursty = SourceModel::OnOff { on_mean_s: 0.5, off_mean_s: 1.5 };
/// // Both models carry the same mean rate; the burst compresses it 4×
/// // into the on-periods.
/// assert_eq!(steady.peak_rate(2.0), 2.0);
/// assert_eq!(bursty.peak_rate(2.0), 8.0);
/// ```
#[derive(Clone, Debug)]
pub enum SourceModel {
    /// Memoryless Poisson arrivals at the configured mean rate — the
    /// default, and the model every pre-existing experiment ran.
    Poisson,
    /// Two-state MMPP (on-off) bursts: each station alternates between
    /// exponentially distributed on- and off-periods, generating Poisson
    /// arrivals only while on, at a rate inflated so the long-run mean
    /// matches the configured rate (see [`peak_rate`](Self::peak_rate)).
    OnOff {
        /// Mean duration of an on (bursting) period, seconds, > 0.
        on_mean_s: f64,
        /// Mean duration of an off (silent) period, seconds, ≥ 0.
        off_mean_s: f64,
    },
}

impl SourceModel {
    /// The within-burst arrival rate that preserves `mean_rate` in the
    /// long run: `λ_on = λ_mean · (on + off) / on` for on-off sources,
    /// `λ_mean` itself for Poisson.
    pub fn peak_rate(&self, mean_rate: f64) -> f64 {
        match self {
            SourceModel::Poisson => mean_rate,
            SourceModel::OnOff {
                on_mean_s,
                off_mean_s,
            } => mean_rate * (on_mean_s + off_mean_s) / on_mean_s,
        }
    }

    /// Provenance serialization (part of `NetConfig::to_json`).
    pub fn to_json(&self) -> Json {
        match self {
            SourceModel::Poisson => obj([("kind", "poisson".into())]),
            SourceModel::OnOff {
                on_mean_s,
                off_mean_s,
            } => obj([
                ("kind", "on_off".into()),
                ("on_mean_s", (*on_mean_s).into()),
                ("off_mean_s", (*off_mean_s).into()),
            ]),
        }
    }
}

/// Traffic generation parameters.
///
/// ```
/// use parn_core::{DestPolicy, SourceModel, TrafficConfig};
/// // Bursty metro-crossing traffic at a mean of 4 pkt/s per station.
/// let t = TrafficConfig {
///     arrivals_per_station_per_sec: 4.0,
///     dest: DestPolicy::Gravity { exponent: 2.0 },
///     source: SourceModel::OnOff { on_mean_s: 0.5, off_mean_s: 0.5 },
/// };
/// assert_eq!(t.source.peak_rate(t.arrivals_per_station_per_sec), 8.0);
/// ```
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Mean packet arrivals per station per second (long-run mean for
    /// every source model).
    pub arrivals_per_station_per_sec: f64,
    /// Destination selection policy.
    pub dest: DestPolicy,
    /// Arrival-process model.
    pub source: SourceModel,
}

impl TrafficConfig {
    /// Provenance serialization (see `NetConfig::to_json`).
    pub fn to_json(&self) -> Json {
        let dest = match &self.dest {
            DestPolicy::UniformAll => obj([("kind", "uniform_all".into())]),
            DestPolicy::Neighbors => obj([("kind", "neighbors".into())]),
            DestPolicy::Flows(flows) => {
                obj([("kind", "flows".into()), ("count", flows.len().into())])
            }
            DestPolicy::Gravity { exponent } => {
                obj([("kind", "gravity".into()), ("exponent", (*exponent).into())])
            }
            DestPolicy::Hotspot { sinks, skew } => obj([
                ("kind", "hotspot".into()),
                ("sinks", (*sinks).into()),
                ("skew", (*skew).into()),
            ]),
        };
        obj([
            (
                "arrivals_per_station_per_sec",
                self.arrivals_per_station_per_sec.into(),
            ),
            ("dest", dest),
            ("source", self.source.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rate_preserves_mean() {
        // 25% duty: peak must be 4× the mean.
        let s = SourceModel::OnOff {
            on_mean_s: 1.0,
            off_mean_s: 3.0,
        };
        assert!((s.peak_rate(2.0) - 8.0).abs() < 1e-12);
        // Degenerate always-on burst is just Poisson.
        let always_on = SourceModel::OnOff {
            on_mean_s: 1.0,
            off_mean_s: 0.0,
        };
        assert!((always_on.peak_rate(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_the_kinds() {
        let t = TrafficConfig {
            arrivals_per_station_per_sec: 1.0,
            dest: DestPolicy::Hotspot {
                sinks: 3,
                skew: 1.5,
            },
            source: SourceModel::OnOff {
                on_mean_s: 0.25,
                off_mean_s: 0.75,
            },
        };
        let s = t.to_json().to_string();
        assert!(s.contains("\"kind\":\"hotspot\""), "{s}");
        assert!(s.contains("\"sinks\":3"), "{s}");
        assert!(s.contains("\"kind\":\"on_off\""), "{s}");
        let g = TrafficConfig {
            arrivals_per_station_per_sec: 1.0,
            dest: DestPolicy::Gravity { exponent: 2.0 },
            source: SourceModel::Poisson,
        }
        .to_json()
        .to_string();
        assert!(g.contains("\"kind\":\"gravity\""), "{g}");
        assert!(g.contains("\"kind\":\"poisson\""), "{g}");
    }
}
