//! Collision classification (paper §5, Figure 2).
//!
//! A failed reception is attributed to one of the three collision types by
//! inspecting the interferer snapshot the SINR tracker captured at the
//! moment the reception first dipped below threshold:
//!
//! 1. **Type 1** — an interfering transmission not involving the receiver;
//! 2. **Type 2** — an interfering transmission *addressed to* the receiver;
//! 3. **Type 3** — the receiver's own transmitter.
//!
//! "Multiple collision types may occur simultaneously in more complicated
//! situations"; we report all present and a primary type (largest
//! contributor).
//!
//! Significance: the paper's §7.3 threshold — a single interferer matters
//! only when it contributes at least ~¼ of the total interference (≈1 dB)
//! — separates *collisions* (some individually-significant interferer)
//! from *din* losses (the aggregate of many weak signals, which the model
//! treats as noise). Without this distinction, a network operating near
//! its link budget would mislabel ordinary background traffic as
//! collisions.

use crate::packet::LossCause;
use parn_phys::sinr::{Blame, ReceptionReport};
use parn_phys::StationId;

/// The set of collision types present in one failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollisionKinds {
    /// Some unrelated transmission interfered.
    pub type1: bool,
    /// Some other transmission addressed to this receiver interfered.
    pub type2: bool,
    /// The receiver's own transmitter interfered.
    pub type3: bool,
}

/// Classify a single interferer relative to the receiving station.
fn kind_of(blame: &Blame, rx: StationId) -> CollisionKinds {
    if blame.station == rx {
        CollisionKinds {
            type3: true,
            ..Default::default()
        }
    } else if blame.intended_rx == Some(rx) {
        CollisionKinds {
            type2: true,
            ..Default::default()
        }
    } else {
        CollisionKinds {
            type1: true,
            ..Default::default()
        }
    }
}

/// Default significance fraction: the paper's ¼ (≈1 dB) rule.
pub const DEFAULT_SIGNIFICANCE: f64 = 0.25;

/// Classify a failed reception with the default §7.3 significance rule.
pub fn classify(report: &ReceptionReport) -> (CollisionKinds, LossCause) {
    classify_with(report, DEFAULT_SIGNIFICANCE)
}

/// Classify a failed reception. Returns the kinds present (among
/// *significant* interferers) and the [`LossCause`] of the primary
/// (largest-contribution) one. A failure with no individually-significant
/// interferer — whether there were no interferers at all, or only an
/// aggregate of weak ones — is a link-budget (`Din`) loss. A significant
/// *jammer* interferer overrides the protocol taxonomy entirely: the loss
/// is [`LossCause::Jammed`] (deliberate interference is not a collision
/// the scheme could have scheduled around), and jammers never contribute
/// to the reported [`CollisionKinds`]. A significant Byzantine schedule
/// *violator* likewise overrides the taxonomy (the loss is
/// [`LossCause::Violation`] — the scheme cannot schedule around a station
/// that ignores its published windows), except that a concurrent
/// significant jammer still takes precedence.
pub fn classify_with(
    report: &ReceptionReport,
    significance_fraction: f64,
) -> (CollisionKinds, LossCause) {
    debug_assert!(!report.success, "classifying a successful reception");
    let floor = significance_fraction * report.interference_at_failure.value();
    let mut kinds = CollisionKinds::default();
    let mut primary: Option<&Blame> = None;
    let mut jammed = false;
    let mut violated = false;
    for b in &report.blame {
        if b.contribution.value() < floor {
            continue; // part of the din, not a collision
        }
        if b.jammer {
            jammed = true;
            continue; // adversarial interference, outside the §5 taxonomy
        }
        if b.violator {
            violated = true;
            continue; // out-of-window emission, outside the §5 taxonomy
        }
        let k = kind_of(b, report.rx);
        kinds.type1 |= k.type1;
        kinds.type2 |= k.type2;
        kinds.type3 |= k.type3;
        if primary
            .map(|p| b.contribution.value() > p.contribution.value())
            .unwrap_or(true)
        {
            primary = Some(b);
        }
    }
    if jammed {
        return (kinds, LossCause::Jammed);
    }
    if violated {
        return (kinds, LossCause::Violation);
    }
    let Some(primary) = primary else {
        return (CollisionKinds::default(), LossCause::Din);
    };
    let cause = match kind_of(primary, report.rx) {
        CollisionKinds { type3: true, .. } => LossCause::CollisionType3,
        CollisionKinds { type2: true, .. } => LossCause::CollisionType2,
        _ => LossCause::CollisionType1,
    };
    (kinds, cause)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parn_phys::PowerW;

    fn report(rx: StationId, blame: Vec<Blame>) -> ReceptionReport {
        // Total interference chosen so every listed interferer is
        // significant unless a test overrides it.
        let total: f64 = blame.iter().map(|b| b.contribution.value()).sum();
        ReceptionReport {
            rx,
            src: 99,
            success: false,
            min_sinr: 0.0,
            blame,
            interference_at_failure: PowerW(total),
        }
    }

    fn blame(station: StationId, intended: Option<StationId>, p: f64) -> Blame {
        Blame {
            station,
            intended_rx: intended,
            contribution: PowerW(p),
            jammer: false,
            violator: false,
        }
    }

    fn jammer(station: StationId, p: f64) -> Blame {
        Blame {
            station,
            intended_rx: None,
            contribution: PowerW(p),
            jammer: true,
            violator: false,
        }
    }

    fn violator(station: StationId, p: f64) -> Blame {
        Blame {
            station,
            intended_rx: None,
            contribution: PowerW(p),
            jammer: false,
            violator: true,
        }
    }

    #[test]
    fn type1_unrelated_transmitter() {
        let r = report(5, vec![blame(2, Some(3), 1.0)]);
        let (k, cause) = classify(&r);
        assert!(k.type1 && !k.type2 && !k.type3);
        assert_eq!(cause, LossCause::CollisionType1);
    }

    #[test]
    fn type2_same_receiver() {
        let r = report(5, vec![blame(2, Some(5), 1.0)]);
        let (k, cause) = classify(&r);
        assert!(!k.type1 && k.type2 && !k.type3);
        assert_eq!(cause, LossCause::CollisionType2);
    }

    #[test]
    fn type3_own_transmitter() {
        let r = report(5, vec![blame(5, Some(7), 1e9)]);
        let (k, cause) = classify(&r);
        assert!(!k.type1 && !k.type2 && k.type3);
        assert_eq!(cause, LossCause::CollisionType3);
    }

    #[test]
    fn mixed_primary_by_contribution() {
        // A weak Type 1 plus an overwhelming Type 3: the weak one is part
        // of the din (below the significance floor), the Type 3 dominates.
        let r = report(5, vec![blame(2, None, 0.1), blame(5, Some(1), 1e9)]);
        let (k, cause) = classify(&r);
        assert!(k.type3 && !k.type1, "weak interferer should be din");
        assert_eq!(cause, LossCause::CollisionType3);
    }

    #[test]
    fn mixed_comparable_contributions_report_both_kinds() {
        // Two comparable interferers, both above the floor: both kinds
        // flagged, largest is primary.
        let r = report(5, vec![blame(2, Some(5), 4.0), blame(9, Some(3), 10.0)]);
        let (k, cause) = classify(&r);
        assert!(k.type1 && k.type2);
        assert_eq!(cause, LossCause::CollisionType1);
    }

    #[test]
    fn empty_blame_is_din() {
        let r = report(5, vec![]);
        let (k, cause) = classify(&r);
        assert_eq!(k, CollisionKinds::default());
        assert_eq!(cause, LossCause::Din);
    }

    #[test]
    fn weak_interferers_are_din_not_collisions() {
        // One interferer at 10% of the total interference: below the 1/4
        // significance floor, so this is a link-budget loss.
        let mut r = report(5, vec![blame(2, Some(3), 0.1)]);
        r.interference_at_failure = PowerW(1.0);
        let (k, cause) = classify(&r);
        assert_eq!(k, CollisionKinds::default());
        assert_eq!(cause, LossCause::Din);
    }

    #[test]
    fn significant_among_weak_is_still_a_collision() {
        // A dominant interferer plus background chatter: collision, with
        // only the significant one shaping the kinds.
        let mut r = report(5, vec![blame(2, Some(5), 0.6), blame(7, Some(8), 0.05)]);
        r.interference_at_failure = PowerW(1.0);
        let (k, cause) = classify(&r);
        assert!(k.type2 && !k.type1);
        assert_eq!(cause, LossCause::CollisionType2);
    }

    #[test]
    fn custom_significance_fraction() {
        let mut r = report(5, vec![blame(2, None, 0.1)]);
        r.interference_at_failure = PowerW(1.0);
        assert_eq!(classify_with(&r, 0.25).1, LossCause::Din);
        assert_eq!(classify_with(&r, 0.05).1, LossCause::CollisionType1);
    }

    #[test]
    fn significant_jammer_is_jammed_not_collision() {
        let r = report(5, vec![jammer(2, 1.0)]);
        let (k, cause) = classify(&r);
        assert_eq!(k, CollisionKinds::default());
        assert_eq!(cause, LossCause::Jammed);
    }

    #[test]
    fn jammer_overrides_concurrent_protocol_interferers() {
        // A significant jammer plus a significant Type 2: the loss would
        // not have happened absent the jammer's contribution budget, so
        // it is attributed to jamming; the protocol kinds are still
        // reported for diagnostics.
        let r = report(5, vec![jammer(2, 10.0), blame(7, Some(5), 8.0)]);
        let (k, cause) = classify(&r);
        assert!(k.type2);
        assert_eq!(cause, LossCause::Jammed);
    }

    #[test]
    fn significant_violator_is_violation_not_collision() {
        let r = report(5, vec![violator(2, 1.0)]);
        let (k, cause) = classify(&r);
        assert_eq!(k, CollisionKinds::default());
        assert_eq!(cause, LossCause::Violation);
    }

    #[test]
    fn violator_overrides_concurrent_protocol_interferers() {
        let r = report(5, vec![violator(2, 10.0), blame(7, Some(5), 8.0)]);
        let (k, cause) = classify(&r);
        assert!(k.type2);
        assert_eq!(cause, LossCause::Violation);
    }

    #[test]
    fn jammer_takes_precedence_over_violator() {
        let r = report(5, vec![jammer(2, 10.0), violator(3, 10.0)]);
        let (_, cause) = classify(&r);
        assert_eq!(cause, LossCause::Jammed);
    }

    #[test]
    fn insignificant_violator_is_just_din() {
        let mut r = report(5, vec![violator(2, 0.1)]);
        r.interference_at_failure = PowerW(1.0);
        let (_, cause) = classify(&r);
        assert_eq!(cause, LossCause::Din);
    }

    #[test]
    fn insignificant_jammer_is_just_din() {
        let mut r = report(5, vec![jammer(2, 0.1)]);
        r.interference_at_failure = PowerW(1.0);
        let (_, cause) = classify(&r);
        assert_eq!(cause, LossCause::Din);
    }

    #[test]
    fn broadcast_interferer_is_type1() {
        // intended_rx = None (control emission) not aimed at us: Type 1.
        let r = report(5, vec![blame(2, None, 1.0)]);
        let (_, cause) = classify(&r);
        assert_eq!(cause, LossCause::CollisionType1);
    }
}
