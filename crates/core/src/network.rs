//! The full network simulator: Shepard's channel access scheme end to end.
//!
//! Wires together placement → gain matrix → minimum-energy routes →
//! per-station pseudo-random schedules → the MAC (§7: transmit to a
//! neighbour only where my transmit window overlaps its predicted receive
//! window, quarter-slot aligned, respecting close neighbours' receive
//! windows per §7.3) → the physical SINR reception test (§3.4), with
//! Poisson traffic forwarded hop-by-hop.
//!
//! The headline property this reproduces: **no packet is ever lost to a
//! collision** — every loss cause is accounted, and under the scheme the
//! collision counters stay at zero.

use crate::collision::classify;
use crate::config::{DestPolicy, NetConfig, PhyBackend, RouteMode, SourceModel, SyncMode};
use crate::faults::{ByzMode, FaultKind, FaultPlan, HealMode};
use crate::metrics::{Metrics, WarmupGate};
use crate::mobility::{uniform_in_disk, ChurnKind, MobilityModel};
use crate::packet::{ControlPayload, LossCause, Packet, PacketKind};
use crate::power::PowerPolicy;
use crate::station::{NeighborHealth, PlannedTx, Station};
use parn_phys::partition::{GeoCut, PartitionOverlay};
use parn_phys::placement::density;
use parn_phys::propagation::{FreeSpace, Propagation, Shadowed};
use parn_phys::sinr::{RxId, SinrTracker, TxId};
use parn_phys::{GainMatrix, GainModel, GravitySampler, GridGainModel, Point, PowerW, StationId};
use parn_route::{DvCluster, DvState, EnergyGraph, RouteTable};
use parn_sched::{
    intersect_lists, subtract_lists, ClockSample, PredictedSchedule, QuarterSlot, RemoteClockModel,
    SlotKind, StationClock, StationSchedule, Window,
};
use parn_sim::{Duration, EventQueue, Model, Rng, Time};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Simulator events.
#[derive(Debug)]
pub enum Event {
    /// Poisson traffic arrival at a station.
    NextArrival {
        /// The source station.
        station: StationId,
    },
    /// Re-attempt MAC scheduling (nothing fit within the search horizon).
    MacRetry {
        /// The station to retry.
        station: StationId,
    },
    /// A planned transmission goes on air.
    TxStart {
        /// The transmitting station.
        station: StationId,
    },
    /// A transmission (and its reception attempt) completes.
    TxEnd {
        /// The transmitting station.
        station: StationId,
        /// PHY transmission handle.
        tx: TxId,
        /// PHY reception handle, if the receiver had a despreader free.
        rx: Option<RxId>,
        /// The packet carried.
        packet: Packet,
        /// The addressed neighbour.
        next_hop: StationId,
        /// Sender's boot epoch at transmission start (a reboot in flight
        /// invalidates the sender's claim to the packet).
        tx_epoch: u64,
        /// Receiver's boot epoch at transmission start (a reboot in
        /// flight invalidates the reception).
        rx_epoch: u64,
    },
    /// Periodic network-wide clock-sample exchange between neighbours.
    Resync,
    /// A station emits hello beacons to its routing neighbours
    /// (piggyback synchronization mode).
    HelloRound {
        /// The beaconing station.
        station: StationId,
    },
    /// Injection point of one scheduled fault from the run's
    /// [`FaultPlan`] (crash, crash-recover onset, clock jump, or jammer
    /// switch-on).
    Fault {
        /// Index into [`NetConfig::faults`]`.events`.
        index: usize,
    },
    /// A crashed station reboots and rejoins with fresh volatile state.
    StationRecover {
        /// The rebooting station.
        station: StationId,
    },
    /// A jammer window ends.
    JammerOff {
        /// Index into [`NetConfig::faults`]`.events` of the jam fault.
        index: usize,
    },
    /// A geographic partition transient ends: the shadowing cut lifts and
    /// gains across it are restored.
    PartitionHeal {
        /// Index into [`NetConfig::faults`]`.events` of the partition
        /// fault.
        index: usize,
    },
    /// One step of a Byzantine schedule violator's rogue cadence: `on`
    /// starts an out-of-window burst, `!on` ends it and schedules the
    /// next one.
    ByzStep {
        /// Index into [`NetConfig::faults`]`.events` of the Byzantine
        /// fault.
        index: usize,
        /// Whether this step starts (true) or ends (false) a burst.
        on: bool,
    },
    /// A Byzantine misbehavior window ends (the station reverts to
    /// honest protocol behaviour).
    ByzOff {
        /// Index into [`NetConfig::faults`]`.events` of the Byzantine
        /// fault.
        index: usize,
    },
    /// A reactive-jam burst ends (the adversary's transmitter goes
    /// quiet until it senses the next reception).
    RJamOff {
        /// Burst sequence number (keys the active-burst map).
        seq: u64,
    },
    /// A backed-off retransmission becomes eligible again
    /// ([`HealMode::Local`]).
    RetryRelease {
        /// The station holding the packet.
        station: StationId,
        /// The packet awaiting retransmission.
        packet: Packet,
        /// The holder's boot epoch when the backoff began.
        epoch: u64,
    },
    /// Oracle-mode routing repair after a failure or recovery
    /// ([`HealMode::Oracle`] with table-based routing). Never scheduled
    /// in [`RouteMode::Distributed`], where reconvergence emerges from
    /// the per-station distance-vector exchange instead.
    Reroute,
    /// A station advertises its distance vector to its direct link
    /// neighbours ([`RouteMode::Distributed`]): periodic rounds keep the
    /// exchange alive, triggered rounds propagate table changes.
    RouteUpdateRound {
        /// The advertising station.
        station: StationId,
        /// Whether this is a periodic round (reschedules itself) or a
        /// triggered one-shot.
        periodic: bool,
    },
    /// Quiescence probe for the distributed exchange: if no station's
    /// table changed for a full quiet window, the open convergence
    /// episode closes.
    ConvergenceCheck,
    /// A motion epoch: every alive station advances along the configured
    /// mobility model and is relocated in the PHY (dynamic topology).
    MotionEpoch,
    /// Injection point of one scheduled churn event from the run's
    /// [`crate::mobility::ChurnPlan`] — a clean departure or a
    /// re-admission at a new position.
    ChurnStep {
        /// Index into [`NetConfig::churn`]`.events`.
        index: usize,
    },
    /// A timed-outage departure ends: the station powers back up at the
    /// position it left from.
    ChurnReturn {
        /// The returning station.
        station: StationId,
    },
}

/// The flap-damping penalty `h` has decayed to at `now`: each eviction
/// adds one point, and the score halves every `half_life`. A zero or
/// negative half-life disables decay bookkeeping entirely (score 0).
fn decayed_penalty(h: &NeighborHealth, now: Time, half_life: Duration) -> f64 {
    let Some(t0) = h.flap_updated else {
        return 0.0;
    };
    let hl = half_life.as_secs_f64();
    if hl <= 0.0 {
        return 0.0;
    }
    h.flap_penalty * 0.5f64.powf(now.since(t0).as_secs_f64() / hl)
}

/// Runtime state of one armed budget-limited reactive jammer: it senses
/// transmissions going on the air and burns jam air-time against them,
/// bounded by a total budget and a duty-cycle cap.
#[derive(Clone, Copy, Debug)]
struct RJamState {
    /// The adversary's anchor station (its sensor and transmitter sit at
    /// this station's position).
    station: StationId,
    /// When the adversary armed (the duty cap's reference point).
    since: Time,
    /// Remaining jam air-time budget.
    budget_left: Duration,
    /// Duty-cycle cap: cumulative jam time never exceeds `duty` × time
    /// since arming.
    duty: f64,
    /// Cumulative jam air-time spent.
    spent: Duration,
}

/// The assembled simulation.
pub struct Network {
    cfg: NetConfig,
    gains: Arc<dyn GainModel>,
    tracker: SinrTracker,
    routes: RouteTable,
    stations: Vec<Station>,
    clocks: Vec<StationClock>,
    power: PowerPolicy,
    threshold: f64,
    airtime: Duration,
    warm: WarmupGate,
    rng_traffic: Rng,
    next_packet_id: u64,
    /// Per-source reachable destinations (for traffic sampling).
    reachable: Vec<Vec<StationId>>,
    /// Per-source fixed-flow destinations (for `DestPolicy::Flows`).
    flow_dsts: Vec<Vec<StationId>>,
    /// Station positions (greedy route rebuilds, gravity sampling).
    /// Time-varying under mobility: every relocation writes through here
    /// *and* the gain backend, so all consumers see one epoch of truth.
    positions: Vec<Point>,
    /// Random-waypoint targets (each station starts "at" its own
    /// position, so the first motion epoch draws a fresh target).
    mob_target: Vec<Point>,
    /// Deployment-region radius (mobility target draws, walk clamping).
    region_radius: f64,
    /// Spatial destination sampler (`DestPolicy::Gravity` only).
    gravity: Option<GravitySampler>,
    /// Cumulative Zipf weights over the sink stations
    /// (`DestPolicy::Hotspot` only; sink `k` is station id `k`).
    hotspot_cum: Vec<f64>,
    /// Per-station on-off burst phase (`SourceModel::OnOff` only): true
    /// while the station is inside a talk spurt.
    burst_on: Vec<bool>,
    /// When the current on/off phase ends (lazily initialized at the
    /// first interarrival draw).
    burst_until: Vec<Time>,
    end: Time,
    /// Interference budget for §7.3 significance: delivered/θ.
    interference_budget: PowerW,
    /// Liveness per station (failure injection).
    alive: Vec<bool>,
    /// Gain threshold for usable hops, kept for route repairs.
    usable_gain: parn_phys::Gain,
    /// Results.
    pub metrics: Metrics,
    /// Fault-machinery RNG (reboot clocks, retry-backoff jitter).
    rng_faults: Rng,
    /// Mobility RNG (the dedicated "mobility" substream): drawn from only
    /// by motion epochs, so immobile runs consume nothing from it and
    /// every other stream stays bit-identical to pre-mobility builds.
    rng_mobility: Rng,
    /// Active jammer PHY handles, keyed by fault-plan event index.
    jammer_tx: BTreeMap<usize, TxId>,
    /// Shadowing-cut overlay over the gain model — present only when the
    /// construction-time fault plan contains a partition fault, and
    /// transparent until a cut activates, so plans without partitions run
    /// on the bare model bit-for-bit.
    partition: Option<Arc<PartitionOverlay>>,
    /// Open Byzantine misbehavior windows: fault-plan event index → mode.
    byz_active: BTreeMap<usize, ByzMode>,
    /// Rogue out-of-window emissions currently on the air, keyed by the
    /// Byzantine fault's event index.
    byz_tx: BTreeMap<usize, TxId>,
    /// Armed reactive-jam adversaries, keyed by fault-plan event index.
    rjam: BTreeMap<usize, RJamState>,
    /// Reactive-jam bursts currently on the air: burst sequence →
    /// (fault index, PHY handle).
    rjam_active: BTreeMap<u64, (usize, TxId)>,
    /// Next reactive-jam burst sequence number.
    rjam_seq: u64,
    /// How many live stations currently hold each station evicted
    /// (`HealMode::Local`). A station with a nonzero count receives no
    /// routed traffic.
    evicted_by: Vec<u32>,
    /// Per-station reboot counter; in-flight PHY activity is judged
    /// against the epoch captured at transmission start.
    boot_epoch: Vec<u64>,
    /// When each currently-down station went dark (time-to-detect).
    down_since: Vec<Option<Time>>,
    /// When each rebooted station rejoined (time-to-heal).
    recover_mark: Vec<Option<Time>>,
    /// Whether a `NextArrival` chain is live per station (recovery
    /// restarts a chain only if the old one has died out).
    arrivals_live: Vec<bool>,
    tracer: parn_sim::trace::Tracer,
    queue_depth: parn_sim::stats::TimeWeighted,
    on_air: parn_sim::stats::TimeWeighted,
    /// Per-station distance-vector protocol state
    /// ([`RouteMode::Distributed`]; empty otherwise). `dv[s]` is private
    /// to station `s`: the only way information enters it is a received
    /// advertisement.
    dv: Vec<DvState>,
    /// The physical link set each station booted with: `(neighbour,
    /// hop energy)` per usable link. Reboots and readmissions restore
    /// links from here (the rejoin handshake re-measures them).
    dv_links: Vec<Vec<(StationId, f64)>>,
    /// First table change of the currently open convergence episode.
    dv_episode_start: Option<Time>,
    /// Most recent table change of the open episode.
    dv_last_change: Option<Time>,
    /// Whether a `ConvergenceCheck` is already scheduled.
    dv_check_pending: bool,
    /// Closed convergence episodes so far (trace numbering).
    dv_episodes: u64,
}

impl Network {
    /// Build a network from a configuration. Deterministic in `cfg.seed`.
    pub fn new(cfg: NetConfig) -> Network {
        parn_sim::time_scope!("core.build");
        let root = Rng::new(cfg.seed);
        let mut rng_place = root.substream("placement");
        let mut rng_clock = root.substream("clocks");
        let rng_traffic = root.substream("traffic");
        let rng_faults = root.substream("faults");
        let rng_mobility = root.substream("mobility");

        let positions = cfg.placement.generate(&mut rng_place);
        let n = positions.len();
        assert!(n >= 2, "need at least two stations");
        let shadow = (cfg.shadowing_sigma_db > 0.0).then(|| Shadowed {
            inner: FreeSpace::unit(),
            sigma_db: cfg.shadowing_sigma_db,
            seed: cfg.seed ^ 0x5AAD_0E5D,
        });
        let gains: Arc<dyn GainModel> = match &cfg.phy_backend {
            // `build_shared` keeps the propagation model alive so dense
            // backends can recompute rows on relocation; the table it
            // builds is bit-identical to `build`'s.
            PhyBackend::Dense => match shadow {
                Some(model) => Arc::new(GainMatrix::build_shared(&positions, Arc::new(model))),
                None => Arc::new(GainMatrix::build_shared(
                    &positions,
                    Arc::new(FreeSpace::unit()),
                )),
            },
            PhyBackend::Grid { .. } => {
                let model: Box<dyn Propagation + Send + Sync> = match shadow {
                    Some(model) => Box::new(model),
                    None => Box::new(FreeSpace::unit()),
                };
                Arc::new(GridGainModel::new(&positions, model))
            }
        };
        // A fault plan containing a partition wraps the gain model in a
        // shadowing-cut overlay (transparent until a cut activates); plans
        // without one keep the bare model, so every pre-existing run is
        // byte-identical.
        let partition = cfg
            .faults
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Partition { .. }))
            .then(|| Arc::new(PartitionOverlay::new(Arc::clone(&gains))));
        let gains: Arc<dyn GainModel> = match &partition {
            Some(p) => Arc::clone(p) as Arc<dyn GainModel>,
            None => gains,
        };

        // Usable-hop threshold from the reach factor (§6: ~2/√ρ).
        let region = cfg.placement.region();
        let rho = density(&positions, &region);
        let reach = cfg.reach_factor / rho.sqrt();
        let usable_gain = parn_phys::Gain(1.0 / (reach * reach));
        let graph = EnergyGraph::from_model(&*gains, usable_gain);
        let (routes, dv) = match cfg.route_mode {
            RouteMode::Centralized => (RouteTable::centralized(&graph), Vec::new()),
            RouteMode::OneHop => (RouteTable::one_hop(&graph), Vec::new()),
            RouteMode::Greedy => (RouteTable::greedy(&graph, &positions), Vec::new()),
            RouteMode::Distributed => {
                // Real per-station protocol state. The initial tables come
                // from a cold-start exchange (every station trades vectors
                // with its link neighbours until quiescent) — the same
                // fixpoint the runtime asynchronous exchange maintains.
                let mut cluster = DvCluster::new(&graph);
                cluster
                    .converge_sync(2 * n + 16)
                    .expect("cold-start distance-vector exchange did not converge");
                let table = cluster.to_table();
                (table, cluster.into_states())
            }
        };
        let dv_links: Vec<Vec<(StationId, f64)>> = if dv.is_empty() {
            Vec::new()
        } else {
            (0..n).map(|s| graph.neighbors(s).to_vec()).collect()
        };
        let alive = vec![true; n];

        let mut tracker = SinrTracker::new(
            Arc::clone(&gains),
            cfg.thermal_noise + cfg.external_din,
            cfg.self_gain,
        );
        if let PhyBackend::Grid {
            far_field: Some(ff),
        } = &cfg.phy_backend
        {
            tracker = tracker.with_far_field(ff.near_radius_factor * reach, ff.tolerance);
        }
        if cfg.threads > 1 {
            tracker = tracker.with_threads(cfg.threads);
        }

        let threshold = cfg.sinr_threshold();
        let power = match cfg.fixed_power {
            Some(p) => PowerPolicy::Fixed(p),
            None => PowerPolicy::Controlled {
                target: cfg.delivered_power,
                max: cfg.max_power,
            },
        };
        let interference_budget = PowerW(cfg.delivered_power.value() / threshold);

        // Stations: random clocks, shared schedule function.
        let mut clocks = Vec::with_capacity(n);
        let mut stations = Vec::with_capacity(n);
        for id in 0..n {
            let clock = StationClock::random(&mut rng_clock, cfg.clock.max_ppm);
            clocks.push(clock);
            stations.push(Station::new(id, StationSchedule::new(cfg.sched, clock)));
        }

        // Routing neighbours, §7.3 protected sets, initial clock models.
        for id in 0..n {
            let rn = routes.routing_neighbors(id);
            // Distributed mode exchanges vectors over every usable link,
            // not just current next hops, so link neighbours need clock
            // models — and the station's worst-case power must account
            // for reaching the farthest of them, not just the farthest
            // routing neighbour.
            let link_ids: Vec<StationId> = dv_links
                .get(id)
                .map(|ls| ls.iter().map(|&(nb, _)| nb).collect())
                .unwrap_or_default();
            let mut protected = Vec::new();
            let max_power_used = rn
                .iter()
                .chain(link_ids.iter())
                .map(|&nb| power.tx_power(gains.gain(nb, id)).value())
                .fold(0.0f64, f64::max);
            if cfg.protection.enabled && max_power_used > 0.0 {
                // §7.3 in threshold form: `other` is protected when this
                // station's worst-case power would land at least the
                // significance fraction of the interference budget on it,
                // i.e. gain(other, id) ≥ frac·budget / max_power. Phrased
                // as a gain threshold it runs through the (range-bounded)
                // hearable_by query, identical on both backends.
                let thr = parn_phys::Gain(
                    cfg.protection.significance_fraction * interference_budget.value()
                        / max_power_used,
                );
                protected = gains.hearable_by(id, thr);
            }
            let mut models = BTreeMap::new();
            for &nb in rn.iter().chain(protected.iter()).chain(link_ids.iter()) {
                models.entry(nb).or_insert_with(|| {
                    RemoteClockModel::from_first_sample(ClockSample {
                        mine: clocks[id].reading(Time::ZERO),
                        theirs: clocks[nb].reading(Time::ZERO),
                    })
                });
            }
            let st = &mut stations[id];
            st.routing_neighbors = rn;
            st.protected = protected;
            st.models = models;
        }

        // Reachable destination lists for traffic — only UniformAll reads
        // them; skipping the O(M²) scan otherwise keeps metro-scale
        // neighbour-traffic runs linear.
        let reachable: Vec<Vec<StationId>> = match &cfg.traffic.dest {
            DestPolicy::UniformAll => (0..n)
                .map(|s| {
                    (0..n)
                        .filter(|&d| d != s && routes.reachable(s, d))
                        .collect()
                })
                .collect(),
            _ => vec![Vec::new(); n],
        };
        let mut flow_dsts = vec![Vec::new(); n];
        if let DestPolicy::Flows(flows) = &cfg.traffic.dest {
            for &(s, d) in flows {
                assert!(s < n && d < n, "flow endpoint out of range");
                flow_dsts[s].push(d);
            }
        }
        // Spatial traffic models. All of this state is inert (None/empty)
        // unless the matching policy is selected, so default-config runs
        // build and draw exactly as before.
        let gravity = match &cfg.traffic.dest {
            DestPolicy::Gravity { exponent } => {
                assert!(*exponent >= 0.0, "gravity exponent must be >= 0");
                // Radius draws span hop length → metro diameter: shorter
                // draws snap to a neighbour anyway, longer ones can't land
                // inside the placement disk.
                let r_max = (2.0 * region.radius).max(2.0 * reach);
                Some(GravitySampler::new(&positions, *exponent, reach, r_max))
            }
            _ => None,
        };
        let hotspot_cum: Vec<f64> = match &cfg.traffic.dest {
            DestPolicy::Hotspot { sinks, skew } => {
                assert!(*sinks >= 1, "need at least one hotspot sink");
                assert!(*skew >= 0.0, "hotspot skew must be >= 0");
                let k = (*sinks).min(n);
                let w: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-skew)).collect();
                let total: f64 = w.iter().sum();
                let mut cum = 0.0;
                w.iter()
                    .map(|x| {
                        cum += x / total;
                        cum
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        let bursty = match cfg.traffic.source {
            SourceModel::Poisson => false,
            SourceModel::OnOff {
                on_mean_s,
                off_mean_s,
            } => {
                assert!(on_mean_s > 0.0, "on_mean_s must be > 0");
                assert!(off_mean_s >= 0.0, "off_mean_s must be >= 0");
                true
            }
        };
        let burst_on = vec![false; if bursty { n } else { 0 }];
        let burst_until = vec![Time::ZERO; if bursty { n } else { 0 }];

        let warm = WarmupGate {
            warm_at: Time::ZERO + cfg.warmup,
        };
        let end = Time::ZERO + cfg.run_for;
        let airtime = cfg.packet_airtime();
        let mut metrics = Metrics::new(n);
        metrics.measured_span = cfg.run_for.saturating_sub(cfg.warmup);
        let mob_target = positions.clone();
        let region_radius = region.radius;

        Network {
            cfg,
            gains,
            tracker,
            routes,
            stations,
            clocks,
            power,
            threshold,
            airtime,
            warm,
            rng_traffic,
            next_packet_id: 0,
            reachable,
            flow_dsts,
            positions,
            mob_target,
            region_radius,
            gravity,
            hotspot_cum,
            burst_on,
            burst_until,
            end,
            interference_budget,
            alive,
            usable_gain,
            metrics,
            rng_faults,
            rng_mobility,
            jammer_tx: BTreeMap::new(),
            partition,
            byz_active: BTreeMap::new(),
            byz_tx: BTreeMap::new(),
            rjam: BTreeMap::new(),
            rjam_active: BTreeMap::new(),
            rjam_seq: 0,
            evicted_by: vec![0; n],
            boot_epoch: vec![0; n],
            down_since: vec![None; n],
            recover_mark: vec![None; n],
            arrivals_live: vec![false; n],
            tracer: parn_sim::trace::Tracer::disabled(),
            queue_depth: parn_sim::stats::TimeWeighted::new(Time::ZERO, 0.0),
            on_air: parn_sim::stats::TimeWeighted::new(Time::ZERO, 0.0),
            dv,
            dv_links,
            dv_episode_start: None,
            dv_last_change: None,
            dv_check_pending: false,
            dv_episodes: 0,
        }
    }

    /// Attach a tracer: MAC plans, transmissions and reception outcomes
    /// are recorded (categories `"mac"` and `"phy"`).
    pub fn with_tracer(mut self, tracer: parn_sim::trace::Tracer) -> Network {
        self.tracer = tracer;
        self
    }

    /// Access the trace collected so far.
    pub fn tracer(&self) -> &parn_sim::trace::Tracer {
        &self.tracer
    }

    /// The routing table in use. In [`RouteMode::Distributed`] this is
    /// the cold-start snapshot; the live per-station tables are in
    /// [`Network::dv_table`].
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// Snapshot the per-station distance-vector tables as one dense
    /// [`RouteTable`] (`None` outside [`RouteMode::Distributed`]) — the
    /// convergence harness compares this against the centralized
    /// optimum after quiescence.
    pub fn dv_table(&self) -> Option<RouteTable> {
        (!self.dv.is_empty()).then(|| DvCluster::from_states(self.dv.clone()).to_table())
    }

    /// The gain model in use.
    pub fn gains(&self) -> &dyn GainModel {
        &*self.gains
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when the network has no stations (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Seed the event queue with initial arrivals and the resync cadence.
    pub fn prime(&mut self, queue: &mut EventQueue<Event>) {
        let n = self.stations.len();
        for s in 0..n {
            if self.has_traffic(s) {
                let dt = self.next_interarrival(s, Time::ZERO);
                queue.schedule(Time::ZERO + dt, Event::NextArrival { station: s });
                self.arrivals_live[s] = true;
            }
        }
        // Schedule maintenance. Oracle: periodic out-of-band exchanges,
        // with an early first one (the post-boot rendezvous that captures
        // clock rates). None: models keep their single boot sample — used
        // by staleness experiments. Piggyback: per-station hello rounds,
        // staggered to spread the load.
        match self.cfg.clock.sync {
            SyncMode::None => {}
            SyncMode::Oracle => {
                let first = Duration::from_millis(500).min(self.cfg.clock.resync_interval);
                queue.schedule(Time::ZERO + first, Event::Resync);
            }
            SyncMode::Piggyback { hello_interval } => {
                for s in 0..n {
                    let stagger =
                        Duration((s as u64).wrapping_mul(7919) % hello_interval.ticks().max(1));
                    queue.schedule(Time::ZERO + stagger, Event::HelloRound { station: s });
                }
            }
        }
        // Distributed routing: periodic advertisement rounds per station,
        // staggered like hellos (a different prime keeps the two cadences
        // from aligning systematically).
        if self.distributed() {
            let iv = self.cfg.dv.update_interval.ticks().max(1);
            for s in 0..n {
                let stagger = Duration((s as u64).wrapping_mul(6007) % iv);
                queue.schedule(
                    Time::ZERO + stagger,
                    Event::RouteUpdateRound {
                        station: s,
                        periodic: true,
                    },
                );
            }
        }
        // Translate the fault plan into injection events plus their
        // derived consequences (reboots, jammer switch-offs, and — under
        // oracle healing with table-based routing — the delayed global
        // route repairs; distributed routing repairs itself).
        if let Err(e) = self.cfg.faults.validate(n) {
            panic!("invalid fault plan: {e}");
        }
        let oracle = self.cfg.heal.mode == HealMode::Oracle && !self.distributed();
        let delay = self.cfg.heal.oracle_delay;
        for (index, ev) in self.cfg.faults.events.iter().enumerate() {
            let at = Time::ZERO + ev.at;
            queue.schedule(at, Event::Fault { index });
            match ev.kind {
                FaultKind::Crash => {
                    if oracle {
                        queue.schedule(at + delay, Event::Reroute);
                    }
                }
                FaultKind::CrashRecover { down_for } => {
                    queue.schedule(
                        at + down_for,
                        Event::StationRecover {
                            station: ev.station,
                        },
                    );
                    if oracle {
                        queue.schedule(at + delay, Event::Reroute);
                        queue.schedule(at + down_for + delay, Event::Reroute);
                    }
                }
                FaultKind::ClockJump { .. } => {}
                FaultKind::Jam { for_, .. } => {
                    queue.schedule(at + for_, Event::JammerOff { index });
                }
                FaultKind::Partition { for_, .. } => {
                    queue.schedule(at + for_, Event::PartitionHeal { index });
                    if oracle {
                        // The oracle notices the severed links on its
                        // usual delay, and again once the cut lifts.
                        queue.schedule(at + delay, Event::Reroute);
                        queue.schedule(at + for_ + delay, Event::Reroute);
                    }
                }
                FaultKind::Byzantine { for_, .. } => {
                    queue.schedule(at + for_, Event::ByzOff { index });
                }
                FaultKind::ReactiveJam { .. } => {
                    // Armed at injection; goes quiet when its budget runs
                    // dry — no scheduled end.
                }
            }
        }
        // Dynamic topology. Motion epochs march on a fixed cadence; churn
        // events inject on the plan's schedule, mirroring the fault
        // translation above (timed departures get a return event, oracle
        // healing gets its delayed global repairs).
        if let Some(mc) = &self.cfg.mobility {
            if let Err(e) = mc.validate() {
                panic!("invalid mobility config: {e}");
            }
            queue.schedule(Time::ZERO + mc.epoch, Event::MotionEpoch);
        }
        if let Err(e) = self.cfg.churn.validate(n) {
            panic!("invalid churn plan: {e}");
        }
        for (index, ev) in self.cfg.churn.events.iter().enumerate() {
            let at = Time::ZERO + ev.at;
            queue.schedule(at, Event::ChurnStep { index });
            if oracle {
                queue.schedule(at + delay, Event::Reroute);
            }
            if let ChurnKind::Leave { for_: Some(d) } = ev.kind {
                queue.schedule(
                    at + d,
                    Event::ChurnReturn {
                        station: ev.station,
                    },
                );
                if oracle {
                    queue.schedule(at + d + delay, Event::Reroute);
                }
            }
        }
    }

    /// Run to completion and return metrics.
    pub fn run(cfg: NetConfig) -> Metrics {
        Network::new(cfg).run_built()
    }

    /// Prime, run to completion, and surrender metrics — the tail of
    /// [`Network::run`] for a network built (and possibly probed)
    /// separately, e.g. to pick fault victims from
    /// [`Network::routing_dependent_counts`] before the run.
    pub fn run_built(mut self) -> Metrics {
        let mut queue = EventQueue::new();
        self.prime(&mut queue);
        let end = self.end;
        {
            parn_sim::time_scope!("core.run");
            parn_sim::run(&mut self, &mut queue, end);
        }
        self.finish()
    }

    /// Replace the fault plan after construction (experiment drivers
    /// probe a built network, then inject faults into the same build).
    ///
    /// Partition faults are the one kind that must already appear in the
    /// construction-time plan: the shadowing-cut overlay is wired into
    /// the gain model (and the SINR tracker holding it) at build.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.partition.is_some()
                || !plan
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::Partition { .. })),
            "partition faults must be present in the plan at Network::new \
             (the gain overlay is wired at build time)"
        );
        self.cfg.faults = plan;
    }

    /// Per-station count of distinct *other* stations whose current
    /// routes pass through each station (delegates to the route table) —
    /// a cheap "who is a load-bearing relay" probe.
    pub fn routing_dependent_counts(&self) -> Vec<usize> {
        self.routes.routing_dependent_counts()
    }

    /// Finalize accounting and surrender metrics.
    pub fn finish(mut self) -> Metrics {
        let settled = self.metrics.delivered + self.metrics.total_drops();
        self.metrics.in_flight_at_end = self.metrics.generated.saturating_sub(settled);
        self.metrics.mean_queue_depth = self.queue_depth.average(self.end);
        self.metrics.peak_queue_depth = self.queue_depth.max();
        self.metrics.mean_concurrent_tx = self.on_air.average(self.end);
        self.metrics.queue_depth_hist.freeze(self.end);
        self.metrics
    }

    /// Adjust the network-wide queued-packet count: the running
    /// time-average/peak (pre-existing) and the dwell-time histogram the
    /// saturation sweep reads percentiles from.
    fn track_queue(&mut self, now: Time, delta: f64) {
        self.queue_depth.adjust(now, delta);
        self.metrics.queue_depth_hist.adjust(now, delta);
    }

    /// Enqueue at a station with occupancy bookkeeping.
    fn enqueue_tracked(&mut self, s: StationId, next_hop: StationId, packet: Packet, now: Time) {
        self.stations[s].enqueue(next_hop, packet, now);
        self.track_queue(now, 1.0);
    }

    /// True when routing runs as the per-station distance-vector
    /// protocol.
    fn distributed(&self) -> bool {
        matches!(self.cfg.route_mode, RouteMode::Distributed)
    }

    /// Local liveness tracking is on: either local healing asked for it,
    /// or the distance-vector protocol needs link-failure detection
    /// regardless of the heal mode.
    fn heal_active(&self) -> bool {
        self.cfg.heal.mode == HealMode::Local || self.distributed()
    }

    /// Resolve the forwarding next hop for `packet` held at `at`:
    /// through the station's own distance-vector state (Distributed) or
    /// the shared table. `Err` carries the drop cause — unroutable, or a
    /// forward that would hand the packet back to a station that already
    /// held it (a transient routing loop, refused per packet).
    fn resolve_next_hop(&self, at: StationId, packet: &Packet) -> Result<StationId, LossCause> {
        let next = if self.distributed() {
            self.dv[at].next_hop(packet.dst)
        } else {
            self.routes.next_hop(at, packet.dst)
        };
        match next {
            None => Err(LossCause::Unroutable),
            Some(nh) if self.distributed() && packet.visited.contains(&nh) => {
                Err(LossCause::RoutingLoop)
            }
            Some(nh) => Ok(nh),
        }
    }

    /// Resolve and enqueue `packet` at `at`, or settle it as dropped.
    fn route_or_drop(
        &mut self,
        at: StationId,
        packet: Packet,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        match self.resolve_next_hop(at, &packet) {
            Ok(next) => {
                self.enqueue_tracked(at, next, packet, now);
                self.try_schedule(at, now, queue);
            }
            Err(cause) => {
                if cause == LossCause::RoutingLoop {
                    self.metrics.routing_loops += 1;
                }
                self.stations[at].attempts.remove(&packet.id);
                self.settle_drop(&packet, cause);
            }
        }
    }

    fn has_traffic(&self, s: StationId) -> bool {
        if self.cfg.traffic.arrivals_per_station_per_sec <= 0.0 {
            return false;
        }
        match &self.cfg.traffic.dest {
            DestPolicy::UniformAll => !self.reachable[s].is_empty(),
            DestPolicy::Neighbors => !self.stations[s].routing_neighbors.is_empty(),
            DestPolicy::Flows(_) => !self.flow_dsts[s].is_empty(),
            DestPolicy::Gravity { .. } => self.gravity.is_some(),
            // Every station sends to the sinks, except a lone sink with
            // nobody else to address.
            DestPolicy::Hotspot { .. } => {
                !(self.hotspot_cum.is_empty() || (self.hotspot_cum.len() == 1 && s == 0))
            }
        }
    }

    /// Time from `now` until station `s` generates its next packet.
    /// Poisson sources draw one exponential per call — the exact sequence
    /// pre-traffic-subsystem runs drew, keeping them bit-identical. On-off
    /// sources walk the station's two-state phase machine: exponential
    /// interarrivals at the inflated within-burst rate while on, skipping
    /// the off periods entirely.
    fn next_interarrival(&mut self, s: StationId, now: Time) -> Duration {
        let mean_rate = self.cfg.traffic.arrivals_per_station_per_sec;
        match self.cfg.traffic.source {
            SourceModel::Poisson => Duration::from_secs_f64(self.rng_traffic.exp(1.0 / mean_rate)),
            SourceModel::OnOff {
                on_mean_s,
                off_mean_s,
            } => {
                let peak = self.cfg.traffic.source.peak_rate(mean_rate);
                let mut t = now;
                loop {
                    if self.burst_on[s] {
                        let dt = Duration::from_secs_f64(self.rng_traffic.exp(1.0 / peak));
                        let cand = t + dt;
                        if cand <= self.burst_until[s] {
                            return cand - now;
                        }
                        // Burst over before the draw landed: silence next.
                        t = self.burst_until[s];
                        self.burst_on[s] = false;
                        self.burst_until[s] =
                            t + Duration::from_secs_f64(self.rng_traffic.exp(off_mean_s));
                    } else {
                        // Skip the rest of the off period (for the lazy
                        // initial state `burst_until` is `Time::ZERO`,
                        // so the first burst starts immediately).
                        t = t.max(self.burst_until[s]);
                        self.burst_on[s] = true;
                        self.burst_until[s] =
                            t + Duration::from_secs_f64(self.rng_traffic.exp(on_mean_s));
                    }
                }
            }
        }
    }

    fn pick_destination(&mut self, s: StationId) -> Option<StationId> {
        match &self.cfg.traffic.dest {
            DestPolicy::UniformAll => {
                let opts = &self.reachable[s];
                if opts.is_empty() {
                    None
                } else {
                    Some(*self.rng_traffic.choose(opts))
                }
            }
            DestPolicy::Neighbors => {
                let opts = &self.stations[s].routing_neighbors;
                if opts.is_empty() {
                    None
                } else {
                    Some(*self.rng_traffic.choose(opts))
                }
            }
            DestPolicy::Flows(_) => {
                let opts = &self.flow_dsts[s];
                if opts.is_empty() {
                    None
                } else {
                    Some(*self.rng_traffic.choose(opts))
                }
            }
            DestPolicy::Gravity { .. } => {
                let sampler = self.gravity.as_ref()?;
                sampler.sample(s, &mut self.rng_traffic)
            }
            DestPolicy::Hotspot { .. } => {
                if self.hotspot_cum.is_empty() {
                    return None;
                }
                let u = self.rng_traffic.next_f64();
                let k = self.hotspot_cum.partition_point(|&c| c <= u);
                let dst = k.min(self.hotspot_cum.len() - 1);
                if dst != s {
                    Some(dst)
                } else if self.hotspot_cum.len() > 1 {
                    // A sink never addresses itself: fold onto the next
                    // sink (wrapping), preserving one draw per packet.
                    Some((dst + 1) % self.hotspot_cum.len())
                } else {
                    None
                }
            }
        }
    }

    /// Attempt to plan the station's next transmissions (§7 MAC): keep
    /// committing packets to admissible quarter-slot starts until the
    /// outstanding-plan limit is reached or nothing fits in the horizon.
    fn try_schedule(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        if !self.alive[s] {
            return;
        }
        self.stations[s].prune_reservations(now);
        while self.stations[s].pending_tx.len() < self.cfg.max_outstanding_plans {
            if !self.try_schedule_one(s, now, queue) {
                break;
            }
        }
    }

    /// Plan at most one transmission; returns whether a plan was made.
    fn try_schedule_one(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) -> bool {
        if self.stations[s].queued() == 0 {
            return false;
        }
        let params = self.cfg.sched;
        let horizon = now + self.cfg.sched.slot * self.cfg.mac_horizon_slots;
        let guard = self.cfg.clock.guard;
        let qs = QuarterSlot::with_divisor(params, self.cfg.packet_divisor);
        let my_clock = self.clocks[s];

        // My own transmit windows, minus existing commitments, shaved by
        // a transmitter-turnaround epsilon: window boundaries are computed
        // through the clock inverse (±1 tick of rounding), and a 1-tick
        // overhang into the station's own receive slot is enough to kill
        // an incoming reception (Type 3) under the hold-for-the-whole-
        // packet criterion. Real radios need TX/RX turnaround time anyway.
        let my_tx: Vec<Window> = self.stations[s]
            .schedule
            .windows(now, horizon, SlotKind::Transmit)
            .into_iter()
            .map(|w| w.shrunk(Duration(2)))
            .filter(|w| !w.is_empty())
            .collect();
        let my_free = self.stations[s].subtract_reservations(&my_tx);

        // Pre-compute §7.3 cut lists lazily per candidate power level: the
        // protected windows only depend on the neighbour being protected,
        // so gather their expanded predicted receive windows once.
        let protection_on = self.cfg.protection.enabled;
        let mut protected_rx: Vec<(StationId, f64, Vec<Window>)> = Vec::new();
        if protection_on {
            let prot_ids = self.stations[s].protected.clone();
            for pn in prot_ids {
                let gain_to_pn = self.gains.gain(pn, s).value();
                if let Some(model) = self.stations[s].models.get(&pn) {
                    let pred = PredictedSchedule {
                        params,
                        my_clock,
                        model,
                        guard: Duration::ZERO,
                    };
                    let ws: Vec<Window> = pred
                        .windows(now, horizon, SlotKind::Receive)
                        .into_iter()
                        .map(|w| w.expanded(guard))
                        .collect();
                    protected_rx.push((pn, gain_to_pn, ws));
                }
            }
        }

        let neighbors_with_traffic: Vec<StationId> = self.stations[s]
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&nh, _)| nh)
            .collect();

        let mut best: Option<(Time, StationId)> = None;
        for nh in neighbors_with_traffic {
            let Some(model) = self.stations[s].models.get(&nh) else {
                continue;
            };
            let pred = PredictedSchedule {
                params,
                my_clock,
                model,
                guard,
            };
            let their_rx = pred.windows(now, horizon, SlotKind::Receive);
            let mut usable = intersect_lists(&my_free, &their_rx);
            if protection_on && !usable.is_empty() {
                let p_tx = self.power.tx_power(self.gains.gain(nh, s)).value();
                for (pn, gain_to_pn, ws) in &protected_rx {
                    if *pn == nh {
                        continue;
                    }
                    let contrib = p_tx * gain_to_pn;
                    if contrib
                        >= self.cfg.protection.significance_fraction
                            * self.interference_budget.value()
                    {
                        usable = subtract_lists(&usable, ws);
                    }
                }
            }
            let found = qs.first_admissible(
                &usable,
                now,
                |t| my_clock.reading(t),
                |local| my_clock.time_of_reading(local),
            );
            if let Some(start) = found {
                if best.map(|(b, _)| start < b).unwrap_or(true) {
                    best = Some((start, nh));
                }
            }
        }

        match best {
            Some((start, nh)) => {
                let st = &mut self.stations[s];
                let packet = st
                    .queues
                    .get_mut(&nh)
                    .and_then(VecDequeFront::pop_front_checked)
                    .expect("queue emptied unexpectedly");
                st.reservations.push((start, start + self.airtime));
                let pid = packet.id;
                self.track_queue(now, -1.0);
                let st = &mut self.stations[s];
                st.pending_tx.insert(
                    start.ticks(),
                    PlannedTx {
                        start,
                        next_hop: nh,
                        packet,
                    },
                );
                queue.schedule(start, Event::TxStart { station: s });
                parn_sim::trace_event!(
                    self.tracer,
                    now,
                    parn_sim::trace::Level::Debug,
                    parn_sim::trace::TraceEvent::MacPlanned {
                        station: s,
                        packet: pid,
                        next_hop: nh,
                        start,
                    }
                );
                true
            }
            None => {
                let st = &mut self.stations[s];
                if st.pending_tx.is_empty() && !st.retry_pending {
                    st.retry_pending = true;
                    queue.schedule(horizon, Event::MacRetry { station: s });
                }
                false
            }
        }
    }

    /// Snapshot a control payload onto `packet` at transmission start —
    /// the same moment a hello samples the sender's clock. A
    /// `RouteUpdate` carries the sender's split-horizon vector for its
    /// addressee; under piggyback sync a hello carries the vector too
    /// (Distributed) and the sender's last-heard gossip (any local
    /// liveness mode), so idle neighbourhoods still exchange evidence.
    fn attach_payload(&mut self, s: StationId, nh: StationId, packet: &mut Packet, now: Time) {
        let mut payload = ControlPayload::default();
        match packet.kind {
            PacketKind::Data => return,
            PacketKind::RouteUpdate => {
                payload.route_vector = Some(self.advertisement_for(s, nh));
            }
            PacketKind::Hello => {
                if self.distributed() {
                    payload.route_vector = Some(self.advertisement_for(s, nh));
                }
                if self.heal_active() && !self.stations[s].last_heard.is_empty() {
                    payload.last_heard = Some(
                        self.stations[s]
                            .last_heard
                            .iter()
                            .map(|(&x, &t)| (x, t))
                            .collect(),
                    );
                }
            }
        }
        if payload.route_vector.is_some() {
            if self.warm.measured(now) {
                self.metrics.route_updates_sent += 1;
            }
            parn_sim::counter_inc!("route.updates_sent");
            parn_sim::trace_event!(
                self.tracer,
                now,
                parn_sim::trace::Level::Debug,
                parn_sim::trace::TraceEvent::RouteUpdateSent {
                    station: s,
                    neighbor: nh,
                    packet: packet.id,
                }
            );
        }
        if payload.route_vector.is_some() || payload.last_heard.is_some() {
            packet.payload = Some(Arc::new(payload));
        }
    }

    /// The distance vector `s` puts on the air for `nh`: its honest
    /// advertisement — unless `s` is inside an active Byzantine poisoner
    /// window, in which case it underbids every destination (zero energy,
    /// zero hops), trying to black-hole traffic through itself. The
    /// receiver-side sanity check in [`parn_route::DvState::integrate`]
    /// rejects exactly these claims.
    fn advertisement_for(&self, s: StationId, nh: StationId) -> Vec<(f64, u32)> {
        let poisoning = self
            .byz_active
            .iter()
            .any(|(&i, &m)| m == ByzMode::Poisoner && self.cfg.faults.events[i].station == s);
        if poisoning {
            return vec![(0.0, 0); self.stations.len()];
        }
        self.dv[s].advertisement(nh)
    }

    fn on_tx_start(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        let Some(mut plan) = self.stations[s].pending_tx.remove(&now.ticks()) else {
            // The station failed after planning; the plan was cancelled.
            return;
        };
        debug_assert_eq!(plan.start, now, "TxStart fired at the wrong time");
        let nh = plan.next_hop;
        self.attach_payload(s, nh, &mut plan.packet, now);
        let p_tx = self.power.tx_power(self.gains.gain(nh, s));
        let tx = self.tracker.start_transmission(s, p_tx, Some(nh));
        self.on_air.adjust(now, 1.0);

        // Receiver side: occupy a despreading channel if one is free (a
        // failed station's receiver is dark).
        let rx = if self.alive[nh] && self.stations[nh].active_rx < self.cfg.despreaders {
            self.stations[nh].active_rx += 1;
            Some(self.tracker.begin_reception(nh, tx, self.threshold))
        } else {
            None
        };
        // Reactive adversaries sense the transmission going on the air.
        self.maybe_reactive_jam(s, p_tx, nh, now, queue);

        let measured = self.warm.measured(now);
        if measured {
            match plan.packet.kind {
                PacketKind::Hello => self.metrics.hellos_sent += 1,
                PacketKind::RouteUpdate => {}
                PacketKind::Data => {
                    let wait_slots = now.since(plan.packet.enqueued).ticks() as f64
                        / self.cfg.sched.slot.ticks() as f64;
                    self.metrics.hop_wait_slots.add(wait_slots);
                }
            }
            self.metrics.tx_airtime[s] += self.airtime.as_secs_f64();
            // Scheme self-check: the packet should land inside the
            // receiver's *actual* receive windows.
            let sched = &self.stations[nh].schedule;
            let end = now + self.airtime;
            if sched.kind_at(now) != SlotKind::Receive
                || sched.kind_at(end - Duration(1)) != SlotKind::Receive
            {
                self.metrics.schedule_violations += 1;
                #[cfg(feature = "diag")]
                {
                    let model = self.stations[s].models.get(&nh).expect("model");
                    let mine_now = self.clocks[s].reading(now);
                    let predicted = model.predict(mine_now);
                    let actual = self.clocks[nh].reading(now);
                    eprintln!(
                        "VIOLATION s={s} nh={nh} now={now} end={end} k0={:?} k1={:?} rd0={} rd1={} pred_err={} samples={}",
                        sched.kind_at(now),
                        sched.kind_at(end - Duration(1)),
                        sched.clock.reading(now) % 10_000,
                        sched.clock.reading(end - Duration(1)) % 10_000,
                        predicted as i64 - actual as i64,
                        model.sample_count(),
                    );
                }
            }
        }

        queue.schedule(
            now + self.airtime,
            Event::TxEnd {
                station: s,
                tx,
                rx,
                packet: plan.packet,
                next_hop: nh,
                tx_epoch: self.boot_epoch[s],
                rx_epoch: self.boot_epoch[nh],
            },
        );
        // Pipeline: plan the next packet while this one is on air.
        self.try_schedule(s, now, queue);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_tx_end(
        &mut self,
        s: StationId,
        tx: TxId,
        rx: Option<RxId>,
        packet: Packet,
        nh: StationId,
        tx_epoch: u64,
        rx_epoch: u64,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        let report = rx.map(|r| {
            self.stations[nh].active_rx -= 1;
            self.tracker.complete_reception(r)
        });
        self.tracker.end_transmission(tx);
        self.on_air.adjust(now, -1.0);
        let measured = self.warm.measured(packet.created);
        let is_ctrl = matches!(packet.kind, PacketKind::Hello | PacketKind::RouteUpdate);
        if measured && !is_ctrl {
            self.metrics.hop_attempts += 1;
        }
        // A reboot in flight voids either end: a rebooted receiver has
        // forgotten the reception, a rebooted sender has forgotten the
        // packet.
        let rx_fresh = self.alive[nh] && self.boot_epoch[nh] == rx_epoch;
        let tx_fresh = self.alive[s] && self.boot_epoch[s] == tx_epoch;
        let success = report.as_ref().map(|r| r.success).unwrap_or(false) && rx_fresh;
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Info,
            parn_sim::trace::TraceEvent::HopOutcome {
                src: s,
                dst: nh,
                packet: packet.id,
                success,
            }
        );
        if success {
            // Every successful reception carries the sender's clock
            // reading, sampled at transmission start.
            self.learn_from_reception(nh, s, now.saturating_sub(self.airtime));
            // The receiver heard the sender: readmit it if evicted.
            self.observe_alive(nh, s, now, queue);
            if self.heal_active() {
                // Liveness evidence on both ends (the ack carries it
                // back), feeding the gossip hellos spread.
                self.stations[nh].last_heard.insert(s, now);
                self.stations[s].last_heard.insert(nh, now);
            }
            if is_ctrl {
                if measured && packet.kind == PacketKind::Hello {
                    self.metrics.hellos_received += 1;
                }
                // Control frames are link-layer acked like data: the
                // sender learns its addressee is alive.
                self.observe_alive(s, nh, now, queue);
                self.consume_payload(nh, s, &packet, now, queue);
            } else {
                // Implicit ack: the sender learns its next hop is alive.
                self.observe_alive(s, nh, now, queue);
                if measured {
                    self.metrics.hop_successes += 1;
                    let rep = report.as_ref().expect("successful reception had a report");
                    let margin_db = 10.0 * (rep.min_sinr / self.threshold).log10();
                    self.metrics.sinr_margin_db.add(margin_db);
                }
                self.stations[s].attempts.remove(&packet.id);
                self.deliver(nh, packet, now, queue);
            }
        } else if is_ctrl {
            // Best effort: the next round regenerates it. Control losses
            // never feed the hop/loss ledgers, but a failed control hop
            // is still liveness evidence for the sender — this is what
            // detects a crashed neighbour that carries no data traffic.
            if tx_fresh {
                self.observe_hop_failure(s, nh, now, queue);
            }
        } else {
            let cause = if !rx_fresh {
                LossCause::StationFailed
            } else if let Some(rep) = &report {
                classify(rep).1
            } else {
                LossCause::DespreaderExhausted
            };
            if measured {
                self.metrics.record_loss(cause);
                if cause == LossCause::Violation {
                    // A loss pinned on an out-of-window emission is the
                    // receiver *detecting* the schedule violator.
                    self.metrics.violations_detected += 1;
                    parn_sim::counter_inc!("core.violations_detected");
                }
            }
            if tx_fresh {
                self.observe_hop_failure(s, nh, now, queue);
                self.retry_or_drop(s, packet, now, queue);
            } else {
                // The holder rebooted (or died) while the packet was on
                // air: the packet is gone with its pre-reboot state.
                self.settle_drop(&packet, LossCause::StationFailed);
            }
        }
        if self.alive[s] {
            self.try_schedule(s, now, queue);
        }
    }

    fn deliver(
        &mut self,
        at: StationId,
        mut packet: Packet,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        packet.hops += 1;
        if self.distributed() {
            // The per-packet loop-freedom invariant: refusing to forward
            // into the visited set (resolve_next_hop) must keep this
            // from ever firing, whatever transient the exchange is in.
            assert!(
                !packet.visited.contains(&at),
                "loop-freedom violated: packet {} revisited station {at}",
                packet.id
            );
        }
        packet.visited.push(at);
        let measured = self.warm.measured(packet.created);
        if packet.dst == at {
            if measured {
                self.metrics.delivered += 1;
                self.metrics.per_station_delivered[at] += 1;
                let delay = packet.age(now).as_secs_f64();
                self.metrics.e2e_delay.add(delay);
                self.metrics.e2e_delay_hist.add(delay);
                self.metrics.hops_per_packet.add(packet.hops as f64);
                self.metrics.hops_hist.add(packet.hops as f64);
                self.metrics.bits_delivered += self.cfg.packet_bits();
            }
            return;
        }
        if measured {
            self.metrics.per_station_forwarded[at] += 1;
        }
        // Forward, or drop accountably: unreachable after a topology
        // change, or (Distributed) a next hop that already held the
        // packet — the transient-loop refusal.
        self.route_or_drop(at, packet, now, queue);
    }

    /// Settle a packet as finally dropped, attributing the cause.
    /// Control packets (hellos, routing updates) are best-effort and
    /// never enter `generated`, so they never count as drops either;
    /// packets created before the warmup gate are likewise outside the
    /// measured ledger.
    fn settle_drop(&mut self, packet: &Packet, cause: LossCause) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if self.warm.measured(packet.created) {
            self.metrics.record_drop(cause);
        }
    }

    fn retry_or_drop(
        &mut self,
        s: StationId,
        packet: Packet,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.alive[s] {
            // The packet's holder is gone with it.
            self.settle_drop(&packet, LossCause::StationFailed);
            return;
        }
        let attempts = self.stations[s].attempts.entry(packet.id).or_insert(0);
        *attempts += 1;
        let attempt = *attempts;
        if attempt > self.cfg.max_retries {
            self.stations[s].attempts.remove(&packet.id);
            self.settle_drop(&packet, LossCause::RetriesExhausted);
            return;
        }
        if self.warm.measured(packet.created) {
            self.metrics.retransmissions += 1;
        }
        if self.heal_active() {
            // Capped binary-exponential backoff with ±50 % jitter:
            // gives a suspected neighbour room to come back (or be
            // evicted, or — Distributed — routed around) instead of
            // burning the retry budget instantly.
            let base = self.cfg.heal.backoff_base.ticks();
            let raw = base
                .saturating_mul(1u64 << attempt.saturating_sub(1).min(10))
                .min(self.cfg.heal.backoff_cap.ticks());
            let wait = Duration((raw as f64 * self.rng_faults.range_f64(0.5, 1.5)) as u64);
            queue.schedule(
                now + wait,
                Event::RetryRelease {
                    station: s,
                    packet,
                    epoch: self.boot_epoch[s],
                },
            );
        } else {
            // Oracle healing: immediate re-resolve — routes may have
            // healed around a failed neighbour since the packet was
            // first queued.
            self.route_or_drop(s, packet, now, queue);
        }
    }

    /// A backed-off retransmission becomes eligible: re-resolve its next
    /// hop through the (possibly repaired) routes and queue it again.
    fn on_retry_release(
        &mut self,
        s: StationId,
        packet: Packet,
        epoch: u64,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.alive[s] || self.boot_epoch[s] != epoch {
            self.settle_drop(&packet, LossCause::StationFailed);
            return;
        }
        self.route_or_drop(s, packet, now, queue);
    }

    fn on_arrival(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        if !self.alive[s] {
            // The chain dies with the station; recovery restarts it.
            self.arrivals_live[s] = false;
            return;
        }
        // Schedule the next arrival first (keeps the process going even if
        // this packet is unroutable).
        let dt = self.next_interarrival(s, now);
        let next = now + dt;
        if next <= self.end {
            queue.schedule(next, Event::NextArrival { station: s });
        } else {
            self.arrivals_live[s] = false;
        }
        let Some(dst) = self.pick_destination(s) else {
            return;
        };
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let packet = Packet::new(id, s, dst, now);
        if self.warm.measured(now) {
            self.metrics.generated += 1;
            self.metrics.per_station_generated[s] += 1;
        }
        let spatial_dest = matches!(
            self.cfg.traffic.dest,
            DestPolicy::Gravity { .. } | DestPolicy::Hotspot { .. }
        );
        if self.distributed() || spatial_dest {
            // The reachable list can be stale while the exchange
            // reconverges — and the spatial policies sample destinations
            // without a reachability scan (greedy forwarding can dead-end
            // en route anyway): either way the packet settles as
            // unroutable, staying on the conservation ledger.
            self.route_or_drop(s, packet, now, queue);
        } else {
            // Table-based reachable lists are kept exact; a miss here is
            // a bug, not a protocol transient.
            let next_hop = self
                .routes
                .next_hop(s, dst)
                .expect("picked an unroutable destination");
            self.enqueue_tracked(s, next_hop, packet, now);
            self.try_schedule(s, now, queue);
        }
    }

    fn on_resync(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        for s in 0..self.stations.len() {
            if !self.alive[s] {
                continue;
            }
            let mine = self.clocks[s].reading(now);
            let ids: Vec<StationId> = self.stations[s].models.keys().copied().collect();
            for nb in ids {
                if !self.alive[nb] {
                    continue;
                }
                let theirs = self.clocks[nb].reading(now);
                self.stations[s]
                    .models
                    .get_mut(&nb)
                    .expect("model vanished")
                    .add_sample(ClockSample { mine, theirs });
            }
        }
        let next = now + self.cfg.clock.resync_interval;
        if next <= self.end {
            queue.schedule(next, Event::Resync);
        }
    }
}

impl Network {
    /// Emit hello beacons: enqueue one single-hop `Hello` to each routing
    /// neighbour (unless one is already queued for it) and reschedule.
    fn on_hello_round(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        let SyncMode::Piggyback { hello_interval } = self.cfg.clock.sync else {
            return;
        };
        if self.alive[s] {
            let neighbors = self.stations[s].routing_neighbors.clone();
            for nb in neighbors {
                let already = self.stations[s]
                    .queues
                    .get(&nb)
                    .map(|q| q.iter().any(|p| p.kind == PacketKind::Hello))
                    .unwrap_or(false);
                if already {
                    continue;
                }
                let id = self.next_packet_id;
                self.next_packet_id += 1;
                let mut hello = Packet::new(id, s, nb, now);
                hello.kind = PacketKind::Hello;
                self.enqueue_tracked(s, nb, hello, now);
            }
            self.try_schedule(s, now, queue);
        }
        let next = now + hello_interval;
        if next <= self.end {
            queue.schedule(next, Event::HelloRound { station: s });
        }
    }

    /// Piggyback learning: a successful reception carries the sender's
    /// clock reading sampled at transmission start; the receiver refines
    /// its model of the sender.
    fn learn_from_reception(&mut self, rx: StationId, sender: StationId, start: Time) {
        if !matches!(self.cfg.clock.sync, SyncMode::Piggyback { .. }) {
            return;
        }
        let sample = ClockSample {
            mine: self.clocks[rx].reading(start),
            theirs: self.clocks[sender].reading(start),
        };
        match self.stations[rx].models.get_mut(&sender) {
            Some(m) => m.add_sample(sample),
            None => {
                self.stations[rx]
                    .models
                    .insert(sender, RemoteClockModel::from_first_sample(sample));
            }
        }
    }

    /// Integrate a received control payload at `rx`: merge liveness
    /// gossip, then fold the advertised distance vector into the
    /// receiver's own state.
    fn consume_payload(
        &mut self,
        rx: StationId,
        sender: StationId,
        packet: &Packet,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        let Some(payload) = packet.payload.clone() else {
            return;
        };
        if let Some(gossip) = &payload.last_heard {
            self.merge_gossip(rx, gossip, now, queue);
        }
        if let Some(vector) = &payload.route_vector {
            if !self.distributed() || !self.alive[rx] {
                return;
            }
            if self.warm.measured(now) {
                self.metrics.route_updates_received += 1;
            }
            parn_sim::counter_inc!("route.updates_received");
            let changed = self.dv[rx].integrate(sender, vector, now, self.cfg.dv.holddown);
            let rejected = self.dv[rx].take_poison_rejections();
            if rejected > 0 {
                self.metrics.violations_detected += rejected;
                parn_sim::counter_inc!("core.violations_detected");
                parn_sim::trace_event!(
                    self.tracer,
                    now,
                    parn_sim::trace::Level::Warn,
                    parn_sim::trace::TraceEvent::ViolationDetected {
                        observer: rx,
                        source: sender,
                    }
                );
            }
            if changed {
                self.after_dv_change(rx, now, queue);
            }
        }
    }

    /// Fold a sender's last-heard gossip into `rx`'s own view. Adopting
    /// a newer timestamp for a currently-suspected station counts as
    /// hearing it — but only when the evidence postdates the suspicion,
    /// so pre-crash gossip cannot resurrect a dead neighbour.
    fn merge_gossip(
        &mut self,
        rx: StationId,
        items: &[(StationId, Time)],
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.heal_active() {
            return;
        }
        for &(x, heard) in items {
            if x == rx {
                continue;
            }
            let newer = self.stations[rx]
                .last_heard
                .get(&x)
                .is_none_or(|&cur| heard > cur);
            if !newer {
                continue;
            }
            self.stations[rx].last_heard.insert(x, heard);
            let clears = self.stations[rx]
                .liveness
                .get(&x)
                .and_then(|h| h.suspected_at)
                .is_some_and(|t0| heard > t0);
            if clears {
                self.observe_alive(rx, x, now, queue);
            }
        }
    }

    /// A station's distance-vector table changed: refresh the MAC state
    /// derived from it (routing neighbours, §7.3 protection, clock
    /// models), arrange a triggered advertisement, and (re)arm the
    /// network-wide quiescence probe.
    fn after_dv_change(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        self.refresh_station_routing(s, now, false);
        self.schedule_triggered_update(s, now, queue);
        self.note_dv_change(now, queue);
    }

    /// Re-derive one station's routing neighbours, protected set and
    /// clock models from its own table — what `rebuild_routes` does
    /// globally, scoped to the station whose private state moved.
    ///
    /// `force` skips the unchanged-neighbour early exit: motion re-costs
    /// gains without necessarily changing next hops, and §7.3 protection
    /// and worst-case power must re-budget from the moved geometry.
    fn refresh_station_routing(&mut self, s: StationId, now: Time, force: bool) {
        let rn = self.dv[s].routing_neighbors();
        if !force && rn == self.stations[s].routing_neighbors {
            return;
        }
        // Worst-case power includes the physical link set: the station
        // addresses advertisements over every usable link, not just its
        // current next hops.
        let max_power_used = rn
            .iter()
            .chain(self.dv_links[s].iter().map(|(nb, _)| nb))
            .map(|&nb| self.power.tx_power(self.gains.gain(nb, s)).value())
            .fold(0.0f64, f64::max);
        let mut protected = Vec::new();
        if self.cfg.protection.enabled && max_power_used > 0.0 {
            let thr = parn_phys::Gain(
                self.cfg.protection.significance_fraction * self.interference_budget.value()
                    / max_power_used,
            );
            protected = self.gains.hearable_by(s, thr);
            protected.retain(|&p| p != s && self.alive[p]);
        }
        let mine = self.clocks[s].reading(now);
        for &nb in rn.iter().chain(protected.iter()) {
            let theirs = self.clocks[nb].reading(now);
            self.stations[s].models.entry(nb).or_insert_with(|| {
                RemoteClockModel::from_first_sample(ClockSample { mine, theirs })
            });
        }
        let st = &mut self.stations[s];
        st.routing_neighbors = rn;
        st.protected = protected;
    }

    /// Arrange a triggered advertisement round for `s`, deduping bursts
    /// of table changes into one round per `triggered_delay`.
    fn schedule_triggered_update(
        &mut self,
        s: StationId,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.alive[s] || self.stations[s].update_pending {
            return;
        }
        self.stations[s].update_pending = true;
        queue.schedule(
            now + self.cfg.dv.triggered_delay,
            Event::RouteUpdateRound {
                station: s,
                periodic: false,
            },
        );
    }

    /// Record a table change for convergence-episode tracking and make
    /// sure a quiescence probe is armed.
    fn note_dv_change(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        if self.dv_episode_start.is_none() {
            self.dv_episode_start = Some(now);
        }
        self.dv_last_change = Some(now);
        if !self.dv_check_pending {
            self.dv_check_pending = true;
            queue.schedule(now + self.cfg.dv.convergence_quiet, Event::ConvergenceCheck);
        }
    }

    /// Quiescence probe: if no table changed for a full quiet window the
    /// episode closes — its duration is sampled, and any station whose
    /// readmission the episode propagated counts as healed.
    fn on_convergence_check(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        self.dv_check_pending = false;
        let (Some(start), Some(last)) = (self.dv_episode_start, self.dv_last_change) else {
            return;
        };
        let quiet = self.cfg.dv.convergence_quiet;
        if now.since(last) < quiet {
            // Changed again since this probe was armed; re-arm from the
            // latest change.
            self.dv_check_pending = true;
            queue.schedule(last + quiet, Event::ConvergenceCheck);
            return;
        }
        self.dv_episode_start = None;
        self.dv_last_change = None;
        self.dv_episodes += 1;
        self.metrics
            .converged_at
            .add(last.since(start).as_secs_f64());
        parn_sim::counter_inc!("route.convergence_rounds");
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Info,
            parn_sim::trace::TraceEvent::RouteConverged {
                episode: self.dv_episodes,
                quiesced_at: last,
            }
        );
        for s in 0..self.stations.len() {
            if self.alive[s] && self.evicted_by[s] == 0 {
                if let Some(t0) = self.recover_mark[s].take() {
                    self.metrics.time_to_heal.add(last.since(t0).as_secs_f64());
                }
            }
        }
    }

    /// An advertisement round: enqueue one `RouteUpdate` to each direct
    /// link neighbour (unless one is already queued for it, like the
    /// hello dedupe). Periodic rounds reschedule themselves.
    fn on_route_update_round(
        &mut self,
        s: StationId,
        periodic: bool,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.distributed() {
            return;
        }
        if periodic {
            let next = now + self.cfg.dv.update_interval;
            if next <= self.end {
                queue.schedule(
                    next,
                    Event::RouteUpdateRound {
                        station: s,
                        periodic: true,
                    },
                );
            }
        } else {
            self.stations[s].update_pending = false;
        }
        if !self.alive[s] {
            return;
        }
        let links: Vec<StationId> = self.dv[s].links().keys().copied().collect();
        for nb in links {
            let already = self.stations[s]
                .queues
                .get(&nb)
                .map(|q| q.iter().any(|p| p.kind == PacketKind::RouteUpdate))
                .unwrap_or(false);
            if already {
                continue;
            }
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            let mut update = Packet::new(id, s, nb, now);
            update.kind = PacketKind::RouteUpdate;
            self.enqueue_tracked(s, nb, update, now);
        }
        self.try_schedule(s, now, queue);
    }

    /// Distributed link-failure handling: the observer tears the link
    /// down in its own state (poisoning routes through it), re-points or
    /// drops the traffic it had queued for the lost neighbour, and lets
    /// advertisements carry the change — no global recompute.
    fn on_link_failed(
        &mut self,
        s: StationId,
        nh: StationId,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        let changed = self.dv[s].fail_link(nh, now, self.cfg.dv.holddown);
        let orphaned: Vec<Packet> = self.stations[s]
            .queues
            .remove(&nh)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        self.track_queue(now, -(orphaned.len() as f64));
        for p in orphaned {
            if p.kind != PacketKind::Data {
                // Control frames are pinned to the lost addressee; the
                // next round regenerates them if the link comes back.
                continue;
            }
            self.route_or_drop(s, p, now, queue);
        }
        if changed {
            self.after_dv_change(s, now, queue);
        } else {
            // Even a routing no-op must be advertised: the peers'
            // vectors through us may still reference the dead link.
            self.schedule_triggered_update(s, now, queue);
        }
    }

    /// A rebooted station's distance-vector state restarts from its
    /// physical links to live stations (the rejoin handshake re-measures
    /// them); everything beyond one hop is re-learned from
    /// advertisements.
    fn reset_dv_state(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        let n = self.stations.len();
        let links: BTreeMap<StationId, f64> = self.dv_links[s]
            .iter()
            .filter(|&&(nb, _)| self.alive[nb])
            .copied()
            .collect();
        self.dv[s] = DvState::new(s, n, links);
        self.after_dv_change(s, now, queue);
    }

    /// Injection point of one scheduled fault from the plan.
    fn on_fault(&mut self, index: usize, now: Time, queue: &mut EventQueue<Event>) {
        let ev = self.cfg.faults.events[index];
        self.metrics.faults_injected += 1;
        parn_sim::counter_inc!("core.faults_injected");
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::FaultInjected {
                station: ev.station,
                kind: ev.kind.tag(),
            }
        );
        match ev.kind {
            FaultKind::Crash | FaultKind::CrashRecover { .. } => {
                self.on_station_fail(ev.station, now, queue)
            }
            FaultKind::ClockJump { ticks } => self.on_clock_jump(ev.station, ticks, now, queue),
            FaultKind::Jam { power, .. } => {
                let tx = self.tracker.start_jammer(ev.station, power);
                self.jammer_tx.insert(index, tx);
            }
            FaultKind::Partition {
                axis,
                offset,
                atten_db,
                ..
            } => {
                let overlay = self
                    .partition
                    .as_ref()
                    .expect("partition fault without overlay (set_fault_plan checks this)");
                overlay.activate(index, GeoCut { axis, offset }, 10f64.powf(-atten_db / 10.0));
                // Gains changed under live receptions and far-field
                // snapshots: re-derive everything gain-dependent.
                self.tracker.gains_changed();
            }
            FaultKind::Byzantine { mode, .. } => {
                self.byz_active.insert(index, mode);
                if mode == ByzMode::Violator {
                    self.on_byz_step(index, true, now, queue);
                }
            }
            FaultKind::ReactiveJam { budget, duty } => {
                self.rjam.insert(
                    index,
                    RJamState {
                        station: ev.station,
                        since: now,
                        budget_left: budget,
                        duty,
                        spent: Duration::ZERO,
                    },
                );
            }
        }
    }

    /// A partition transient ends: lift the shadowing cut, restore the
    /// severed gains, and re-derive every gain-dependent PHY quantity.
    /// Healing the *routes* is the protocols' job from here — the oracle
    /// reroute was scheduled at prime, local/distributed healing readmits
    /// by hearing across the restored links.
    fn on_partition_heal(&mut self, index: usize, now: Time) {
        let Some(overlay) = self.partition.as_ref() else {
            return;
        };
        overlay.deactivate(index);
        self.tracker.gains_changed();
        self.metrics.partitions_healed += 1;
        self.metrics
            .partition_healed_at
            .add(now.since(Time::ZERO).as_secs_f64());
        parn_sim::counter_inc!("core.partitions_healed");
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::PartitionHealed { index }
        );
    }

    /// One step of a Byzantine violator's rogue cadence: an `on` step
    /// puts an out-of-window emission on the air for one packet airtime
    /// and schedules its end; an off step silences it and schedules the
    /// next burst. The cadence dies silently once the window closes.
    fn on_byz_step(&mut self, index: usize, on: bool, now: Time, queue: &mut EventQueue<Event>) {
        if !self.byz_active.contains_key(&index) {
            // Window closed; ByzOff already silenced any live burst.
            return;
        }
        if on {
            let s = self.cfg.faults.events[index].station;
            if self.alive[s] {
                // Emit at the station's own worst-case protocol power —
                // indistinguishable in strength from honest traffic,
                // wrong only in timing.
                let p = self.stations[s]
                    .routing_neighbors
                    .iter()
                    .map(|&nb| self.power.tx_power(self.gains.gain(nb, s)).value())
                    .fold(0.0f64, f64::max);
                if p > 0.0 {
                    let tx = self.tracker.start_violator(s, PowerW(p));
                    self.byz_tx.insert(index, tx);
                }
            }
            queue.schedule(now + self.airtime, Event::ByzStep { index, on: false });
        } else {
            if let Some(tx) = self.byz_tx.remove(&index) {
                self.tracker.end_transmission(tx);
            }
            // Next rogue burst every fourth slot: frequent enough to
            // collide with scheduled receptions, sparse enough not to
            // degenerate into a plain continuous jammer.
            let gap = Duration(self.cfg.sched.slot.ticks().max(1) * 4);
            queue.schedule(now + gap, Event::ByzStep { index, on: true });
        }
    }

    /// A Byzantine misbehavior window ends: the station reverts to honest
    /// behaviour, and any rogue emission still on the air is silenced.
    fn on_byz_off(&mut self, index: usize) {
        self.byz_active.remove(&index);
        if let Some(tx) = self.byz_tx.remove(&index) {
            self.tracker.end_transmission(tx);
        }
    }

    /// A reactive-jam burst ends: the adversary's transmitter goes quiet.
    fn on_rjam_off(&mut self, seq: u64) {
        if let Some((_, tx)) = self.rjam_active.remove(&seq) {
            self.tracker.end_transmission(tx);
        }
    }

    /// Reactive-jam sensing hook, called as each transmission goes on the
    /// air: every armed adversary whose sensor can hear the sender above
    /// the thermal floor fires one burst of jam air-time against the
    /// reception — if its remaining budget covers the burst and its duty
    /// cap permits.
    fn maybe_reactive_jam(
        &mut self,
        tx_station: StationId,
        p_tx: PowerW,
        rx_station: StationId,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if self.rjam.is_empty() {
            return;
        }
        let airtime = self.airtime;
        let floor = self.cfg.thermal_noise.value();
        let indices: Vec<usize> = self.rjam.keys().copied().collect();
        for index in indices {
            let st = self.rjam[&index];
            if st.budget_left < airtime {
                continue; // budget exhausted: the adversary is spent
            }
            let sensed = self.gains.gain(st.station, tx_station).apply(p_tx).value();
            if st.station == tx_station || sensed <= floor {
                continue; // can't hear the sender (or it IS the sender)
            }
            let elapsed = now.since(st.since) + airtime;
            let spent_after = st.spent + airtime;
            if spent_after.as_secs_f64() > st.duty * elapsed.as_secs_f64() {
                continue; // duty cap: stay quiet until it amortizes
            }
            let seq = self.rjam_seq;
            self.rjam_seq += 1;
            let tx = self.tracker.start_jammer(st.station, self.cfg.max_power);
            self.rjam_active.insert(seq, (index, tx));
            queue.schedule(now + airtime, Event::RJamOff { seq });
            {
                let st = self.rjam.get_mut(&index).expect("armed jammer");
                st.budget_left = st.budget_left.saturating_sub(airtime);
                st.spent = spent_after;
            }
            self.metrics.reactive_jams += 1;
            self.metrics.jam_budget_spent_s += airtime.as_secs_f64();
            parn_sim::counter_inc!("core.reactive_jams");
            parn_sim::trace_event!(
                self.tracer,
                now,
                parn_sim::trace::Level::Warn,
                parn_sim::trace::TraceEvent::ReactiveJamBurst {
                    station: st.station,
                    target: rx_station,
                }
            );
        }
    }

    /// A station goes silent (permanently, or until a scheduled
    /// recovery): its queued and planned packets die with it (accounted
    /// as `StationFailed` drops); in-flight PHY activity is allowed to
    /// drain so the interference bookkeeping stays exact.
    fn on_station_fail(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        if !self.alive[s] {
            return;
        }
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::StationFailed { station: s }
        );
        self.take_down_station(s, now, queue, LossCause::StationFailed);
    }

    /// Shared teardown for crashes and clean departures: the station
    /// leaves the air, its queued and planned packets die with it
    /// (accounted with `cause`), and eviction votes it held lapse.
    fn take_down_station(
        &mut self,
        s: StationId,
        now: Time,
        queue: &mut EventQueue<Event>,
        cause: LossCause,
    ) {
        self.alive[s] = false;
        self.down_since[s] = Some(now);
        let st = &mut self.stations[s];
        let mut lost: Vec<Packet> = Vec::new();
        for (_, q) in std::mem::take(&mut st.queues) {
            lost.extend(q);
        }
        self.track_queue(now, -(lost.len() as f64));
        let st = &mut self.stations[s];
        lost.extend(
            std::mem::take(&mut st.pending_tx)
                .into_values()
                .map(|p| p.packet),
        );
        st.reservations.clear();
        st.attempts.clear();
        st.retry_pending = false;
        // The dead station's own eviction votes lapse with it.
        let voted: Vec<StationId> = st
            .liveness
            .iter()
            .filter(|(_, h)| h.evicted)
            .map(|(&nb, _)| nb)
            .collect();
        st.liveness.clear();
        for p in lost {
            self.settle_drop(&p, cause);
        }
        let mut any_lapsed = false;
        for nb in voted {
            self.evicted_by[nb] -= 1;
            if self.evicted_by[nb] == 0 {
                any_lapsed = true;
                if let Some(t0) = self.recover_mark[nb].take() {
                    self.metrics.time_to_heal.add(now.since(t0).as_secs_f64());
                }
            }
        }
        if any_lapsed && !self.distributed() {
            self.rebuild_routes(now, queue);
        }
    }

    /// A crashed station reboots: fresh clock and schedule (volatile
    /// state is gone), a two-way rejoin handshake re-seeds clock models
    /// on both sides, and stations that planned transmissions against the
    /// pre-reboot schedule re-plan them.
    fn on_station_recover(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        if self.alive[s] {
            return;
        }
        self.metrics.stations_recovered += 1;
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::StationRecovered { station: s }
        );
        self.revive_station(s, now, queue);
    }

    /// Shared power-up for reboots and churn re-admissions: fresh clock
    /// and schedule (volatile state is gone), a two-way rejoin handshake
    /// re-seeding clock models on both sides, routing readmission per the
    /// heal mode, and an arrival-process restart.
    fn revive_station(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        self.alive[s] = true;
        self.boot_epoch[s] += 1;
        self.down_since[s] = None;
        let clock = StationClock::random(&mut self.rng_faults, self.cfg.clock.max_ppm);
        self.clocks[s] = clock;
        self.stations[s].schedule = StationSchedule::new(self.cfg.sched, clock);
        // Rejoin handshake, both ways: the rebooted station re-seeds its
        // models of everything it tracks, and every live station tracking
        // it re-seeds its model (the old one predicts a schedule that no
        // longer exists) and re-plans any transmissions computed with it.
        let s_reading = self.clocks[s].reading(now);
        let tracked: Vec<StationId> = self.stations[s].models.keys().copied().collect();
        for nb in tracked {
            if !self.alive[nb] {
                continue;
            }
            let sample = ClockSample {
                mine: s_reading,
                theirs: self.clocks[nb].reading(now),
            };
            if let Some(m) = self.stations[s].models.get_mut(&nb) {
                m.reset(sample);
            }
        }
        for o in 0..self.stations.len() {
            if o == s || !self.alive[o] {
                continue;
            }
            let mine = self.clocks[o].reading(now);
            if let Some(m) = self.stations[o].models.get_mut(&s) {
                m.reset(ClockSample {
                    mine,
                    theirs: s_reading,
                });
                self.cancel_plans(o, now);
                self.try_schedule(o, now, queue);
            }
        }
        self.recover_mark[s] = if self.cfg.heal.mode == HealMode::Oracle && !self.distributed() {
            Some(now)
        } else {
            // Local/distributed healing only "heals" what some station
            // noticed was broken.
            (self.evicted_by[s] > 0).then_some(now)
        };
        if self.distributed() {
            // Volatile routing state is gone with the reboot.
            self.reset_dv_state(s, now, queue);
        } else if self.cfg.heal.mode == HealMode::Local {
            self.rebuild_routes(now, queue);
        }
        // Restart the arrival process if the pre-crash chain died out.
        if !self.arrivals_live[s] && self.cfg.traffic.arrivals_per_station_per_sec > 0.0 {
            let dt = self.next_interarrival(s, now);
            let next = now + dt;
            if next <= self.end {
                queue.schedule(next, Event::NextArrival { station: s });
                self.arrivals_live[s] = true;
            }
        }
    }

    /// Two-phase PHY move: stash the movers' reception state against the
    /// old geometry, relocate them in the gain backend (and the position
    /// mirror), then re-attach and recompute only the affected receptions
    /// — see `SinrTracker::begin_moves`. `movers` must be ascending.
    fn apply_moves(&mut self, movers: &[StationId], dests: &[Point], now: Time) {
        self.tracker.begin_moves(movers);
        for (&s, &to) in movers.iter().zip(dests) {
            self.gains.relocate(s, to);
            self.positions[s] = to;
        }
        self.tracker.finish_moves();
        self.metrics.station_moves += movers.len() as u64;
        parn_sim::counter_inc!("core.station_moves", movers.len() as u64);
        for &s in movers {
            parn_sim::trace_event!(
                self.tracer,
                now,
                parn_sim::trace::Level::Debug,
                parn_sim::trace::TraceEvent::StationMoved { station: s }
            );
        }
    }

    /// Rebuild the gravity destination sampler over the moved positions.
    /// The sampler is derived state (its draws live in the traffic RNG
    /// stream), so rebuilding it costs no randomness.
    fn rebuild_gravity(&mut self) {
        if self.gravity.is_none() {
            return;
        }
        let exponent = match &self.cfg.traffic.dest {
            DestPolicy::Gravity { exponent } => *exponent,
            _ => return,
        };
        let reach = 1.0 / self.usable_gain.0.sqrt();
        let r_max = (2.0 * self.region_radius).max(2.0 * reach);
        self.gravity = Some(GravitySampler::new(&self.positions, exponent, reach, r_max));
    }

    /// Distributed routing under motion: re-derive the physical link set
    /// from the moved geometry and feed each station's private state the
    /// diff — lost links fail (poisoning routes through them), new links
    /// restore first-hand (hold-down exempt), surviving links re-cost in
    /// place without triggering hold-down.
    fn refresh_dv_after_motion(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        let n = self.stations.len();
        let tx_ok = self.alive.clone();
        let rx_ok: Vec<bool> = (0..n)
            .map(|j| self.alive[j] && self.evicted_by[j] == 0)
            .collect();
        let graph = EnergyGraph::from_model_masked(&*self.gains, self.usable_gain, &tx_ok, &rx_ok);
        for s in 0..n {
            // Keep the readmission baseline at the current geometry, for
            // dead stations too: a later reboot must re-measure today's
            // links, not the boot-time ones.
            self.dv_links[s] = graph.neighbors(s).to_vec();
            if !self.alive[s] {
                continue;
            }
            let fresh: BTreeMap<StationId, f64> = graph.neighbors(s).iter().copied().collect();
            let old: Vec<(StationId, f64)> =
                self.dv[s].links().iter().map(|(&nb, &c)| (nb, c)).collect();
            let mut changed = false;
            for &(nb, c) in &old {
                match fresh.get(&nb) {
                    None => {
                        self.on_link_failed(s, nb, now, queue);
                        changed = true;
                    }
                    Some(&nc) if nc != c => {
                        self.dv[s].update_link_cost(nb, nc);
                        changed = true;
                    }
                    Some(_) => {}
                }
            }
            let mine = self.clocks[s].reading(now);
            for (&nb, &c) in &fresh {
                if old.iter().any(|&(o, _)| o == nb) {
                    continue;
                }
                self.dv[s].restore_link(nb, c);
                // A brand-new link neighbour needs a clock model before
                // any advertisement can be planned to it.
                let theirs = self.clocks[nb].reading(now);
                self.stations[s].models.entry(nb).or_insert_with(|| {
                    RemoteClockModel::from_first_sample(ClockSample { mine, theirs })
                });
                changed = true;
            }
            if changed {
                self.after_dv_change(s, now, queue);
            }
            // Even with the link set unchanged, moved geometry re-costs
            // gains: §7.3 protection and worst-case power re-budget.
            self.refresh_station_routing(s, now, true);
        }
    }

    /// A motion epoch: advance every live station along the configured
    /// model, apply the moves through the two-phase PHY protocol, and
    /// re-derive everything position-dependent (routes, §7.3 protection,
    /// gravity sampling).
    fn on_motion_epoch(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        let Some(mc) = self.cfg.mobility else {
            return;
        };
        let dt = mc.epoch.as_secs_f64();
        let n = self.stations.len();
        let mut movers: Vec<StationId> = Vec::new();
        let mut dests: Vec<Point> = Vec::new();
        for s in 0..n {
            if !self.alive[s] {
                continue;
            }
            let p = self.positions[s];
            let to = match mc.model {
                MobilityModel::RandomWaypoint { speed } => {
                    let step = speed * dt;
                    let target = self.mob_target[s];
                    let (dx, dy) = (target.x - p.x, target.y - p.y);
                    let dist = dx.hypot(dy);
                    if dist <= step {
                        // Arrived: land on the waypoint (the leftover step
                        // is the model's dwell) and draw the next leg's
                        // target for the following epoch.
                        self.mob_target[s] =
                            uniform_in_disk(&mut self.rng_mobility, self.region_radius);
                        target
                    } else {
                        Point::new(p.x + dx / dist * step, p.y + dy / dist * step)
                    }
                }
                MobilityModel::RandomWalk { speed } => {
                    let theta = self.rng_mobility.next_f64() * std::f64::consts::TAU;
                    let step = speed * dt;
                    let (x, y) = (p.x + step * theta.cos(), p.y + step * theta.sin());
                    let r = x.hypot(y);
                    if r > self.region_radius {
                        // Bounded walk: radial clamp to the region rim.
                        let f = self.region_radius / r;
                        Point::new(x * f, y * f)
                    } else {
                        Point::new(x, y)
                    }
                }
            };
            if to != p {
                movers.push(s);
                dests.push(to);
            }
        }
        if !movers.is_empty() {
            self.apply_moves(&movers, &dests, now);
            if self.distributed() {
                self.refresh_dv_after_motion(now, queue);
            } else {
                self.rebuild_routes(now, queue);
            }
            self.rebuild_gravity();
        }
        self.metrics.motion_epochs += 1;
        parn_sim::counter_inc!("core.motion_epochs");
        let next = now + mc.epoch;
        if next <= self.end {
            queue.schedule(next, Event::MotionEpoch);
        }
    }

    /// Injection point of one scheduled churn event.
    fn on_churn_step(&mut self, index: usize, now: Time, queue: &mut EventQueue<Event>) {
        let ev = self.cfg.churn.events[index];
        match ev.kind {
            ChurnKind::Leave { .. } => self.on_station_leave(ev.station, now, queue),
            ChurnKind::Join { pos } => self.on_station_join(ev.station, pos, now, queue),
        }
    }

    /// A clean departure: same teardown as a crash, but the packets that
    /// die with the station are accounted as `Departed`, not failures.
    fn on_station_leave(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        if !self.alive[s] {
            return;
        }
        self.metrics.leaves += 1;
        parn_sim::counter_inc!("core.leaves");
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::StationLeft { station: s }
        );
        self.take_down_station(s, now, queue, LossCause::Departed);
    }

    /// A re-admission at a fresh position: the dormant station relocates
    /// *before* it re-enters the air (any reception still draining at or
    /// from it is recomputed against the new geometry), then powers up
    /// through the shared rejoin path.
    fn on_station_join(
        &mut self,
        s: StationId,
        pos: Point,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if self.alive[s] {
            return;
        }
        self.apply_moves(&[s], &[pos], now);
        self.mob_target[s] = pos;
        self.metrics.joins += 1;
        parn_sim::counter_inc!("core.joins");
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::StationJoined { station: s }
        );
        self.revive_station(s, now, queue);
        if self.distributed() {
            // The joiner moved, so its link set — and its new neighbours'
            // — comes from the current geometry, not the boot-time one.
            self.refresh_dv_after_motion(now, queue);
        }
        self.rebuild_gravity();
    }

    /// A timed-outage departure ends: power back up at the position the
    /// station left from.
    fn on_churn_return(&mut self, s: StationId, now: Time, queue: &mut EventQueue<Event>) {
        if self.alive[s] {
            return;
        }
        self.metrics.joins += 1;
        parn_sim::counter_inc!("core.joins");
        parn_sim::trace_event!(
            self.tracer,
            now,
            parn_sim::trace::Level::Warn,
            parn_sim::trace::TraceEvent::StationJoined { station: s }
        );
        self.revive_station(s, now, queue);
    }

    /// An instantaneous discontinuity in a station's clock. The station
    /// notices its own jump: it rebuilds its schedule, re-plans pending
    /// transmissions, and shifts the "mine" axis of every clock model it
    /// holds. Its *neighbours'* models of it are now stale — that
    /// lingering staleness is the injected fault, healed by resync
    /// (oracle sync), packet headers (piggyback), or evict-and-readmit
    /// (local healing).
    fn on_clock_jump(
        &mut self,
        s: StationId,
        ticks: i64,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.alive[s] {
            return;
        }
        self.clocks[s].offset = self.clocks[s].offset.wrapping_add_signed(ticks);
        let clock = self.clocks[s];
        self.stations[s].schedule = StationSchedule::new(self.cfg.sched, clock);
        self.cancel_plans(s, now);
        for m in self.stations[s].models.values_mut() {
            m.rebase_mine(ticks);
        }
        self.try_schedule(s, now, queue);
    }

    /// A jammer window ends: silence the extra transmitter.
    fn on_jammer_off(&mut self, index: usize) {
        if let Some(tx) = self.jammer_tx.remove(&index) {
            self.tracker.end_transmission(tx);
        }
    }

    /// Cancel every outstanding plan at `o` and put the packets back in
    /// its queues; the caller re-runs the MAC with refreshed clock state.
    /// The orphaned `TxStart` events no-op (their plans are gone).
    fn cancel_plans(&mut self, o: StationId, now: Time) {
        let plans = std::mem::take(&mut self.stations[o].pending_tx);
        if plans.is_empty() {
            return;
        }
        let airtime = self.airtime;
        {
            let st = &mut self.stations[o];
            for plan in plans.values() {
                let end = plan.start + airtime;
                st.reservations
                    .retain(|&(rs, re)| !(rs == plan.start && re == end));
            }
        }
        for (_, plan) in plans {
            self.enqueue_tracked(o, plan.next_hop, plan.packet, now);
        }
    }

    /// Local-healing failure observation: another consecutive failed hop
    /// towards `nh`. Crossing `suspect_after` starts suspicion; staying
    /// suspected past `evict_timeout` evicts the neighbour from the
    /// routing view and repairs routes around it.
    fn observe_hop_failure(
        &mut self,
        s: StationId,
        nh: StationId,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.heal_active() || !self.alive[s] {
            return;
        }
        let suspect_after = self.cfg.heal.suspect_after;
        let evict_timeout = self.cfg.heal.evict_timeout;
        let flap_damping = self.cfg.heal.flap_damping;
        let flap_half_life = self.cfg.heal.flap_half_life;
        let mut suspected = false;
        let mut evicted = false;
        {
            let h = self.stations[s].liveness.entry(nh).or_default();
            if h.evicted {
                return;
            }
            h.consecutive_failures += 1;
            if h.consecutive_failures >= suspect_after {
                match h.suspected_at {
                    None => {
                        h.suspected_at = Some(now);
                        suspected = true;
                    }
                    Some(t0) if now.since(t0) >= evict_timeout => {
                        h.evicted = true;
                        evicted = true;
                        if flap_damping {
                            // Each eviction adds a penalty point to the
                            // decaying flap score; crossing the
                            // suppression threshold keeps the neighbour
                            // out until the score cools off.
                            h.flap_penalty = decayed_penalty(h, now, flap_half_life) + 1.0;
                            h.flap_updated = Some(now);
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        if suspected {
            self.metrics.neighbors_suspected += 1;
            parn_sim::trace_event!(
                self.tracer,
                now,
                parn_sim::trace::Level::Info,
                parn_sim::trace::TraceEvent::NeighborSuspected {
                    observer: s,
                    suspect: nh,
                }
            );
        }
        if evicted {
            self.metrics.neighbors_evicted += 1;
            parn_sim::counter_inc!("core.neighbors_evicted");
            parn_sim::trace_event!(
                self.tracer,
                now,
                parn_sim::trace::Level::Warn,
                parn_sim::trace::TraceEvent::NeighborEvicted {
                    observer: s,
                    evicted: nh,
                }
            );
            self.evicted_by[nh] += 1;
            if self.evicted_by[nh] == 1 {
                // First evictor: this is the network's detection moment.
                if !self.alive[nh] {
                    if let Some(t0) = self.down_since[nh].take() {
                        self.metrics.time_to_detect.add(now.since(t0).as_secs_f64());
                    }
                }
            }
            if self.distributed() {
                // The evictor repairs only its own state; poisoned
                // reverse carries the withdrawal outward.
                self.on_link_failed(s, nh, now, queue);
            } else if self.evicted_by[nh] == 1 {
                self.rebuild_routes(now, queue);
            }
        }
    }

    /// Local-healing liveness observation: `observer` heard `subject`
    /// (received from it, or got the implicit ack of a successful hop to
    /// it). Good standing is restored; if the subject was evicted, the
    /// reachability update floods and every eviction of it lifts.
    fn observe_alive(
        &mut self,
        observer: StationId,
        subject: StationId,
        now: Time,
        queue: &mut EventQueue<Event>,
    ) {
        if !self.heal_active() {
            return;
        }
        let Some(h) = self.stations[observer].liveness.get_mut(&subject) else {
            return;
        };
        h.consecutive_failures = 0;
        h.suspected_at = None;
        if h.evicted {
            self.readmit_everywhere(subject, now, queue);
        }
    }

    /// A station heard an evicted neighbour again: the reachability
    /// update floods (modelled instantly, like the global route rebuild
    /// it triggers), lifting every eviction of `subject` and re-seeding
    /// its former evictors' (possibly reboot-stale) clock models of it.
    fn readmit_everywhere(&mut self, subject: StationId, now: Time, queue: &mut EventQueue<Event>) {
        let theirs = self.clocks[subject].reading(now);
        let flap_damping = self.cfg.heal.flap_damping;
        let flap_suppress = self.cfg.heal.flap_suppress;
        let flap_half_life = self.cfg.heal.flap_half_life;
        let mut lifted: Vec<StationId> = Vec::new();
        let mut suppressed: u64 = 0;
        let mut remaining: u32 = 0;
        for o in 0..self.stations.len() {
            if o == subject || !self.alive[o] {
                continue;
            }
            let mine = self.clocks[o].reading(now);
            let Some(h) = self.stations[o].liveness.get_mut(&subject) else {
                continue;
            };
            if !h.evicted {
                continue;
            }
            if flap_damping && decayed_penalty(h, now, flap_half_life) >= flap_suppress {
                // Flap damping: the neighbour was heard, but its
                // suspect→evict→readmit churn has not cooled off yet —
                // keep this observer's eviction standing until the
                // penalty decays below the threshold.
                suppressed += 1;
                remaining += 1;
                continue;
            }
            h.evicted = false;
            h.consecutive_failures = 0;
            h.suspected_at = None;
            lifted.push(o);
            let sample = ClockSample { mine, theirs };
            match self.stations[o].models.get_mut(&subject) {
                Some(m) => m.reset(sample),
                None => {
                    self.stations[o]
                        .models
                        .insert(subject, RemoteClockModel::from_first_sample(sample));
                }
            }
        }
        self.metrics.neighbors_readmitted += lifted.len() as u64;
        self.metrics.readmissions_suppressed += suppressed;
        self.evicted_by[subject] = remaining;
        if lifted.is_empty() {
            // Every standing eviction was flap-suppressed: nothing
            // changed, so there is nothing to rebuild or advertise.
            return;
        }
        if self.distributed() {
            // The link comes back in each former evictor's own state
            // (first-hand knowledge, exempt from hold-down); the route
            // change propagates by advertisement, and the subject counts
            // as healed when the network next reconverges.
            for o in lifted {
                let Some(&(_, cost)) = self.dv_links[o].iter().find(|&&(nb, _)| nb == subject)
                else {
                    continue;
                };
                self.dv[o].restore_link(subject, cost);
                self.after_dv_change(o, now, queue);
            }
            return;
        }
        if self.evicted_by[subject] == 0 {
            if let Some(t0) = self.recover_mark[subject].take() {
                self.metrics.time_to_heal.add(now.since(t0).as_secs_f64());
            }
        }
        self.rebuild_routes(now, queue);
    }

    /// Rebuild the shared routing table over the currently usable
    /// topology: dead stations drop out entirely; evicted stations
    /// (local healing) stop receiving routed traffic but keep
    /// transmitting their own. Queued packets are re-pointed through the
    /// new table; packets whose destinations became unreachable are
    /// dropped (accounted). This is the *table-based* repair path only —
    /// in [`RouteMode::Distributed`] it is never called after a fault;
    /// reconvergence there is genuine, carried hop by hop through the
    /// advertisement exchange.
    fn rebuild_routes(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        debug_assert!(
            !self.distributed(),
            "rebuild_routes is the oracle repair; Distributed heals by exchange"
        );
        self.metrics.route_repairs += 1;
        parn_sim::counter_inc!("core.route_repairs");
        let n = self.stations.len();
        let tx_ok = self.alive.clone();
        let rx_ok: Vec<bool> = (0..n)
            .map(|j| self.alive[j] && self.evicted_by[j] == 0)
            .collect();
        let graph = EnergyGraph::from_model_masked(&*self.gains, self.usable_gain, &tx_ok, &rx_ok);
        self.routes = match self.cfg.route_mode {
            RouteMode::OneHop => RouteTable::one_hop(&graph),
            RouteMode::Greedy => RouteTable::greedy(&graph, &self.positions),
            _ => RouteTable::centralized(&graph),
        };
        if matches!(self.cfg.traffic.dest, DestPolicy::UniformAll) {
            for s in 0..n {
                self.reachable[s] = if self.alive[s] {
                    (0..n)
                        .filter(|&d| d != s && rx_ok[d] && self.routes.reachable(s, d))
                        .collect()
                } else {
                    Vec::new()
                };
            }
        }
        for s in 0..n {
            if !self.alive[s] {
                continue;
            }
            let rn = self.routes.routing_neighbors(s);
            // Recompute the §7.3 protected set for the new worst-case
            // power — fully, not by filtering the old set: a recovered
            // station must be re-protected, not stay forgotten.
            let max_power_used = rn
                .iter()
                .map(|&nb| self.power.tx_power(self.gains.gain(nb, s)).value())
                .fold(0.0f64, f64::max);
            let mut protected = Vec::new();
            if self.cfg.protection.enabled && max_power_used > 0.0 {
                let thr = parn_phys::Gain(
                    self.cfg.protection.significance_fraction * self.interference_budget.value()
                        / max_power_used,
                );
                protected = self.gains.hearable_by(s, thr);
                protected.retain(|&p| p != s && self.alive[p]);
            }
            // Clock models for any new next hops or protected stations,
            // bootstrapped with a rendezvous now.
            let mine = self.clocks[s].reading(now);
            for &nb in rn.iter().chain(protected.iter()) {
                let theirs = self.clocks[nb].reading(now);
                self.stations[s].models.entry(nb).or_insert_with(|| {
                    RemoteClockModel::from_first_sample(ClockSample { mine, theirs })
                });
            }
            let queued: Vec<Packet> = {
                let st = &mut self.stations[s];
                st.routing_neighbors = rn;
                st.protected = protected;
                std::mem::take(&mut st.queues)
                    .into_values()
                    .flatten()
                    .collect()
            };
            self.track_queue(now, -(queued.len() as f64));
            for p in queued {
                if p.kind == PacketKind::Hello {
                    // Hellos are pinned to their addressee; keep one only
                    // if the addressee is still a direct neighbour, else
                    // let the next hello round regenerate it.
                    if self.routes.next_hop(s, p.dst) == Some(p.dst) {
                        self.enqueue_tracked(s, p.dst, p, now);
                    }
                    continue;
                }
                match self.routes.next_hop(s, p.dst) {
                    Some(next) => self.enqueue_tracked(s, next, p, now),
                    None => self.settle_drop(&p, LossCause::Unroutable),
                }
            }
            self.try_schedule(s, now, queue);
        }
    }

    /// Oracle-mode route repair event: sample detect/heal latencies for
    /// the outages this repair notices, then rebuild. Inert under
    /// distributed routing (and never scheduled there).
    fn on_reroute(&mut self, now: Time, queue: &mut EventQueue<Event>) {
        if self.distributed() {
            return;
        }
        for s in 0..self.stations.len() {
            if !self.alive[s] {
                if let Some(t0) = self.down_since[s].take() {
                    self.metrics.time_to_detect.add(now.since(t0).as_secs_f64());
                }
            } else if let Some(t0) = self.recover_mark[s].take() {
                self.metrics.time_to_heal.add(now.since(t0).as_secs_f64());
            }
        }
        self.rebuild_routes(now, queue);
    }
}

impl Model for Network {
    type Event = Event;

    fn handle(&mut self, now: Time, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::NextArrival { station } => self.on_arrival(station, now, queue),
            Event::MacRetry { station } => {
                self.stations[station].retry_pending = false;
                self.try_schedule(station, now, queue);
            }
            Event::TxStart { station } => self.on_tx_start(station, now, queue),
            Event::TxEnd {
                station,
                tx,
                rx,
                packet,
                next_hop,
                tx_epoch,
                rx_epoch,
            } => self.on_tx_end(
                station, tx, rx, packet, next_hop, tx_epoch, rx_epoch, now, queue,
            ),
            Event::Resync => self.on_resync(now, queue),
            Event::HelloRound { station } => self.on_hello_round(station, now, queue),
            Event::Fault { index } => self.on_fault(index, now, queue),
            Event::StationRecover { station } => self.on_station_recover(station, now, queue),
            Event::JammerOff { index } => self.on_jammer_off(index),
            Event::PartitionHeal { index } => self.on_partition_heal(index, now),
            Event::ByzStep { index, on } => self.on_byz_step(index, on, now, queue),
            Event::ByzOff { index } => self.on_byz_off(index),
            Event::RJamOff { seq } => self.on_rjam_off(seq),
            Event::RetryRelease {
                station,
                packet,
                epoch,
            } => self.on_retry_release(station, packet, epoch, now, queue),
            Event::Reroute => self.on_reroute(now, queue),
            Event::RouteUpdateRound { station, periodic } => {
                self.on_route_update_round(station, periodic, now, queue)
            }
            Event::ConvergenceCheck => self.on_convergence_check(now, queue),
            Event::MotionEpoch => self.on_motion_epoch(now, queue),
            Event::ChurnStep { index } => self.on_churn_step(index, now, queue),
            Event::ChurnReturn { station } => self.on_churn_return(station, now, queue),
        }
    }
}

/// Small helper: `pop_front` that tolerates being called through
/// `and_then`.
trait VecDequeFront<T> {
    fn pop_front_checked(&mut self) -> Option<T>;
}
impl<T> VecDequeFront<T> for std::collections::VecDeque<T> {
    fn pop_front_checked(&mut self) -> Option<T> {
        self.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(n: usize, seed: u64) -> NetConfig {
        let mut cfg = NetConfig::paper_default(n, seed);
        cfg.run_for = Duration::from_secs(6);
        cfg.warmup = Duration::from_secs(1);
        cfg.traffic.arrivals_per_station_per_sec = 1.0;
        cfg
    }

    #[test]
    fn small_network_delivers_without_collisions() {
        let m = Network::run(small_cfg(30, 42));
        assert!(m.generated > 50, "generated {}", m.generated);
        assert!(m.delivered > 0, "nothing delivered");
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert_eq!(m.schedule_violations, 0, "{}", m.summary());
        assert!(m.hop_success_rate() > 0.999, "{}", m.summary());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Network::run(small_cfg(20, 7));
        let b = Network::run(small_cfg(20, 7));
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.hop_attempts, b.hop_attempts);
        assert!((a.e2e_delay.mean() - b.e2e_delay.mean()).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Network::run(small_cfg(20, 1));
        let b = Network::run(small_cfg(20, 2));
        assert_ne!(
            (a.generated, a.delivered),
            (b.generated, b.delivered),
            "two seeds produced identical runs"
        );
    }

    #[test]
    fn neighbor_traffic_is_single_hop() {
        let mut cfg = small_cfg(25, 5);
        cfg.traffic.dest = DestPolicy::Neighbors;
        let m = Network::run(cfg);
        assert!(m.delivered > 0);
        assert!((m.hops_per_packet.mean() - 1.0).abs() < 1e-9);
        assert_eq!(m.collision_losses(), 0);
    }

    #[test]
    fn gravity_traffic_is_multihop_and_conserved() {
        let mut cfg = small_cfg(60, 19);
        cfg.traffic.dest = DestPolicy::Gravity { exponent: 2.0 };
        let m = Network::run(cfg);
        assert!(m.generated > 50, "{}", m.summary());
        assert!(m.delivered > 0, "{}", m.summary());
        // Distance-weighted destinations must actually exercise relaying.
        assert!(
            m.hops_per_packet.mean() > 1.2,
            "mean hops {}",
            m.hops_per_packet.mean()
        );
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
    }

    #[test]
    fn gravity_over_greedy_routes_at_scale_shape() {
        // The metro-scale pairing: greedy geographic forwarding carrying
        // gravity traffic, no dense table anywhere.
        let mut cfg = small_cfg(60, 23);
        cfg.traffic.dest = DestPolicy::Gravity { exponent: 2.0 };
        cfg.route_mode = RouteMode::Greedy;
        let m = Network::run(cfg);
        assert!(m.delivered > 0, "{}", m.summary());
        assert!(m.hops_per_packet.mean() > 1.2, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
    }

    #[test]
    fn hotspot_traffic_concentrates_on_sinks() {
        let mut cfg = small_cfg(40, 29);
        cfg.traffic.dest = DestPolicy::Hotspot {
            sinks: 3,
            skew: 1.0,
        };
        let m = Network::run(cfg);
        assert!(m.delivered > 0, "{}", m.summary());
        let sink_rx: u64 = m.per_station_delivered[..3].iter().sum();
        let other_rx: u64 = m.per_station_delivered[3..].iter().sum();
        assert_eq!(other_rx, 0, "non-sink stations received final traffic");
        assert!(sink_rx > 0);
        // Zipf skew: sink 0 is the most popular.
        assert!(
            m.per_station_delivered[0] >= m.per_station_delivered[2],
            "sink 0 {} < sink 2 {}",
            m.per_station_delivered[0],
            m.per_station_delivered[2]
        );
        assert!(m.conservation_holds(), "{}", m.summary());
    }

    #[test]
    fn onoff_source_preserves_mean_rate_but_bursts() {
        let mut steady = small_cfg(30, 31);
        steady.run_for = Duration::from_secs(12);
        let mut bursty = steady.clone();
        bursty.traffic.source = SourceModel::OnOff {
            on_mean_s: 0.3,
            off_mean_s: 0.9,
        };
        let ms = Network::run(steady);
        let mb = Network::run(bursty);
        // Same long-run mean arrival rate (within Poisson noise)...
        let ratio = mb.generated as f64 / ms.generated as f64;
        assert!((0.7..1.3).contains(&ratio), "rate ratio {ratio}");
        // ...but clumped arrivals queue deeper.
        assert!(
            mb.peak_queue_depth >= ms.peak_queue_depth,
            "burst peak {} < steady peak {}",
            mb.peak_queue_depth,
            ms.peak_queue_depth
        );
        assert_eq!(mb.collision_losses(), 0, "{}", mb.summary());
        assert!(mb.conservation_holds(), "{}", mb.summary());
    }

    #[test]
    fn flows_policy_routes_specific_pairs() {
        let mut cfg = small_cfg(12, 9);
        cfg.traffic.dest = DestPolicy::Flows(vec![(0, 5), (3, 8)]);
        let m = Network::run(cfg);
        assert!(m.generated > 0);
        assert!(m.delivered > 0);
    }

    #[test]
    fn delays_exceed_scheduling_wait_floor() {
        // Mean per-hop wait must be ≥ 1 slot-ish; e2e delay at least that.
        let m = Network::run(small_cfg(30, 11));
        let mean_wait = m.hop_wait_slots.mean().expect("no waits recorded");
        assert!(mean_wait > 0.5, "mean wait {mean_wait} slots");
        assert!(m.e2e_delay.mean() > 0.005, "e2e {}", m.e2e_delay.mean());
    }

    #[test]
    fn zero_traffic_runs_clean() {
        let mut cfg = small_cfg(10, 3);
        cfg.traffic.arrivals_per_station_per_sec = 0.0;
        let m = Network::run(cfg);
        assert_eq!(m.generated, 0);
        assert_eq!(m.delivered, 0);
        assert_eq!(m.total_losses(), 0);
    }

    #[test]
    fn clock_drift_tolerated_with_guard() {
        let mut cfg = small_cfg(20, 13);
        cfg.clock.max_ppm = 100.0;
        let m = Network::run(cfg);
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert_eq!(m.schedule_violations, 0);
        assert!(m.delivered > 0);
    }

    #[test]
    fn station_failure_is_survived_and_accounted() {
        let mut cfg = small_cfg(40, 17);
        cfg.run_for = Duration::from_secs(12);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.faults =
            FaultPlan::crashes([(Duration::from_secs(4), 3), (Duration::from_secs(4), 11)]);
        let m = Network::run(cfg);
        // Traffic keeps flowing after the heal.
        assert!(m.delivered > 100, "{}", m.summary());
        // The scheme itself stays collision-free throughout.
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert_eq!(m.schedule_violations, 0);
        assert_eq!(m.faults_injected, 2);
        assert!(m.time_to_detect.count() == 2, "{}", m.summary());
        // Every undelivered packet is accounted: both ledgers balance
        // exactly.
        assert!(m.conservation_holds(), "{}", m.summary());
        assert!(m.delivered + m.total_drops() <= m.generated);
        assert_eq!(
            m.hop_attempts,
            m.hop_successes + m.total_losses(),
            "{}",
            m.summary()
        );
        // Losses carry failure-related causes only; drops settle as
        // holder-death, unroutability, or an exhausted retry budget.
        for (cause, count) in &m.losses {
            assert!(
                matches!(cause, crate::packet::LossCause::StationFailed) || *count == 0,
                "unexpected loss cause {cause:?} x{count}"
            );
        }
        for (cause, count) in &m.drops {
            assert!(
                matches!(
                    cause,
                    crate::packet::LossCause::StationFailed
                        | crate::packet::LossCause::Unroutable
                        | crate::packet::LossCause::RetriesExhausted
                ) || *count == 0,
                "unexpected drop cause {cause:?} x{count}"
            );
        }
    }

    #[test]
    fn failure_of_a_relay_reroutes_traffic() {
        // Find a heavily-used relay and kill it; deliveries must continue.
        let mut cfg = small_cfg(40, 19);
        cfg.run_for = Duration::from_secs(14);
        let probe = Network::new(cfg.clone());
        // Busiest relay = station with most routing dependents.
        let deps = probe.routing_dependent_counts();
        let relay = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        assert!(deps[relay] > 0, "probe found no relay at all");
        cfg.faults = FaultPlan::none().crash(Duration::from_secs(5), relay);
        let m = Network::run(cfg);
        assert!(m.delivered > 100, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0);
    }

    #[test]
    fn crash_recover_rejoins_and_heals() {
        let mut cfg = small_cfg(40, 21);
        cfg.run_for = Duration::from_secs(14);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.faults =
            FaultPlan::none().crash_recover(Duration::from_secs(4), 7, Duration::from_secs(3));
        let m = Network::run(cfg);
        assert_eq!(m.stations_recovered, 1, "{}", m.summary());
        assert!(m.time_to_heal.count() > 0, "{}", m.summary());
        assert!(m.delivered > 100, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn local_heal_detects_evicts_and_readmits() {
        let mut cfg = small_cfg(40, 19);
        cfg.run_for = Duration::from_secs(16);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.heal = crate::faults::HealConfig::local();
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let relay = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        cfg.faults =
            FaultPlan::none().crash_recover(Duration::from_secs(4), relay, Duration::from_secs(4));
        let m = Network::run(cfg);
        assert!(m.neighbors_evicted > 0, "{}", m.summary());
        assert!(m.neighbors_readmitted > 0, "{}", m.summary());
        assert!(m.time_to_detect.count() > 0, "{}", m.summary());
        assert!(m.time_to_heal.count() > 0, "{}", m.summary());
        assert!(m.delivered > 100, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn jammer_losses_are_attributed_not_collisions() {
        let mut cfg = small_cfg(40, 23);
        cfg.run_for = Duration::from_secs(12);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let anchor = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        cfg.faults = FaultPlan::none().jam(
            Duration::from_secs(4),
            anchor,
            Duration::from_secs(2),
            parn_phys::PowerW(0.01),
        );
        let m = Network::run(cfg);
        let jammed = m
            .losses
            .get(&crate::packet::LossCause::Jammed)
            .copied()
            .unwrap_or(0);
        assert!(
            jammed > 0,
            "jammer caused no attributed losses: {}",
            m.summary()
        );
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn partition_severs_heals_and_accounts_exactly() {
        let mut cfg = small_cfg(40, 33);
        cfg.run_for = Duration::from_secs(14);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        // A vertical shadowing cut through the middle of the disk from
        // 4 s to 8 s: regions sever without any station dying.
        cfg.faults = FaultPlan::none().partition(
            Duration::from_secs(4),
            crate::faults::CutAxis::Vertical,
            0.0,
            40.0,
            Duration::from_secs(4),
        );
        let m = Network::run(cfg);
        assert_eq!(m.faults_injected, 1, "{}", m.summary());
        assert_eq!(m.partitions_healed, 1, "{}", m.summary());
        assert_eq!(m.partition_healed_at.count(), 1);
        assert!(
            (m.partition_healed_at.mean() - 8.0).abs() < 1e-9,
            "healed at {}",
            m.partition_healed_at.mean()
        );
        assert!(m.delivered > 100, "{}", m.summary());
        // Unlike every static-topology scenario, a shadowing transient can
        // legitimately produce collisions: transmissions planned under one
        // gain field land under another (receptions in flight when the cut
        // activates lose their link budget, and for the reroute-delay
        // window after the heal stations still honour cut-era routes and
        // §7.3 protected sets). The no-collision guarantee is a property
        // of a static field; what must survive a partition is exact
        // accounting, not zero collisions.
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
        // No station died: every loss is environmental, none fatal.
        assert_eq!(m.stations_recovered, 0);
    }

    #[test]
    fn partition_plan_must_be_set_before_build() {
        let cfg = small_cfg(20, 3);
        let mut net = Network::new(cfg);
        let plan = FaultPlan::none().partition(
            Duration::from_secs(1),
            crate::faults::CutAxis::Horizontal,
            0.0,
            30.0,
            Duration::from_secs(1),
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.set_fault_plan(plan);
        }));
        assert!(err.is_err(), "late partition plan must be rejected");
    }

    #[test]
    fn violator_losses_are_attributed_not_collisions() {
        let mut cfg = small_cfg(40, 23);
        cfg.run_for = Duration::from_secs(12);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let rogue = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        cfg.faults = FaultPlan::none().byzantine(
            Duration::from_secs(4),
            rogue,
            ByzMode::Violator,
            Duration::from_secs(4),
        );
        let m = Network::run(cfg);
        let violations = m
            .losses
            .get(&crate::packet::LossCause::Violation)
            .copied()
            .unwrap_or(0);
        assert!(
            violations > 0,
            "violator caused no attributed losses: {}",
            m.summary()
        );
        assert!(m.violations_detected > 0);
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn poisoner_is_detected_and_neutralized() {
        let mut cfg = small_cfg(40, 29);
        cfg.run_for = Duration::from_secs(14);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.route_mode = RouteMode::Distributed;
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let rogue = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        cfg.faults = FaultPlan::none().byzantine(
            Duration::from_secs(4),
            rogue,
            ByzMode::Poisoner,
            Duration::from_secs(4),
        );
        let m = Network::run(cfg);
        assert!(
            m.violations_detected > 0,
            "no poisoned advertisements rejected: {}",
            m.summary()
        );
        // The defense holds: poisoned claims never enter routing state,
        // so delivery survives and the books stay exact.
        assert!(m.delivered > 100, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn reactive_jammer_respects_budget_and_is_attributed() {
        let mut cfg = small_cfg(40, 23);
        cfg.run_for = Duration::from_secs(12);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let anchor = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        let budget = Duration::from_millis(250);
        cfg.faults = FaultPlan::none().reactive_jam(Duration::from_secs(3), anchor, budget, 0.5);
        let m = Network::run(cfg);
        assert!(m.reactive_jams > 0, "jammer never fired: {}", m.summary());
        assert!(
            m.jam_budget_spent_s <= budget.as_secs_f64() + 1e-9,
            "budget exceeded: spent {} of {}",
            m.jam_budget_spent_s,
            budget.as_secs_f64()
        );
        let jammed = m
            .losses
            .get(&crate::packet::LossCause::Jammed)
            .copied()
            .unwrap_or(0);
        assert!(jammed > 0, "bursts caused no losses: {}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn flap_damping_suppresses_jammer_driven_oscillation() {
        // A train of short, nearly-saturating reactive-jam bursts with
        // quiet gaps between them: each burst drives the trigger-happy
        // local healer to evict, each gap lets the neighbourhood be heard
        // and readmitted — classic route flapping. Flap damping holds the
        // eviction once the same observer has cycled the same neighbour
        // twice inside the half-life, so the readmission count drops and
        // suppressions appear.
        let run = |damping: bool| {
            let mut cfg = small_cfg(40, 23);
            cfg.run_for = Duration::from_secs(16);
            cfg.traffic.arrivals_per_station_per_sec = 2.0;
            cfg.heal = crate::faults::HealConfig::local();
            // Hello beacons + gossip give evictors a way to hear an
            // evicted neighbour again during the quiet gaps — without
            // them readmission depends on lucky traffic direction.
            cfg.clock.sync = crate::config::SyncMode::Piggyback {
                hello_interval: Duration::from_millis(250),
            };
            cfg.heal.suspect_after = 2;
            cfg.heal.evict_timeout = Duration::from_millis(40);
            cfg.heal.flap_damping = damping;
            // 1.5: a second eviction of the same neighbour within the
            // half-life is enough to hold the door shut (a fresh penalty
            // of 1+decayed tops out at 2.0 and decays from there, so a
            // threshold of 2.0 would demand three rapid-fire evictions).
            cfg.heal.flap_suppress = 1.5;
            cfg.heal.flap_half_life = Duration::from_secs(4);
            let probe = Network::new(cfg.clone());
            let deps = probe.routing_dependent_counts();
            let anchor = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
            let mut plan = FaultPlan::none();
            for burst in 0..4 {
                plan = plan.reactive_jam(
                    Duration::from_secs(2 + 2 * burst),
                    anchor,
                    Duration::from_millis(300),
                    0.95,
                );
            }
            cfg.faults = plan;
            Network::run(cfg)
        };
        let plain = run(false);
        let damped = run(true);
        assert_eq!(plain.readmissions_suppressed, 0);
        assert!(
            plain.neighbors_readmitted > 2,
            "jammer caused no readmission churn to damp: {}",
            plain.summary()
        );
        assert!(
            damped.readmissions_suppressed > 0,
            "damping never suppressed a readmission: {}",
            damped.summary()
        );
        assert!(
            damped.neighbors_readmitted < plain.neighbors_readmitted,
            "readmission churn not reduced: {} -> {}",
            plain.neighbors_readmitted,
            damped.neighbors_readmitted
        );
        for m in [&plain, &damped] {
            assert!(m.conservation_holds(), "{}", m.summary());
            assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
        }
    }

    #[test]
    fn clock_jump_survives_with_accounting_intact() {
        let mut cfg = small_cfg(40, 27);
        cfg.run_for = Duration::from_secs(12);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.faults = FaultPlan::none().clock_jump(Duration::from_secs(4), 5, 2_500_000);
        let m = Network::run(cfg);
        assert_eq!(m.faults_injected, 1);
        assert!(m.delivered > 100, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
    }

    #[test]
    fn shadowed_propagation_still_collision_free() {
        let mut cfg = small_cfg(50, 23);
        cfg.shadowing_sigma_db = 8.0;
        // Shadowing can partition the graph; lower the usable bar a bit by
        // reaching farther.
        cfg.reach_factor = 3.0;
        let m = Network::run(cfg);
        assert!(m.delivered > 50, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert_eq!(m.schedule_violations, 0);
    }

    #[test]
    fn occupancy_metrics_are_sane() {
        let mut cfg = small_cfg(40, 47);
        cfg.traffic.arrivals_per_station_per_sec = 6.0;
        let m = Network::run(cfg);
        // Under load, queues are nonempty on average and bounded by
        // something sane; concurrency shows spatial reuse (> 1 tx at once
        // on average in a 40-station disk).
        assert!(m.mean_queue_depth > 0.1, "queue {}", m.mean_queue_depth);
        assert!(m.peak_queue_depth >= m.mean_queue_depth);
        assert!(
            m.mean_concurrent_tx > 1.0,
            "no spatial reuse? {}",
            m.mean_concurrent_tx
        );
        // Idle network: both near zero.
        let mut idle = small_cfg(10, 48);
        idle.traffic.arrivals_per_station_per_sec = 0.05;
        let mi = Network::run(idle);
        assert!(
            mi.mean_queue_depth < 0.5,
            "idle queue {}",
            mi.mean_queue_depth
        );
        assert!(mi.mean_concurrent_tx < 0.5);
    }

    #[test]
    fn tracer_records_mac_and_phy_events() {
        let mut cfg = small_cfg(12, 41);
        cfg.run_for = Duration::from_secs(2);
        cfg.warmup = Duration::from_millis(100);
        let mut net = Network::new(cfg).with_tracer(parn_sim::trace::Tracer::new(
            4096,
            parn_sim::trace::Level::Debug,
        ));
        let mut q = parn_sim::EventQueue::new();
        net.prime(&mut q);
        let end = Time::ZERO + Duration::from_secs(2);
        parn_sim::run(&mut net, &mut q, end);
        let mac_events = net.tracer().by_category("mac").len();
        let phy_events = net.tracer().by_category("phy").len();
        assert!(mac_events > 10, "no MAC events traced ({mac_events})");
        assert!(phy_events > 10, "no PHY events traced ({phy_events})");
        // Every PHY record is a typed hop outcome between valid stations.
        let n = net.alive.len();
        for r in net.tracer().by_category("phy") {
            match r.event {
                parn_sim::trace::TraceEvent::HopOutcome { src, dst, .. } => {
                    assert!(src < n && dst < n, "odd phy record: {}", r.event);
                }
                ref other => panic!("odd phy record: {other:?}"),
            }
        }
    }

    #[test]
    fn piggyback_sync_stays_collision_free_under_drift() {
        // The realistic maintenance mode: no oracle exchanges after boot,
        // clock models fed only by packet headers and hello beacons.
        let mut cfg = small_cfg(40, 37);
        cfg.clock.sync = crate::config::SyncMode::Piggyback {
            hello_interval: Duration::from_secs(2),
        };
        cfg.clock.max_ppm = 100.0;
        cfg.run_for = Duration::from_secs(12);
        let m = Network::run(cfg);
        assert!(m.delivered > 100, "{}", m.summary());
        assert!(m.hellos_sent > 100, "hellos {}", m.hellos_sent);
        assert!(m.hellos_received > 0);
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert_eq!(m.schedule_violations, 0, "{}", m.summary());
    }

    #[test]
    fn piggyback_hellos_cost_airtime() {
        let mk = |sync| {
            let mut cfg = small_cfg(30, 39);
            cfg.traffic.arrivals_per_station_per_sec = 0.5;
            cfg.clock.sync = sync;
            Network::run(cfg)
        };
        let oracle = mk(crate::config::SyncMode::Oracle);
        let piggy = mk(crate::config::SyncMode::Piggyback {
            hello_interval: Duration::from_millis(500),
        });
        let air = |m: &crate::metrics::Metrics| m.tx_airtime.iter().sum::<f64>();
        assert_eq!(oracle.hellos_sent, 0);
        assert!(piggy.hellos_sent > 0);
        assert!(
            air(&piggy) > air(&oracle) * 1.2,
            "hello overhead invisible: {} vs {}",
            air(&piggy),
            air(&oracle)
        );
        assert_eq!(piggy.collision_losses(), 0);
    }

    #[test]
    fn distributed_routing_runs_clean() {
        let mut cfg = small_cfg(40, 31);
        cfg.route_mode = RouteMode::Distributed;
        let m = Network::run(cfg);
        assert!(m.delivered > 100, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        // Costs agree with the centralized computation even if tie-broken
        // paths differ.
        let mut c_cfg = small_cfg(40, 31);
        c_cfg.route_mode = RouteMode::Centralized;
        let dist = Network::new({
            let mut c = small_cfg(40, 31);
            c.route_mode = RouteMode::Distributed;
            c
        });
        let cent = Network::new(c_cfg);
        for s in 0..40 {
            for d in 0..40 {
                let (a, b) = (dist.routes().cost(s, d), cent.routes().cost(s, d));
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-9, "{s}->{d}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn idle_neighbor_crash_detected_without_data_traffic() {
        // ROADMAP item 2 (piggyback liveness): with zero data traffic,
        // hello beacons and their gossip are the only liveness evidence.
        // A crashed station must still be suspected, evicted, and — once
        // it reboots and beacons again — readmitted.
        let mut cfg = small_cfg(30, 53);
        cfg.run_for = Duration::from_secs(16);
        cfg.traffic.arrivals_per_station_per_sec = 0.0;
        cfg.heal = crate::faults::HealConfig::local();
        cfg.clock.sync = crate::config::SyncMode::Piggyback {
            hello_interval: Duration::from_millis(500),
        };
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let relay = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        cfg.faults =
            FaultPlan::none().crash_recover(Duration::from_secs(4), relay, Duration::from_secs(5));
        let m = Network::run(cfg);
        assert_eq!(m.generated, 0, "test must run without data traffic");
        assert!(m.neighbors_suspected > 0, "{}", m.summary());
        assert!(m.neighbors_evicted > 0, "{}", m.summary());
        assert!(m.time_to_detect.count() > 0, "{}", m.summary());
        assert!(m.neighbors_readmitted > 0, "{}", m.summary());
        assert_eq!(m.stations_recovered, 1);
    }

    #[test]
    fn hello_gossip_spreads_liveness_evidence() {
        // Hellos under local healing carry last-heard gossip; receivers
        // adopt newer timestamps, so second-hand evidence spreads beyond
        // direct hearing range.
        let mut cfg = small_cfg(30, 57);
        cfg.run_for = Duration::from_secs(8);
        cfg.heal = crate::faults::HealConfig::local();
        cfg.clock.sync = crate::config::SyncMode::Piggyback {
            hello_interval: Duration::from_millis(500),
        };
        let mut net = Network::new(cfg);
        let mut q = parn_sim::EventQueue::new();
        net.prime(&mut q);
        let end = net.end;
        parn_sim::run(&mut net, &mut q, end);
        // Some station knows about a station it has no direct link to —
        // knowledge that can only have arrived as gossip.
        let gossiped = (0..net.len()).any(|s| {
            let links: std::collections::BTreeSet<StationId> = net
                .gains
                .hearable_by(s, net.usable_gain)
                .into_iter()
                .collect();
            net.stations[s]
                .last_heard
                .keys()
                .any(|x| *x != s && !links.contains(x))
        });
        assert!(gossiped, "no second-hand liveness knowledge spread");
    }

    #[test]
    fn distributed_mode_heals_by_exchange_not_rebuild() {
        // The tentpole acceptance: after a crash and recovery in
        // Distributed mode, no global recompute ever runs — healing is
        // carried entirely by per-station eviction, poisoned reverse,
        // and readmission advertisements. `time_to_heal` then measures
        // genuine propagation + reconvergence and must be nonzero.
        let mut cfg = small_cfg(40, 59);
        cfg.run_for = Duration::from_secs(20);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.route_mode = RouteMode::Distributed;
        let probe = Network::new(cfg.clone());
        let deps = probe.routing_dependent_counts();
        let relay = (0..deps.len()).max_by_key(|&s| deps[s]).unwrap();
        cfg.faults =
            FaultPlan::none().crash_recover(Duration::from_secs(5), relay, Duration::from_secs(5));
        let m = Network::run(cfg.clone());
        assert_eq!(m.route_repairs, 0, "{}", m.summary());
        assert!(m.route_updates_sent > 0, "{}", m.summary());
        assert!(m.route_updates_received > 0, "{}", m.summary());
        assert!(m.neighbors_evicted > 0, "{}", m.summary());
        assert!(m.converged_at.count() > 0, "no convergence episode closed");
        assert!(m.time_to_detect.count() > 0, "{}", m.summary());
        assert!(m.time_to_heal.count() > 0, "{}", m.summary());
        assert!(
            m.time_to_heal.mean() > 0.0,
            "heal time not positive: {}",
            m.time_to_heal.mean()
        );
        assert!(m.delivered > 100, "{}", m.summary());
        assert_eq!(m.collision_losses(), 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
        // Seed-deterministic, including the heal-latency samples.
        let m2 = Network::run(cfg);
        assert_eq!(m.delivered, m2.delivered);
        assert_eq!(m.route_updates_sent, m2.route_updates_sent);
        assert!((m.time_to_heal.mean() - m2.time_to_heal.mean()).abs() < 1e-12);
    }

    #[test]
    fn shadowing_changes_topology_deterministically() {
        let a_cfg = {
            let mut c = small_cfg(30, 29);
            c.shadowing_sigma_db = 8.0;
            c
        };
        let a = Network::new(a_cfg.clone());
        let b = Network::new(a_cfg);
        let c_cfg = small_cfg(30, 29);
        let c = Network::new(c_cfg);
        // Same config => identical gains; shadowing off => different gains.
        assert_eq!(a.gains().gain(0, 1), b.gains().gain(0, 1));
        assert_ne!(a.gains().gain(0, 1), c.gains().gain(0, 1));
    }

    #[test]
    fn mobility_run_moves_stations_and_conserves() {
        use crate::mobility::{MobilityConfig, MobilityModel};
        let mut cfg = small_cfg(30, 83);
        cfg.mobility = Some(MobilityConfig {
            model: MobilityModel::RandomWaypoint { speed: 10.0 },
            epoch: Duration::from_millis(200),
        });
        let m = Network::run(cfg.clone());
        assert!(m.motion_epochs > 10, "{}", m.summary());
        assert!(m.station_moves > 0, "{}", m.summary());
        assert!(m.delivered > 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
        // Motion draws come from their own substream, deterministically.
        let m2 = Network::run(cfg);
        assert_eq!(m.delivered, m2.delivered);
        assert_eq!(m.station_moves, m2.station_moves);
    }

    #[test]
    fn mobility_config_absent_means_no_motion() {
        let m = Network::run(small_cfg(20, 3));
        assert_eq!(m.motion_epochs, 0);
        assert_eq!(m.station_moves, 0);
        assert_eq!(m.leaves, 0);
        assert_eq!(m.joins, 0);
    }

    #[test]
    fn churn_departures_account_as_departed_and_conserve() {
        use crate::mobility::ChurnPlan;
        let mut cfg = small_cfg(30, 11);
        cfg.run_for = Duration::from_secs(8);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        cfg.churn = ChurnPlan::none()
            .leave_for(Duration::from_secs(2), 3, Duration::from_secs(2))
            .leave(Duration::from_secs(3), 7);
        let m = Network::run(cfg.clone());
        assert_eq!(m.leaves, 2, "{}", m.summary());
        assert_eq!(m.joins, 1, "{}", m.summary());
        assert!(m.delivered > 0, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
        assert_eq!(m.hop_attempts, m.hop_successes + m.total_losses());
        let m2 = Network::run(cfg);
        assert_eq!(m.delivered, m2.delivered);
        assert_eq!(m.total_drops(), m2.total_drops());
    }

    #[test]
    fn churn_join_readmits_at_new_position() {
        use crate::mobility::ChurnPlan;
        let mut cfg = small_cfg(30, 47);
        cfg.run_for = Duration::from_secs(10);
        cfg.traffic.arrivals_per_station_per_sec = 2.0;
        // Station 5 departs, then is readmitted across the region.
        cfg.churn = ChurnPlan::none().leave(Duration::from_secs(2), 5).join(
            Duration::from_secs(4),
            5,
            Point::new(10.0, -8.0),
        );
        let mut net = Network::new(cfg);
        let end = net.end;
        let mut queue = EventQueue::new();
        net.prime(&mut queue);
        parn_sim::run(&mut net, &mut queue, end);
        assert!(net.alive[5]);
        let p = net.positions[5];
        assert!((p.x - 10.0).abs() < 1e-12 && (p.y + 8.0).abs() < 1e-12);
        let m = net.finish();
        assert_eq!(m.leaves, 1, "{}", m.summary());
        assert_eq!(m.joins, 1, "{}", m.summary());
        assert!(m.conservation_holds(), "{}", m.summary());
    }

    #[test]
    fn greedy_rebuild_tracks_moved_positions() {
        use crate::mobility::{MobilityConfig, MobilityModel};
        let mut cfg = small_cfg(40, 77);
        cfg.route_mode = RouteMode::Greedy;
        cfg.mobility = Some(MobilityConfig {
            model: MobilityModel::RandomWaypoint { speed: 40.0 },
            epoch: Duration::from_millis(200),
        });
        let mut net = Network::new(cfg);
        let mut queue = EventQueue::new();
        net.prime(&mut queue);
        let before = net.positions.clone();
        // First epoch draws waypoints; the second produces real moves.
        let t1 = Time::ZERO + Duration::from_millis(200);
        net.on_motion_epoch(t1, &mut queue);
        let t2 = t1 + Duration::from_millis(200);
        net.on_motion_epoch(t2, &mut queue);
        assert_ne!(net.positions, before, "nobody moved");
        // Greedy forwarding must be computed over the *post-move*
        // geometry: the live table has to agree with one rebuilt from
        // scratch over the current positions.
        let graph = EnergyGraph::from_model(&*net.gains, net.usable_gain);
        let fresh = RouteTable::greedy(&graph, &net.positions);
        let n = net.len();
        for s in 0..n {
            for d in 0..n {
                assert_eq!(
                    net.routes.next_hop(s, d),
                    fresh.next_hop(s, d),
                    "stale greedy hop at {s}->{d}"
                );
            }
        }
    }
}
