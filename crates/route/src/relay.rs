//! Geometric properties of minimum-energy routes (§6.2, Figure 3).
//!
//! With `1/r²` loss and power control, "minimum-energy routing will always
//! take the intermediate hop if it lies within the circle which has a
//! diameter with endpoints at Station A and Station C". The contrapositive
//! is checkable on any computed route: no station may sit strictly inside
//! the diameter-circle of a hop the route chose to take directly.

use crate::table::RouteTable;
use parn_phys::geom::Disk;
use parn_phys::Point;
use parn_sim::Rng;

/// Check the diameter-circle property for every hop of every route in the
/// table: returns the first violation `(src, dst, hop_from, hop_to,
/// violator)` if any station strictly beats the direct hop as a relay
/// (which would mean minimum-energy routing skipped a cheaper relay).
///
/// For `1/r²` loss without a near-field clamp this is exactly "no station
/// strictly inside the circle whose diameter is the hop"; `r_min` applies
/// the same near-field clamp the propagation model uses (energies saturate
/// below that distance), and `slack` is the relative margin by which a
/// violator must win, absorbing float noise.
pub fn find_skipped_relay(
    table: &RouteTable,
    positions: &[Point],
    r_min: f64,
    slack: f64,
) -> Option<(usize, usize, usize, usize, usize)> {
    let n = positions.len();
    let energy = |a: Point, b: Point| -> f64 {
        let d = a.distance(b).max(r_min);
        d * d
    };
    for src in 0..n {
        for dst in 0..n {
            let Some(path) = table.path(src, dst) else {
                continue;
            };
            for hop in path.windows(2) {
                let (a, c) = (hop[0], hop[1]);
                let direct = energy(positions[a], positions[c]);
                // Cheap pre-filter: a winning relay must lie inside the
                // diameter circle (clamping only ever *raises* relay cost).
                let disk = Disk::on_diameter(positions[a], positions[c]);
                for (b, &p) in positions.iter().enumerate() {
                    if b == a || b == c || !disk.contains(p) {
                        continue;
                    }
                    let via = energy(positions[a], p) + energy(p, positions[c]);
                    if via < direct * (1.0 - slack) {
                        return Some((src, dst, a, c, b));
                    }
                }
            }
        }
    }
    None
}

/// Energy of the direct single hop `src → dst` under `1/r²` loss with
/// power control (∝ squared distance).
pub fn direct_energy(positions: &[Point], src: usize, dst: usize) -> f64 {
    positions[src].distance_sq(positions[dst])
}

/// Energy of the routed path from the table (sum of squared hop
/// distances). `None` when unreachable.
pub fn route_energy(
    table: &RouteTable,
    positions: &[Point],
    src: usize,
    dst: usize,
) -> Option<f64> {
    let p = table.path(src, dst)?;
    Some(
        p.windows(2)
            .map(|h| positions[h[0]].distance_sq(positions[h[1]]))
            .sum(),
    )
}

/// Summary statistics of a route table's geometry.
#[derive(Clone, Debug, Default)]
pub struct RouteGeometry {
    /// Mean hops over all reachable ordered pairs.
    pub mean_hops: f64,
    /// Maximum hops.
    pub max_hops: usize,
    /// Mean ratio (direct energy) / (routed energy) over multi-hop pairs —
    /// ≥ 1 whenever relaying pays.
    pub mean_energy_saving: f64,
    /// Number of reachable ordered pairs.
    pub pairs: usize,
}

/// Compute [`RouteGeometry`] for a table over the given positions.
pub fn route_geometry(table: &RouteTable, positions: &[Point]) -> RouteGeometry {
    let n = positions.len();
    let mut hops_sum = 0usize;
    let mut max_hops = 0usize;
    let mut saving_sum = 0.0;
    let mut saving_n = 0usize;
    let mut pairs = 0usize;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let Some(h) = table.hops(src, dst) else {
                continue;
            };
            pairs += 1;
            hops_sum += h;
            max_hops = max_hops.max(h);
            if h > 1 {
                let direct = direct_energy(positions, src, dst);
                if let Some(routed) = route_energy(table, positions, src, dst) {
                    if routed > 0.0 {
                        saving_sum += direct / routed;
                        saving_n += 1;
                    }
                }
            }
        }
    }
    RouteGeometry {
        mean_hops: if pairs > 0 {
            hops_sum as f64 / pairs as f64
        } else {
            0.0
        },
        max_hops,
        mean_energy_saving: if saving_n > 0 {
            saving_sum / saving_n as f64
        } else {
            1.0
        },
        pairs,
    }
}

/// Convenience for tests and experiments: a random uniform-disk scenario's
/// positions.
pub fn random_positions(n: usize, radius: f64, rng: &mut Rng) -> Vec<Point> {
    parn_phys::placement::Placement::UniformDisk { n, radius }.generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EnergyGraph;
    use parn_phys::propagation::FreeSpace;
    use parn_phys::{Gain, GainMatrix};

    fn scenario(n: usize, radius: f64, seed: u64) -> (Vec<Point>, RouteTable) {
        let mut rng = Rng::new(seed);
        let pos = random_positions(n, radius, &mut rng);
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        // Usable-link threshold: everything (dense graph) so min-energy
        // routing is free to choose any relay.
        let g = EnergyGraph::from_gains(&gm, Gain(0.0));
        let t = RouteTable::centralized(&g);
        (pos, t)
    }

    #[test]
    fn no_skipped_relays_on_random_placements() {
        // The paper's circle property must hold on every computed route.
        for seed in [1, 2, 3] {
            let (pos, t) = scenario(40, 200.0, seed);
            assert_eq!(
                find_skipped_relay(&t, &pos, 1.0, 1e-9),
                None,
                "seed {seed} skipped a relay"
            );
        }
    }

    #[test]
    fn relaying_saves_energy_on_average() {
        let (pos, t) = scenario(60, 300.0, 11);
        let geom = route_geometry(&t, &pos);
        assert!(geom.pairs > 0);
        assert!(
            geom.mean_energy_saving >= 1.0,
            "saving {}",
            geom.mean_energy_saving
        );
        assert!(geom.mean_hops > 1.0, "routes should be multi-hop");
    }

    #[test]
    fn direct_vs_route_energy() {
        // Collinear chain 0-1-2 at 10 m spacing.
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        let g = EnergyGraph::from_gains(&gm, Gain(0.0));
        let t = RouteTable::centralized(&g);
        // Direct 0->2: 400. Routed via 1: 100 + 100 = 200 (halved, as the
        // paper's centered-relay example says).
        assert_eq!(direct_energy(&pos, 0, 2), 400.0);
        assert_eq!(route_energy(&t, &pos, 0, 2), Some(200.0));
        assert_eq!(t.hops(0, 2), Some(2));
    }

    #[test]
    fn route_geometry_of_trivial_pair() {
        let pos = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let gm = GainMatrix::build(&pos, &FreeSpace::unit());
        let g = EnergyGraph::from_gains(&gm, Gain(0.0));
        let t = RouteTable::centralized(&g);
        let geom = route_geometry(&t, &pos);
        assert_eq!(geom.pairs, 2);
        assert_eq!(geom.max_hops, 1);
        assert_eq!(geom.mean_energy_saving, 1.0);
    }
}
