//! `parn-route`: minimum-energy routing (paper §6.2).
//!
//! Routes are chosen "so as to minimize each packet's total contribution
//! to interference at distant stations": hop cost = reciprocal path gain
//! (the transmit energy under power control), minimized end-to-end.
//!
//! * [`graph`] — the energy-cost graph from the propagation matrix;
//! * [`dijkstra`](mod@dijkstra) — centralized reference shortest paths;
//! * [`bellman_ford`] — the distributed asynchronous computation as a
//!   pull-based oracle over a shared graph;
//! * [`dv`] — the same computation as a message-passing *protocol*: one
//!   private [`DvState`] per station, advertisements with split horizon /
//!   poisoned reverse, hold-down, and a hop-count cap;
//! * [`table`] — all-pairs next-hop tables with consistency checking;
//! * [`relay`] — the diameter-circle relay property and route geometry;
//! * [`neighbors`] — usable-hop thresholds and degree statistics.

#![warn(missing_docs)]

pub mod bellman_ford;
pub mod dijkstra;
pub mod dv;
pub mod graph;
pub mod neighbors;
pub mod relay;
pub mod table;

pub use bellman_ford::DistributedBellmanFord;
pub use dijkstra::{dijkstra, ShortestPaths};
pub use dv::{DvCluster, DvEntry, DvState};
pub use graph::EnergyGraph;
pub use table::RouteTable;
