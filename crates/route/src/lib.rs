//! `parn-route`: minimum-energy routing (paper §6.2).
//!
//! Routes are chosen "so as to minimize each packet's total contribution
//! to interference at distant stations": hop cost = reciprocal path gain
//! (the transmit energy under power control), minimized end-to-end.
//!
//! * [`graph`] — the energy-cost graph from the propagation matrix;
//! * [`dijkstra`](mod@dijkstra) — centralized reference shortest paths;
//! * [`bellman_ford`] — the distributed asynchronous computation stations
//!   actually run;
//! * [`table`] — all-pairs next-hop tables with consistency checking;
//! * [`relay`] — the diameter-circle relay property and route geometry;
//! * [`neighbors`] — usable-hop thresholds and degree statistics.

#![warn(missing_docs)]

pub mod bellman_ford;
pub mod dijkstra;
pub mod graph;
pub mod neighbors;
pub mod relay;
pub mod table;

pub use bellman_ford::DistributedBellmanFord;
pub use dijkstra::{dijkstra, ShortestPaths};
pub use graph::EnergyGraph;
pub use table::RouteTable;
