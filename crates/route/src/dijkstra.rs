//! Centralized minimum-energy shortest paths (Dijkstra).
//!
//! The reference implementation the distributed Bellman–Ford (§6.2, ref \[3])
//! is validated against. Costs are non-negative energies, so Dijkstra
//! applies directly.

use crate::graph::EnergyGraph;
use parn_phys::StationId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source run: distance and predecessor arrays.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Source station.
    pub source: StationId,
    /// Minimum energy from the source to each station (∞ if unreachable).
    pub dist: Vec<f64>,
    /// Predecessor of each station on its min-energy path from the source.
    pub prev: Vec<Option<StationId>>,
}

impl ShortestPaths {
    /// Whether `dst` is reachable from the source.
    pub fn reachable(&self, dst: StationId) -> bool {
        self.dist[dst].is_finite()
    }

    /// The full path source → … → `dst`, or `None` if unreachable.
    pub fn path_to(&self, dst: StationId) -> Option<Vec<StationId>> {
        if !self.reachable(dst) {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = self.prev[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// Number of hops on the path to `dst` (0 for the source itself).
    pub fn hops_to(&self, dst: StationId) -> Option<usize> {
        self.path_to(dst).map(|p| p.len() - 1)
    }

    /// The *first hop* on the path to `dst` (None when `dst` is the source
    /// or unreachable).
    pub fn first_hop_to(&self, dst: StationId) -> Option<StationId> {
        let p = self.path_to(dst)?;
        if p.len() < 2 {
            None
        } else {
            Some(p[1])
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: StationId,
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist; ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("NaN cost")
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Single-source Dijkstra over the energy graph.
pub fn dijkstra(graph: &EnergyGraph, source: StationId) -> ShortestPaths {
    let n = graph.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if done[node] {
            continue;
        }
        done[node] = true;
        for &(next, cost) in graph.neighbors(node) {
            let nd = d + cost;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = Some(node);
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -1- 2, plus a direct 0-2 edge of cost 3: two hops win.
    fn diamond() -> EnergyGraph {
        EnergyGraph::from_edges(
            3,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 3.0),
                (2, 0, 3.0),
            ],
        )
    }

    #[test]
    fn prefers_cheaper_two_hop() {
        let sp = dijkstra(&diamond(), 0);
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
        assert_eq!(sp.hops_to(2), Some(2));
        assert_eq!(sp.first_hop_to(2), Some(1));
    }

    #[test]
    fn direct_when_cheaper() {
        let g = EnergyGraph::from_edges(3, &[(0, 1, 5.0), (1, 2, 5.0), (0, 2, 3.0)]);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.path_to(2), Some(vec![0, 2]));
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = EnergyGraph::from_edges(3, &[(0, 1, 1.0)]);
        let sp = dijkstra(&g, 0);
        assert!(!sp.reachable(2));
        assert_eq!(sp.path_to(2), None);
        assert_eq!(sp.hops_to(2), None);
    }

    #[test]
    fn source_is_trivial() {
        let sp = dijkstra(&diamond(), 1);
        assert_eq!(sp.dist[1], 0.0);
        assert_eq!(sp.path_to(1), Some(vec![1]));
        assert_eq!(sp.first_hop_to(1), None);
    }

    #[test]
    fn optimal_substructure() {
        // §6.2: "a minimum-energy route from A to C that goes through B
        // will use the same route from B to C as any other route through
        // B" — suffixes of optimal paths are optimal.
        let g = EnergyGraph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (0, 2, 3.0),
                (1, 3, 3.0),
                (2, 4, 3.0),
            ],
        );
        let from0 = dijkstra(&g, 0);
        let p = from0.path_to(4).unwrap();
        for (k, &mid) in p.iter().enumerate() {
            let from_mid = dijkstra(&g, mid);
            assert_eq!(
                from_mid.path_to(4).unwrap(),
                p[k..].to_vec(),
                "suffix from {mid} diverges"
            );
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths: the result must be stable across runs.
        let g = EnergyGraph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        let a = dijkstra(&g, 0).path_to(3);
        let b = dijkstra(&g, 0).path_to(3);
        assert_eq!(a, b);
    }
}
