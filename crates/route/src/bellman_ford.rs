//! Distributed asynchronous Bellman–Ford (§6.2, citing ref \[3]).
//!
//! "The algorithm is also easy to distribute. Each station need only
//! remember the next hop for each potential destination and the total
//! energy along that route." Each node keeps a distance vector; nodes are
//! activated in arbitrary (even adversarial) order, pull their neighbours'
//! current vectors, and relax. With non-negative costs and no topology
//! churn, this converges to the same fixed point as Dijkstra.
//!
//! This module is the *synchronous shared-memory* model of that process:
//! nodes read each other's vectors directly, which is useful for proving
//! the fixed point but says nothing about message exchange. The [`dv`]
//! module is the protocol-shaped counterpart — per-station private state,
//! explicit advertisements with split horizon / poisoned reverse, link
//! failure and hold-down — that the simulator actually runs in
//! `RouteMode::Distributed`.
//!
//! [`dv`]: crate::dv

use crate::graph::EnergyGraph;
use parn_phys::StationId;
use parn_sim::Rng;

/// One station's routing state: its distance vector and next hops.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// Estimated minimum energy to each destination.
    pub dist: Vec<f64>,
    /// Neighbour used as first hop toward each destination.
    pub next_hop: Vec<Option<StationId>>,
}

/// The distributed computation: per-node state plus the activation logic.
#[derive(Clone, Debug)]
pub struct DistributedBellmanFord {
    graph: EnergyGraph,
    nodes: Vec<NodeState>,
    rounds: usize,
}

impl DistributedBellmanFord {
    /// Initialize: every node knows only itself (distance 0) and direct
    /// neighbours.
    pub fn new(graph: EnergyGraph) -> DistributedBellmanFord {
        let n = graph.len();
        let mut nodes = Vec::with_capacity(n);
        for s in 0..n {
            let mut dist = vec![f64::INFINITY; n];
            let mut next_hop = vec![None; n];
            dist[s] = 0.0;
            for &(nb, cost) in graph.neighbors(s) {
                if cost < dist[nb] {
                    dist[nb] = cost;
                    next_hop[nb] = Some(nb);
                }
            }
            nodes.push(NodeState { dist, next_hop });
        }
        DistributedBellmanFord {
            graph,
            nodes,
            rounds: 0,
        }
    }

    /// Activate one node: pull each neighbour's distance vector and relax.
    /// Returns true when the node's state changed.
    pub fn activate(&mut self, s: StationId) -> bool {
        let n = self.graph.len();
        let mut changed = false;
        // Snapshot the relaxations to avoid aliasing self.nodes.
        let mut updates: Vec<(usize, f64, StationId)> = Vec::new();
        {
            let me = &self.nodes[s];
            for &(nb, cost) in self.graph.neighbors(s) {
                let their = &self.nodes[nb];
                for d in 0..n {
                    let via = cost + their.dist[d];
                    if via + 1e-15 < me.dist[d]
                        && updates.iter().all(|&(ud, uc, _)| ud != d || via < uc)
                    {
                        updates.retain(|&(ud, _, _)| ud != d);
                        updates.push((d, via, nb));
                    }
                }
            }
        }
        let me = &mut self.nodes[s];
        for (d, via, nb) in updates {
            if via + 1e-15 < me.dist[d] {
                me.dist[d] = via;
                me.next_hop[d] = Some(nb);
                changed = true;
            }
        }
        changed
    }

    /// Run activations in a random order until a full sweep changes
    /// nothing. Returns the number of sweeps taken.
    pub fn run_async(&mut self, rng: &mut Rng, max_sweeps: usize) -> usize {
        let n = self.graph.len();
        let mut order: Vec<StationId> = (0..n).collect();
        for sweep in 1..=max_sweeps {
            rng.shuffle(&mut order);
            let mut any = false;
            for &s in &order {
                if self.activate(s) {
                    any = true;
                }
            }
            self.rounds = sweep;
            if !any {
                return sweep;
            }
        }
        max_sweeps
    }

    /// Run synchronous sweeps in node order (deterministic) to fixpoint.
    pub fn run_sync(&mut self, max_sweeps: usize) -> usize {
        let n = self.graph.len();
        for sweep in 1..=max_sweeps {
            let mut any = false;
            for s in 0..n {
                if self.activate(s) {
                    any = true;
                }
            }
            self.rounds = sweep;
            if !any {
                return sweep;
            }
        }
        max_sweeps
    }

    /// A node's converged state.
    pub fn node(&self, s: StationId) -> &NodeState {
        &self.nodes[s]
    }

    /// Sweeps executed so far.
    pub fn sweeps(&self) -> usize {
        self.rounds
    }

    /// A station disappears: remove its edges from the (local copy of the)
    /// graph and invalidate every route that used it — its neighbours'
    /// entries *through* it and everyone's entries *to* it — then
    /// re-converge with [`run_async`](Self::run_async) or
    /// [`run_sync`](Self::run_sync).
    ///
    /// Distance-vector protocols famously count to infinity on withdrawals;
    /// the textbook remedy this models is a full invalidation flood: every
    /// node forgets routes whose next hop died (recursively, since a
    /// neighbour's advertised distance may have gone through the dead
    /// node), falling back to direct-edge knowledge before re-converging.
    /// We implement the conservative version: reset all state to the
    /// direct-neighbour baseline of the surviving graph. Convergence then
    /// proceeds exactly like a fresh start, which is the correctness
    /// anchor the tests pin.
    pub fn remove_node(&mut self, dead: StationId) {
        let n = self.graph.len();
        // Drop the dead node's edges (both directions).
        let mut edges: Vec<(StationId, StationId, f64)> = Vec::new();
        for s in 0..n {
            if s == dead {
                continue;
            }
            for &(nb, cost) in self.graph.neighbors(s) {
                if nb != dead {
                    edges.push((s, nb, cost));
                }
            }
        }
        self.graph = EnergyGraph::from_edges(n, &edges);
        // Conservative invalidation: rebuild every node's state from its
        // surviving direct edges.
        for s in 0..n {
            let mut dist = vec![f64::INFINITY; n];
            let mut next_hop = vec![None; n];
            if s != dead {
                dist[s] = 0.0;
                for &(nb, cost) in self.graph.neighbors(s) {
                    if cost < dist[nb] {
                        dist[nb] = cost;
                        next_hop[nb] = Some(nb);
                    }
                }
            }
            self.nodes[s] = NodeState { dist, next_hop };
        }
    }

    /// Extract the hop-by-hop path `src → dst` by following next hops.
    /// Returns `None` if `dst` is unreachable (or a routing loop is
    /// detected, which converged tables never contain).
    pub fn path(&self, src: StationId, dst: StationId) -> Option<Vec<StationId>> {
        let n = self.graph.len();
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let hop = self.nodes[cur].next_hop[dst]?;
            path.push(hop);
            cur = hop;
            if path.len() > n {
                return None; // loop guard
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    fn ring(n: usize) -> EnergyGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            edges.push((i, j, 1.0));
            edges.push((j, i, 1.0));
        }
        EnergyGraph::from_edges(n, &edges)
    }

    #[test]
    fn converges_on_ring() {
        let mut bf = DistributedBellmanFord::new(ring(8));
        let sweeps = bf.run_sync(100);
        assert!(sweeps < 100, "did not converge");
        // Opposite node on an 8-ring is 4 hops away.
        assert_eq!(bf.node(0).dist[4], 4.0);
        assert_eq!(bf.path(0, 4).unwrap().len(), 5);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        let mut rng = Rng::new(99);
        for trial in 0..10 {
            let n = 20;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    if a != b && rng.chance(0.2) {
                        let c = rng.range_f64(0.5, 10.0);
                        edges.push((a, b, c));
                    }
                }
            }
            let g = EnergyGraph::from_edges(n, &edges);
            let mut bf = DistributedBellmanFord::new(g.clone());
            bf.run_async(&mut rng, 1000);
            for src in 0..n {
                let sp = dijkstra(&g, src);
                for dst in 0..n {
                    let bd = bf.node(src).dist[dst];
                    let dd = sp.dist[dst];
                    assert!(
                        (bd - dd).abs() < 1e-9 || (bd.is_infinite() && dd.is_infinite()),
                        "trial {trial}: {src}->{dst}: bf {bd} vs dijkstra {dd}"
                    );
                }
            }
        }
    }

    #[test]
    fn async_order_does_not_change_fixpoint() {
        let g = ring(10);
        let mut a = DistributedBellmanFord::new(g.clone());
        let mut b = DistributedBellmanFord::new(g);
        a.run_async(&mut Rng::new(1), 1000);
        b.run_async(&mut Rng::new(2), 1000);
        for s in 0..10 {
            assert_eq!(a.node(s).dist, b.node(s).dist);
        }
    }

    #[test]
    fn hop_by_hop_paths_are_consistent() {
        // §6.2: transit packets are routed as if originated at the transit
        // station — following next hops from any midpoint of a path yields
        // the suffix of that path.
        let mut rng = Rng::new(7);
        let mut edges = Vec::new();
        let n = 15;
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.chance(0.3) {
                    let c = rng.range_f64(1.0, 5.0);
                    edges.push((a, b, c));
                    edges.push((b, a, c));
                }
            }
        }
        let g = EnergyGraph::from_edges(n, &edges);
        let mut bf = DistributedBellmanFord::new(g);
        bf.run_async(&mut rng, 1000);
        for src in 0..n {
            for dst in 0..n {
                if let Some(p) = bf.path(src, dst) {
                    for (k, &mid) in p.iter().enumerate() {
                        assert_eq!(
                            bf.path(mid, dst).unwrap(),
                            p[k..].to_vec(),
                            "suffix mismatch {src}->{dst} at {mid}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = EnergyGraph::from_edges(4, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let mut bf = DistributedBellmanFord::new(g);
        bf.run_sync(100);
        assert!(bf.node(0).dist[3].is_infinite());
        assert_eq!(bf.path(0, 3), None);
    }

    #[test]
    fn remove_node_reconverges_to_filtered_fixpoint() {
        // Random geometric-ish graphs: kill a node, re-converge, compare
        // with a fresh computation over the survivor graph.
        let mut rng = Rng::new(123);
        for trial in 0..6 {
            let n = 18;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.chance(0.3) {
                        let c = rng.range_f64(0.5, 9.0);
                        edges.push((a, b, c));
                        edges.push((b, a, c));
                    }
                }
            }
            let g = EnergyGraph::from_edges(n, &edges);
            let dead = (trial * 3) % n;

            let mut healed = DistributedBellmanFord::new(g.clone());
            healed.run_async(&mut rng, 500);
            healed.remove_node(dead);
            healed.run_async(&mut rng, 500);

            let survivor_edges: Vec<_> = edges
                .iter()
                .copied()
                .filter(|&(a, b, _)| a != dead && b != dead)
                .collect();
            let fresh_graph = EnergyGraph::from_edges(n, &survivor_edges);
            let mut fresh = DistributedBellmanFord::new(fresh_graph);
            fresh.run_sync(500);

            for s in 0..n {
                for d in 0..n {
                    if s == dead || d == dead {
                        continue; // the dead node's own rows are moot
                    }
                    let (a, b) = (healed.node(s).dist[d], fresh.node(s).dist[d]);
                    if a.is_finite() || b.is_finite() {
                        assert!(
                            (a - b).abs() < 1e-9,
                            "trial {trial} dead {dead}: {s}->{d}: {a} vs {b}"
                        );
                    }
                }
            }
            // The dead node routes nowhere and nothing routes through it.
            for d in 0..n {
                if d != dead {
                    assert!(healed.node(dead).dist[d].is_infinite());
                }
                for s in 0..n {
                    if let Some(p) = healed.path(s, d) {
                        if p.len() > 2 {
                            assert!(
                                !p[1..p.len() - 1].contains(&dead),
                                "route {s}->{d} transits the dead node"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn remove_node_handles_partition() {
        // A barbell: killing the bridge node partitions the graph.
        let g = EnergyGraph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
            ],
        );
        let mut bf = DistributedBellmanFord::new(g);
        bf.run_sync(100);
        assert!(bf.node(0).dist[4].is_finite());
        bf.remove_node(2);
        bf.run_sync(100);
        assert!(bf.node(0).dist[1].is_finite());
        assert!(bf.node(0).dist[3].is_infinite(), "partition not detected");
        assert!(bf.node(4).dist[0].is_infinite());
    }

    #[test]
    fn single_activation_relaxes_locally() {
        let g = EnergyGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut bf = DistributedBellmanFord::new(g);
        // Node 0 initially doesn't know about 2.
        assert!(bf.node(0).dist[2].is_infinite());
        assert!(bf.activate(0));
        assert_eq!(bf.node(0).dist[2], 2.0);
        assert!(!bf.activate(0), "second activation is a no-op");
    }
}
