//! Per-station distance-vector state for the distributed asynchronous
//! Bellman–Ford exchange (paper §6.2).
//!
//! Where [`bellman_ford`](crate::bellman_ford) models the *algorithm* as a
//! pull-based oracle over a shared graph, this module models the
//! *protocol*: each [`DvState`] is the private state one station owns, and
//! the only way information moves between stations is an explicit
//! [`advertisement`](DvState::advertisement) handed to
//! [`integrate`](DvState::integrate) — exactly the payloads the network
//! layer carries inside scheduled TX/RX window overlaps. Divergence
//! control is the classic trio:
//!
//! * **split horizon with poisoned reverse** — a vector sent to neighbour
//!   `v` advertises infinite cost for every destination currently routed
//!   *through* `v`;
//! * **hold-down** — after a route is lost, cheaper third-party claims for
//!   it are ignored for a configurable window (first-hand link knowledge
//!   is exempt);
//! * **hop-count cap** — routes of `n` or more hops are treated as
//!   unreachable. A minimum-cost path visits no station twice, so the cap
//!   excludes no optimal route while bounding count-to-infinity.
//!
//! [`DvCluster`] wires `n` states together over an [`EnergyGraph`] and
//! drives them to quiescence — the convergence harness used by the
//! simulator at cold start and by the property suite.

use crate::graph::EnergyGraph;
use crate::table::RouteTable;
use parn_phys::StationId;
use parn_sim::{Duration, Rng, Time};
use std::collections::BTreeMap;

/// Strict-improvement tolerance, matching the pull-based oracle in
/// [`bellman_ford`](crate::bellman_ford) so both fixpoints agree with
/// Dijkstra bit-for-bit on ties.
const EPS: f64 = 1e-15;

/// One entry of an advertised distance vector: (total route energy,
/// route hop count). Unreachable entries are `(f64::INFINITY, u32::MAX)`.
pub type DvEntry = (f64, u32);

/// The distance-vector routing state a single station owns.
#[derive(Clone, Debug)]
pub struct DvState {
    me: StationId,
    n: usize,
    /// Direct usable links (first-hand knowledge): neighbour → hop energy.
    links: BTreeMap<StationId, f64>,
    dist: Vec<f64>,
    hops: Vec<u32>,
    next_hop: Vec<Option<StationId>>,
    holddown_until: Vec<Time>,
    /// Which peer's withdrawal (or link failure) started each running
    /// hold-down. Readmitting that peer clears the hold-downs it caused:
    /// its withdrawal-era poison is stale the moment it is back, and the
    /// readmission flood must not lose the race against one last poisoned
    /// advertisement still in flight.
    holddown_by: Vec<Option<StationId>>,
    /// Advertised entries rejected as provably bogus (see
    /// [`integrate`](DvState::integrate)): a third party claiming a
    /// zero-hop or non-positive-energy route to a destination other than
    /// itself. Drained by [`take_poison_rejections`](DvState::take_poison_rejections).
    poison_rejections: u64,
    dirty: bool,
}

impl DvState {
    /// Fresh state for station `me` in an `n`-station network with the
    /// given direct links: self at cost 0, each neighbour at its link
    /// cost, everything else unreachable.
    pub fn new(me: StationId, n: usize, links: BTreeMap<StationId, f64>) -> DvState {
        let mut s = DvState {
            me,
            n,
            links: BTreeMap::new(),
            dist: vec![f64::INFINITY; n],
            hops: vec![u32::MAX; n],
            next_hop: vec![None; n],
            holddown_until: vec![Time::ZERO; n],
            holddown_by: vec![None; n],
            poison_rejections: 0,
            dirty: true,
        };
        s.dist[me] = 0.0;
        s.hops[me] = 0;
        for (nb, c) in links {
            s.restore_link(nb, c);
        }
        s
    }

    /// The station this state belongs to.
    pub fn station(&self) -> StationId {
        self.me
    }

    /// Direct links currently believed usable.
    pub fn links(&self) -> &BTreeMap<StationId, f64> {
        &self.links
    }

    /// Current next hop toward `dst` (None when `dst == me` or
    /// unreachable).
    pub fn next_hop(&self, dst: StationId) -> Option<StationId> {
        self.next_hop[dst]
    }

    /// Current total route energy toward `dst`.
    pub fn cost(&self, dst: StationId) -> f64 {
        self.dist[dst]
    }

    /// Current route hop count toward `dst` (`u32::MAX` when
    /// unreachable).
    pub fn route_hops(&self, dst: StationId) -> u32 {
        self.hops[dst]
    }

    /// The distinct next hops in use, sorted — the station's routing
    /// neighbours under its *current* (possibly transient) table.
    pub fn routing_neighbors(&self) -> Vec<StationId> {
        let mut v: Vec<StationId> = self.next_hop.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True when the state changed since the last
    /// [`take_dirty`](DvState::take_dirty) — i.e. neighbours have not yet
    /// heard the latest vector.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Read and clear the dirty flag (called when an update round is
    /// scheduled for this station).
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// The vector to advertise to neighbour `to`, with split horizon and
    /// poisoned reverse applied: destinations routed through `to` are
    /// reported unreachable so `to` can never bounce them back.
    pub fn advertisement(&self, to: StationId) -> Vec<DvEntry> {
        (0..self.n)
            .map(|dst| {
                if self.next_hop[dst] == Some(to) {
                    (f64::INFINITY, u32::MAX)
                } else {
                    (self.dist[dst], self.hops[dst])
                }
            })
            .collect()
    }

    /// Advertised entries rejected as provably poisoned since the last
    /// call, draining the counter. Only `dst` itself may advertise `dst`
    /// at zero hops or zero energy, so a third-party claim of either is
    /// Byzantine with no false-positive risk — legitimate route energies
    /// are sums of strictly positive hop energies.
    pub fn take_poison_rejections(&mut self) -> u64 {
        std::mem::take(&mut self.poison_rejections)
    }

    /// Consume a vector advertised by direct neighbour `from`. Returns
    /// true when any route changed (the caller should schedule a
    /// triggered update). Vectors from stations not currently linked are
    /// ignored — they are stale transmissions from an evicted peer.
    ///
    /// Byzantine defense: an entry claiming a route to `dst != from` with
    /// zero hops or non-positive total energy is impossible (only `dst`
    /// itself is at zero hops / zero energy), so it is rejected and
    /// counted rather than integrated — a poisoner cannot black-hole
    /// traffic by underbidding every route.
    pub fn integrate(
        &mut self,
        from: StationId,
        adv: &[DvEntry],
        now: Time,
        holddown: Duration,
    ) -> bool {
        let Some(&link) = self.links.get(&from) else {
            return false;
        };
        debug_assert_eq!(adv.len(), self.n, "vector length mismatch");
        let mut changed = false;
        for (dst, &(their_cost, their_hops)) in adv.iter().enumerate() {
            if dst == self.me {
                continue;
            }
            if dst != from && their_cost.is_finite() && (their_hops == 0 || their_cost <= 0.0) {
                self.poison_rejections += 1;
                continue;
            }
            let via = link + their_cost;
            let via_hops = their_hops.saturating_add(1);
            // Hop-count cap: a path of n or more hops repeats a station
            // and can never be minimum-cost.
            let usable = via.is_finite() && (via_hops as usize) < self.n;
            if self.next_hop[dst] == Some(from) {
                // The current next hop's word is gospel: adopt worsening
                // and withdrawal too, not just improvements. Losing the
                // route starts the hold-down clock.
                if usable {
                    if self.dist[dst] != via || self.hops[dst] != via_hops {
                        self.dist[dst] = via;
                        self.hops[dst] = via_hops;
                        changed = true;
                    }
                } else {
                    self.dist[dst] = f64::INFINITY;
                    self.hops[dst] = u32::MAX;
                    self.next_hop[dst] = None;
                    self.holddown_until[dst] = now + holddown;
                    self.holddown_by[dst] = Some(from);
                    changed = true;
                }
            } else if usable && now >= self.holddown_until[dst] && via + EPS < self.dist[dst] {
                self.dist[dst] = via;
                self.hops[dst] = via_hops;
                self.next_hop[dst] = Some(from);
                changed = true;
            }
        }
        // First-hand link knowledge is exempt from hold-down: a poisoned
        // route to a direct neighbour resurrects from the link itself.
        changed |= self.refresh_direct();
        self.dirty |= changed;
        changed
    }

    /// Declare the direct link to `peer` dead (local-heal eviction or a
    /// withdrawn link): every route through it is poisoned and held down.
    /// Returns true when any route was using the link.
    pub fn fail_link(&mut self, peer: StationId, now: Time, holddown: Duration) -> bool {
        if self.links.remove(&peer).is_none() {
            return false;
        }
        let mut changed = false;
        for dst in 0..self.n {
            if self.next_hop[dst] == Some(peer) {
                self.dist[dst] = f64::INFINITY;
                self.hops[dst] = u32::MAX;
                self.next_hop[dst] = None;
                self.holddown_until[dst] = now + holddown;
                self.holddown_by[dst] = Some(peer);
                changed = true;
            }
        }
        changed |= self.refresh_direct();
        self.dirty = true;
        changed
    }

    /// (Re-)establish the direct link to `peer` at `cost` — readmission
    /// after an eviction lifts, or a rebooted neighbour heard again.
    /// First-hand knowledge: clears any hold-down on the peer itself
    /// *and* every hold-down that peer's withdrawals caused — otherwise a
    /// last poisoned advertisement still in flight when the readmission
    /// flood lands would leave those destinations deaf to the peer's
    /// fresh (correct) vector for a full hold-down window.
    pub fn restore_link(&mut self, peer: StationId, cost: f64) {
        self.links.insert(peer, cost);
        self.holddown_until[peer] = Time::ZERO;
        self.holddown_by[peer] = None;
        for dst in 0..self.n {
            if self.holddown_by[dst] == Some(peer) {
                self.holddown_until[dst] = Time::ZERO;
                self.holddown_by[dst] = None;
            }
        }
        self.refresh_direct();
        self.dirty = true;
    }

    /// The direct link to `peer` stays up but its cost changed — the peer
    /// moved. Unlike [`fail_link`](Self::fail_link)/
    /// [`restore_link`](Self::restore_link), no poisoning or hold-down
    /// machinery runs: the link never went away, so routes via the peer
    /// stay usable and just re-cost. Routes that used the old (cheaper)
    /// direct cost converge to alternatives through normal advertisement
    /// exchange.
    pub fn update_link_cost(&mut self, peer: StationId, cost: f64) {
        self.links.insert(peer, cost);
        if self.next_hop[peer] == Some(peer) {
            // The route to the peer itself was the direct hop: re-cost it
            // in place rather than waiting for the next flood.
            self.dist[peer] = cost;
            self.hops[peer] = 1;
        }
        self.refresh_direct();
        self.dirty = true;
    }

    /// Re-assert every direct link: a link is always at least as good as
    /// its own cost, whatever third parties claim.
    fn refresh_direct(&mut self) -> bool {
        let mut changed = false;
        for (&nb, &c) in &self.links {
            if c + EPS < self.dist[nb] {
                self.dist[nb] = c;
                self.hops[nb] = 1;
                self.next_hop[nb] = Some(nb);
                changed = true;
            }
        }
        changed
    }
}

/// `n` [`DvState`]s wired over an [`EnergyGraph`]: the convergence
/// harness. The simulator uses [`converge_sync`](DvCluster::converge_sync)
/// for the cold-start exchange (stations boot with hello-learned links and
/// trade vectors until quiescent); the property suite drives the same
/// states through lossy, shuffled, and faulted schedules.
#[derive(Clone, Debug)]
pub struct DvCluster {
    states: Vec<DvState>,
}

impl DvCluster {
    /// One fresh state per station, linked per the graph's usable hops.
    pub fn new(graph: &EnergyGraph) -> DvCluster {
        let n = graph.len();
        let states = (0..n)
            .map(|s| DvState::new(s, n, graph.neighbors(s).iter().copied().collect()))
            .collect();
        DvCluster { states }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the cluster has no stations.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// One station's state.
    pub fn state(&self, s: StationId) -> &DvState {
        &self.states[s]
    }

    /// One station's state, mutably.
    pub fn state_mut(&mut self, s: StationId) -> &mut DvState {
        &mut self.states[s]
    }

    /// Take ownership of the per-station states (handed to the network
    /// simulator, which owns them per-station from then on).
    pub fn into_states(self) -> Vec<DvState> {
        self.states
    }

    /// Rewrap per-station states (the inverse of
    /// [`into_states`](DvCluster::into_states)) — used to snapshot a
    /// running simulation's private tables as one dense view.
    pub fn from_states(states: Vec<DvState>) -> DvCluster {
        DvCluster { states }
    }

    /// Deliver `sender`'s current vector to `receiver` (lossless,
    /// instantaneous). Returns true when the receiver changed.
    pub fn exchange(&mut self, sender: StationId, receiver: StationId, now: Time) -> bool {
        let adv = self.states[sender].advertisement(receiver);
        self.states[receiver].integrate(sender, &adv, now, Duration::ZERO)
    }

    /// Deterministic round-robin exchange to quiescence: in each round
    /// every station sends its vector to every direct neighbour. Returns
    /// the number of rounds taken, or None if `max_rounds` passed without
    /// quiescence.
    pub fn converge_sync(&mut self, max_rounds: usize) -> Option<usize> {
        for round in 1..=max_rounds {
            let mut changed = false;
            for s in 0..self.states.len() {
                let nbs: Vec<StationId> = self.states[s].links.keys().copied().collect();
                for nb in nbs {
                    changed |= self.exchange(s, nb, Time::ZERO);
                }
            }
            if !changed {
                return Some(round);
            }
        }
        None
    }

    /// Shuffled asynchronous exchange to quiescence: each round delivers
    /// every (sender → neighbour) vector once, in seeded-random order.
    /// The fixpoint must be order-independent; property tests exploit
    /// that.
    pub fn converge_async(&mut self, rng: &mut Rng, max_rounds: usize) -> Option<usize> {
        let mut pairs: Vec<(StationId, StationId)> = Vec::new();
        for (s, st) in self.states.iter().enumerate() {
            for &nb in st.links.keys() {
                pairs.push((s, nb));
            }
        }
        for round in 1..=max_rounds {
            rng.shuffle(&mut pairs);
            let mut changed = false;
            for &(s, nb) in &pairs {
                changed |= self.exchange(s, nb, Time::ZERO);
            }
            if !changed {
                return Some(round);
            }
        }
        None
    }

    /// Snapshot the cluster as a dense [`RouteTable`] (for comparison
    /// against [`RouteTable::centralized`] and for seeding the
    /// simulator's global view).
    pub fn to_table(&self) -> RouteTable {
        let n = self.states.len();
        let mut next_hop = vec![None; n * n];
        let mut cost = vec![f64::INFINITY; n * n];
        for (src, st) in self.states.iter().enumerate() {
            for dst in 0..n {
                next_hop[src * n + dst] = st.next_hop[dst];
                cost[src * n + dst] = st.dist[dst];
            }
        }
        RouteTable::from_dense(n, next_hop, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    fn chain() -> EnergyGraph {
        EnergyGraph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (0, 2, 3.0),
                (2, 0, 3.0),
            ],
        )
    }

    fn assert_matches_dijkstra(cluster: &DvCluster, graph: &EnergyGraph) {
        for src in 0..graph.len() {
            let sp = dijkstra(graph, src);
            for dst in 0..graph.len() {
                if src == dst {
                    continue;
                }
                let got = cluster.state(src).cost(dst);
                assert!(
                    (got - sp.dist[dst]).abs() < 1e-12
                        || (got.is_infinite() && sp.dist[dst].is_infinite()),
                    "{src}->{dst}: dv {got} vs dijkstra {}",
                    sp.dist[dst]
                );
            }
        }
    }

    #[test]
    fn sync_convergence_matches_dijkstra() {
        let g = chain();
        let mut c = DvCluster::new(&g);
        let rounds = c.converge_sync(64).expect("did not converge");
        assert!(rounds <= g.len() + 2, "took {rounds} rounds");
        assert_matches_dijkstra(&c, &g);
        assert!(c.to_table().check_consistency(&g).is_ok());
    }

    #[test]
    fn async_order_does_not_change_fixpoint() {
        let g = chain();
        for seed in 0..8 {
            let mut c = DvCluster::new(&g);
            c.converge_async(&mut Rng::new(seed), 256)
                .expect("did not converge");
            assert_matches_dijkstra(&c, &g);
        }
    }

    #[test]
    fn poisoned_reverse_hides_routes_through_the_listener() {
        let g = chain();
        let mut c = DvCluster::new(&g);
        c.converge_sync(64).unwrap();
        // Station 0 routes to 3 via 1; the vector it sends *to* 1 must
        // poison destination 3 (and 1 itself, and 2).
        let adv = c.state(0).advertisement(1);
        assert!(adv[3].0.is_infinite());
        assert!(adv[1].0.is_infinite());
        // Sent the other way (to nobody relevant), the entries are live.
        let adv2 = c.state(0).advertisement(2);
        assert!((adv2[3].0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fail_link_poisons_and_reconverges() {
        let g = chain();
        let mut c = DvCluster::new(&g);
        c.converge_sync(64).unwrap();
        // Kill the 1<->2 link on both sides: traffic 0->3 must fall back
        // to the expensive 0-2 edge.
        c.state_mut(1).fail_link(2, Time::ZERO, Duration::ZERO);
        c.state_mut(2).fail_link(1, Time::ZERO, Duration::ZERO);
        c.converge_sync(256).expect("did not reconverge");
        assert_eq!(c.state(0).next_hop(3), Some(2));
        assert!((c.state(0).cost(3) - 4.0).abs() < 1e-12);
        // And restoring the link converges back to the optimum.
        c.state_mut(1).restore_link(2, 1.0);
        c.state_mut(2).restore_link(1, 1.0);
        c.converge_sync(256).expect("did not reconverge");
        assert_matches_dijkstra(&c, &g);
    }

    #[test]
    fn partition_is_detected_as_unreachable() {
        let g = chain();
        let mut c = DvCluster::new(&g);
        c.converge_sync(64).unwrap();
        // Cut every link into {3}: the cap + poison must drive 3's cost
        // to infinity everywhere instead of counting forever.
        c.state_mut(2).fail_link(3, Time::ZERO, Duration::ZERO);
        c.state_mut(3).fail_link(2, Time::ZERO, Duration::ZERO);
        c.converge_sync(1024).expect("count-to-infinity unbounded");
        for s in 0..3 {
            assert!(
                c.state(s).cost(3).is_infinite(),
                "station {s} still routes to 3"
            );
            assert_eq!(c.state(s).next_hop(3), None);
        }
    }

    #[test]
    fn holddown_delays_third_party_claims_but_not_first_hand_links() {
        let mut s = DvState::new(0, 3, [(1usize, 1.0f64)].into_iter().collect());
        let hold = Duration::from_secs(1);
        // Learn a route to 2 via 1, then lose it with hold-down.
        s.integrate(1, &[(1.0, 1), (0.0, 0), (1.0, 1)], Time::ZERO, hold);
        assert_eq!(s.next_hop(2), Some(1));
        s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (f64::INFINITY, u32::MAX)],
            Time::ZERO,
            hold,
        );
        assert_eq!(s.next_hop(2), None);
        // During hold-down, a re-advertised claim for the lost route is
        // ignored...
        let mut t = s.clone();
        t.integrate(1, &[(1.0, 1), (0.0, 0), (1.0, 1)], Time::ZERO, hold);
        assert_eq!(t.next_hop(2), None, "hold-down ignored");
        // ...but expires: the same claim lands after the window.
        t.integrate(1, &[(1.0, 1), (0.0, 0), (1.0, 1)], Time::ZERO + hold, hold);
        assert_eq!(t.next_hop(2), Some(1));
        // First-hand link knowledge bypasses the hold-down entirely.
        s.restore_link(2, 5.0);
        assert_eq!(s.next_hop(2), Some(2), "direct link held down");
        assert!((s.cost(2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn readmission_clears_the_holddowns_the_peer_caused() {
        // Station 0 routes to 2 via 1. Peer 1 withdraws the route (its
        // poisoned advertisement), starting a hold-down attributed to 1.
        let mut s = DvState::new(0, 3, [(1usize, 1.0f64)].into_iter().collect());
        let hold = Duration::from_secs(10);
        s.integrate(1, &[(1.0, 1), (0.0, 0), (1.0, 1)], Time::ZERO, hold);
        assert_eq!(s.next_hop(2), Some(1));
        s.fail_link(1, Time::ZERO, hold);
        assert_eq!(s.next_hop(2), None);
        // Readmission: the link to 1 comes back. Without clearing 1's
        // hold-downs, 1's first fresh advertisement (well inside the
        // 10 s window) would be ignored for destination 2 — the
        // readmission flood losing the race against the stale poison.
        s.restore_link(1, 1.0);
        let changed = s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (1.0, 1)],
            Time::ZERO + Duration::from_millis(1),
            hold,
        );
        assert!(changed, "fresh vector ignored during stale hold-down");
        assert_eq!(s.next_hop(2), Some(1), "route not relearned");
    }

    #[test]
    fn third_party_holddowns_survive_an_unrelated_readmission() {
        // Two links: 1 and 3. Peer 1 withdraws the route to 2; readmitting
        // *3* must not lift the hold-down 1 caused.
        let mut s = DvState::new(
            0,
            4,
            [(1usize, 1.0f64), (3usize, 1.0f64)].into_iter().collect(),
        );
        let hold = Duration::from_secs(10);
        s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (1.0, 1), (f64::INFINITY, u32::MAX)],
            Time::ZERO,
            hold,
        );
        assert_eq!(s.next_hop(2), Some(1));
        s.integrate(
            1,
            &[
                (1.0, 1),
                (0.0, 0),
                (f64::INFINITY, u32::MAX),
                (f64::INFINITY, u32::MAX),
            ],
            Time::ZERO,
            hold,
        );
        assert_eq!(s.next_hop(2), None);
        s.restore_link(3, 1.0);
        // A third-party claim from 3 for the held-down destination is
        // still ignored: the hold-down belongs to 1, not 3.
        s.integrate(
            3,
            &[(1.0, 1), (2.0, 2), (1.0, 1), (0.0, 0)],
            Time::ZERO + Duration::from_millis(1),
            hold,
        );
        assert_eq!(
            s.next_hop(2),
            None,
            "unrelated readmission lifted hold-down"
        );
    }

    #[test]
    fn poisoned_zero_cost_claims_are_rejected_and_counted() {
        let mut s = DvState::new(0, 4, [(1usize, 1.0f64)].into_iter().collect());
        // A Byzantine poisoner at 1 underbids every destination: zero
        // energy, zero hops. Only its self-entry is legitimate.
        let changed = s.integrate(
            1,
            &[(0.0, 0), (0.0, 0), (0.0, 0), (0.0, 0)],
            Time::ZERO,
            Duration::ZERO,
        );
        assert_eq!(s.take_poison_rejections(), 2, "dst 2 and 3 are bogus");
        assert_eq!(s.next_hop(2), None);
        assert_eq!(s.next_hop(3), None);
        // The direct link to the poisoner itself still stands (first-hand
        // knowledge), so the integrate may legitimately report change.
        let _ = changed;
        // An honest vector integrates cleanly and counts nothing.
        s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (1.0, 1), (2.0, 2)],
            Time::ZERO,
            Duration::ZERO,
        );
        assert_eq!(s.take_poison_rejections(), 0);
        assert_eq!(s.next_hop(2), Some(1));
    }

    #[test]
    fn hop_cap_rejects_overlong_routes() {
        let mut s = DvState::new(0, 3, [(1usize, 1.0f64)].into_iter().collect());
        // A 3-hop route in a 3-station network repeats a station: reject.
        let changed = s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (1.0, 2)],
            Time::ZERO,
            Duration::ZERO,
        );
        assert_eq!(s.next_hop(2), None);
        // The same vector with a legal hop count is accepted.
        s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (1.0, 1)],
            Time::ZERO,
            Duration::ZERO,
        );
        assert_eq!(s.next_hop(2), Some(1));
        let _ = changed;
    }

    #[test]
    fn stale_vectors_from_unlinked_peers_are_ignored() {
        let mut s = DvState::new(0, 3, [(1usize, 1.0f64)].into_iter().collect());
        let changed = s.integrate(
            2,
            &[(1.0, 1), (1.0, 1), (0.0, 0)],
            Time::ZERO,
            Duration::ZERO,
        );
        assert!(!changed);
        assert_eq!(s.next_hop(2), None);
    }

    #[test]
    fn update_link_cost_recosts_without_holddown() {
        // 0 has links to 1 and 3; route to 2 goes via 1.
        let mut s = DvState::new(
            0,
            4,
            [(1usize, 1.0f64), (3usize, 1.0f64)].into_iter().collect(),
        );
        let hold = Duration::from_secs(10);
        s.integrate(
            1,
            &[(1.0, 1), (0.0, 0), (1.0, 1), (f64::INFINITY, u32::MAX)],
            Time::ZERO,
            hold,
        );
        assert_eq!(s.next_hop(2), Some(1));
        // Peer 1 drifts away: the direct hop re-costs in place, no
        // hold-down starts, and the transit route via 1 stays usable.
        s.update_link_cost(1, 2.5);
        assert_eq!(s.next_hop(1), Some(1));
        assert!((s.cost(1) - 2.5).abs() < 1e-12);
        assert_eq!(s.next_hop(2), Some(1));
        // A third-party claim for 2 is NOT suppressed (no hold-down ran):
        // peer 3 now underbids and wins immediately.
        let changed = s.integrate(
            3,
            &[(1.0, 1), (f64::INFINITY, u32::MAX), (0.5, 1), (0.0, 0)],
            Time::ZERO,
            hold,
        );
        assert!(changed);
        assert_eq!(s.next_hop(2), Some(3));
        // Drifting closer again re-cheapens the direct hop.
        s.update_link_cost(1, 0.25);
        assert!((s.cost(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cluster_table_matches_centralized_table() {
        let g = chain();
        let mut c = DvCluster::new(&g);
        c.converge_sync(64).unwrap();
        let dv = c.to_table();
        let cen = RouteTable::centralized(&g);
        for s in 0..4 {
            for d in 0..4 {
                let (a, b) = (dv.cost(s, d), cen.cost(s, d));
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-12, "{s}->{d}: {a} vs {b}");
                }
            }
        }
    }
}
