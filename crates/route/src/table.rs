//! Network-wide routing tables.
//!
//! A [`RouteTable`] holds, for every (source, destination) pair, the next
//! hop and the total route energy — exactly the per-station state §6.2
//! prescribes ("each station need only remember the next hop for each
//! potential destination and the total energy along that route"),
//! assembled network-wide for the simulator.

use crate::bellman_ford::DistributedBellmanFord;
use crate::dijkstra::dijkstra;
use crate::graph::EnergyGraph;
use parn_phys::{Point, StationId};
use parn_sim::Rng;
use std::collections::HashSet;

/// Immutable all-pairs next-hop table.
///
/// ```
/// use parn_route::{EnergyGraph, RouteTable};
/// // 0 -1- 1 -1- 2 with an expensive direct 0-2 edge: min-energy routing
/// // relays through 1.
/// let g = EnergyGraph::from_edges(3, &[
///     (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0),
///     (0, 2, 3.0), (2, 0, 3.0),
/// ]);
/// let t = RouteTable::centralized(&g);
/// assert_eq!(t.path(0, 2), Some(vec![0, 1, 2]));
/// assert_eq!(t.cost(0, 2), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct RouteTable {
    n: usize,
    repr: Repr,
}

/// Internal storage. `Dense` is the classic O(M²) all-pairs table;
/// `OneHop` stores only the direct usable edges (O(E)) for workloads
/// whose destinations are always one hop away (`DestPolicy::Neighbors`
/// traffic at metro scale), where an all-pairs table would dwarf the
/// rest of the simulation's memory. `Greedy` is the other O(E) option
/// that still routes *multi-hop*: next hops are computed on demand by
/// strict-progress geographic forwarding over the stored adjacency plus
/// station positions.
#[derive(Clone, Debug)]
enum Repr {
    Dense {
        next_hop: Vec<Option<StationId>>, // row-major [src][dst]
        cost: Vec<f64>,
    },
    OneHop {
        adj: Vec<Vec<(StationId, f64)>>,
    },
    Greedy {
        adj: Vec<Vec<(StationId, f64)>>,
        positions: Vec<Point>,
    },
}

impl RouteTable {
    /// Build centrally by running Dijkstra from every source.
    pub fn centralized(graph: &EnergyGraph) -> RouteTable {
        let n = graph.len();
        let mut next_hop = vec![None; n * n];
        let mut cost = vec![f64::INFINITY; n * n];
        for src in 0..n {
            let sp = dijkstra(graph, src);
            for dst in 0..n {
                cost[src * n + dst] = sp.dist[dst];
                next_hop[src * n + dst] = sp.first_hop_to(dst);
            }
            cost[src * n + src] = 0.0;
        }
        RouteTable {
            n,
            repr: Repr::Dense { next_hop, cost },
        }
    }

    /// Build by running the distributed asynchronous Bellman–Ford to
    /// convergence (the decentralized computation real stations would do).
    pub fn distributed(graph: &EnergyGraph, rng: &mut Rng) -> RouteTable {
        let n = graph.len();
        let mut bf = DistributedBellmanFord::new(graph.clone());
        bf.run_async(rng, 4 * n.max(16));
        let mut next_hop = vec![None; n * n];
        let mut cost = vec![f64::INFINITY; n * n];
        for src in 0..n {
            let st = bf.node(src);
            for dst in 0..n {
                cost[src * n + dst] = st.dist[dst];
                next_hop[src * n + dst] = st.next_hop[dst];
            }
        }
        RouteTable {
            n,
            repr: Repr::Dense { next_hop, cost },
        }
    }

    /// Assemble a dense table from per-station rows — used by
    /// [`DvCluster`](crate::dv::DvCluster) to snapshot the distributed
    /// exchange's current (possibly transient) network-wide view.
    pub(crate) fn from_dense(
        n: usize,
        next_hop: Vec<Option<StationId>>,
        cost: Vec<f64>,
    ) -> RouteTable {
        assert_eq!(next_hop.len(), n * n);
        assert_eq!(cost.len(), n * n);
        RouteTable {
            n,
            repr: Repr::Dense { next_hop, cost },
        }
    }

    /// Build a single-hop table: `next_hop(s, d)` is `Some(d)` exactly
    /// when the direct edge `s → d` is usable, and multi-hop destinations
    /// are unreachable. O(E) memory — the only all-pairs-free option, for
    /// metro-scale neighbour traffic.
    pub fn one_hop(graph: &EnergyGraph) -> RouteTable {
        let n = graph.len();
        let adj = (0..n).map(|s| graph.neighbors(s).to_vec()).collect();
        RouteTable {
            n,
            repr: Repr::OneHop { adj },
        }
    }

    /// Build a greedy geographic table: `next_hop(s, d)` is the usable
    /// neighbour of `s` strictly closer to `d`'s position than `s` is
    /// (nearest-to-destination, lower id on ties), computed on demand.
    /// O(E) memory like [`one_hop`](RouteTable::one_hop), but routes
    /// multi-hop — the only all-pairs-free option for far-destination
    /// traffic at metro scale. Greedy forwarding can dead-end at a local
    /// minimum (a station with no neighbour closer to the destination);
    /// such packets surface as `Unroutable` drops in the simulator, and
    /// the capacity envelope (E7) reports them rather than hiding them.
    pub fn greedy(graph: &EnergyGraph, positions: &[Point]) -> RouteTable {
        let n = graph.len();
        assert_eq!(positions.len(), n, "one position per station");
        let adj = (0..n).map(|s| graph.neighbors(s).to_vec()).collect();
        RouteTable {
            n,
            repr: Repr::Greedy {
                adj,
                positions: positions.to_vec(),
            },
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Next hop from `src` toward `dst` (None when `src == dst` or
    /// unreachable).
    pub fn next_hop(&self, src: StationId, dst: StationId) -> Option<StationId> {
        parn_sim::counter_inc!("route.next_hop.lookups");
        match &self.repr {
            Repr::Dense { next_hop, .. } => next_hop[src * self.n + dst],
            Repr::OneHop { adj } => {
                if src == dst {
                    None
                } else {
                    adj[src].iter().any(|&(t, _)| t == dst).then_some(dst)
                }
            }
            Repr::Greedy { adj, positions } => {
                if src == dst {
                    return None;
                }
                let here = positions[src].distance_sq(positions[dst]);
                let mut best: Option<(f64, StationId)> = None;
                for &(h, _) in &adj[src] {
                    if h == dst {
                        // Distance zero — nothing can beat the destination
                        // itself, so adjacent destinations always route
                        // direct (keeps Neighbors-style traffic exact).
                        return Some(dst);
                    }
                    let d2 = positions[h].distance_sq(positions[dst]);
                    if d2 < here {
                        let better = match best {
                            None => true,
                            Some((bd2, bh)) => d2 < bd2 || (d2 == bd2 && h < bh),
                        };
                        if better {
                            best = Some((d2, h));
                        }
                    }
                }
                best.map(|(_, h)| h)
            }
        }
    }

    /// Total route energy from `src` to `dst`.
    pub fn cost(&self, src: StationId, dst: StationId) -> f64 {
        match &self.repr {
            Repr::Dense { cost, .. } => cost[src * self.n + dst],
            Repr::OneHop { adj } => {
                if src == dst {
                    0.0
                } else {
                    adj[src]
                        .iter()
                        .find(|&&(t, _)| t == dst)
                        .map_or(f64::INFINITY, |&(_, c)| c)
                }
            }
            Repr::Greedy { adj, .. } => {
                // No stored cost: walk the greedy path and sum edge
                // energies. Strict progress bounds the walk; a dead end
                // is unreachable (∞), matching `next_hop`.
                if src == dst {
                    return 0.0;
                }
                let mut total = 0.0;
                let mut cur = src;
                let mut steps = 0usize;
                while cur != dst {
                    let Some(h) = self.next_hop(cur, dst) else {
                        return f64::INFINITY;
                    };
                    let Some(&(_, c)) = adj[cur].iter().find(|&&(t, _)| t == h) else {
                        return f64::INFINITY;
                    };
                    total += c;
                    cur = h;
                    steps += 1;
                    if steps > self.n {
                        return f64::INFINITY;
                    }
                }
                total
            }
        }
    }

    /// Whether `dst` is reachable from `src`.
    pub fn reachable(&self, src: StationId, dst: StationId) -> bool {
        src == dst || self.next_hop(src, dst).is_some()
    }

    /// Whether every station can reach every other.
    pub fn fully_connected(&self) -> bool {
        (0..self.n).all(|s| (0..self.n).all(|d| self.reachable(s, d)))
    }

    /// The full hop-by-hop path, or None if unreachable/looping.
    pub fn path(&self, src: StationId, dst: StationId) -> Option<Vec<StationId>> {
        let mut p = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            p.push(cur);
            if p.len() > self.n {
                return None;
            }
        }
        Some(p)
    }

    /// Hop count of the route (None when unreachable).
    pub fn hops(&self, src: StationId, dst: StationId) -> Option<usize> {
        self.path(src, dst).map(|p| p.len() - 1)
    }

    /// The distinct next-hop neighbours `src` actually uses — the paper's
    /// "routing neighbors", observed in its simulations never to exceed
    /// eight.
    pub fn routing_neighbors(&self, src: StationId) -> Vec<StationId> {
        match &self.repr {
            Repr::Dense { .. } => {
                let mut set = HashSet::new();
                for dst in 0..self.n {
                    if let Some(h) = self.next_hop(src, dst) {
                        set.insert(h);
                    }
                }
                let mut v: Vec<StationId> = set.into_iter().collect();
                v.sort();
                v
            }
            Repr::OneHop { adj } | Repr::Greedy { adj, .. } => {
                // For greedy this is the candidate set: every usable edge
                // can be the argmin for destinations clustered behind it.
                let mut v: Vec<StationId> = adj[src].iter().map(|&(t, _)| t).collect();
                v.sort();
                v.dedup();
                v
            }
        }
    }

    /// For every station `h`: how many *other* stations currently use `h`
    /// as a routing neighbour (their next hop toward at least one
    /// destination) — the dependents a failure of `h` would strand.
    ///
    /// One pass over the stored table (O(M²) on the dense repr, O(E) on
    /// one-hop), so experiment harnesses ranking relays by blast radius
    /// don't need a per-candidate [`routing_neighbors`]
    /// (O(M³)) scan — or a second `Network` build — to get the counts.
    ///
    /// [`routing_neighbors`]: RouteTable::routing_neighbors
    pub fn routing_dependent_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n];
        match &self.repr {
            Repr::Dense { next_hop, .. } => {
                let mut seen = vec![usize::MAX; self.n]; // last src using h
                for src in 0..self.n {
                    for dst in 0..self.n {
                        if let Some(h) = next_hop[src * self.n + dst] {
                            if seen[h] != src {
                                seen[h] = src;
                                counts[h] += 1;
                            }
                        }
                    }
                }
            }
            Repr::OneHop { adj } | Repr::Greedy { adj, .. } => {
                let mut seen = vec![usize::MAX; self.n];
                for (src, out) in adj.iter().enumerate() {
                    for &(h, _) in out {
                        if seen[h] != src {
                            seen[h] = src;
                            counts[h] += 1;
                        }
                    }
                }
            }
        }
        counts
    }

    /// Maximum routing-neighbour count over all stations.
    pub fn max_routing_degree(&self) -> usize {
        (0..self.n)
            .map(|s| self.routing_neighbors(s).len())
            .max()
            .unwrap_or(0)
    }

    /// Verify hop-by-hop consistency: for every reachable pair, following
    /// next hops terminates and the accumulated edge costs equal the
    /// stored route cost (within tolerance). Returns the first violation.
    pub fn check_consistency(&self, graph: &EnergyGraph) -> Result<(), String> {
        for src in 0..self.n {
            for dst in 0..self.n {
                if !self.cost(src, dst).is_finite() {
                    continue;
                }
                let Some(p) = self.path(src, dst) else {
                    return Err(format!("route {src}->{dst} loops or dead-ends"));
                };
                let mut total = 0.0;
                for pair in p.windows(2) {
                    let Some(c) = graph.edge_cost(pair[0], pair[1]) else {
                        return Err(format!("route {src}->{dst} uses missing edge {pair:?}"));
                    };
                    total += c;
                }
                let stored = self.cost(src, dst);
                if (total - stored).abs() > 1e-6 * (1.0 + stored.abs()) {
                    return Err(format!(
                        "route {src}->{dst}: path cost {total} != stored {stored}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> EnergyGraph {
        EnergyGraph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (0, 2, 3.0),
                (2, 0, 3.0),
            ],
        )
    }

    #[test]
    fn centralized_table_routes() {
        let t = RouteTable::centralized(&chain());
        assert_eq!(t.next_hop(0, 3), Some(1));
        assert_eq!(t.path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.hops(0, 3), Some(3));
        assert_eq!(t.cost(0, 3), 3.0);
        assert!(t.fully_connected());
        assert!(t.check_consistency(&chain()).is_ok());
    }

    #[test]
    fn distributed_matches_centralized() {
        let g = chain();
        let c = RouteTable::centralized(&g);
        let d = RouteTable::distributed(&g, &mut Rng::new(3));
        for s in 0..4 {
            for t in 0..4 {
                assert!((c.cost(s, t) - d.cost(s, t)).abs() < 1e-9);
            }
        }
        assert!(d.check_consistency(&g).is_ok());
    }

    #[test]
    fn self_route() {
        let t = RouteTable::centralized(&chain());
        assert_eq!(t.next_hop(2, 2), None);
        assert_eq!(t.cost(2, 2), 0.0);
        assert_eq!(t.path(2, 2), Some(vec![2]));
        assert!(t.reachable(2, 2));
    }

    #[test]
    fn disconnected_detected() {
        let g = EnergyGraph::from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let t = RouteTable::centralized(&g);
        assert!(!t.fully_connected());
        assert!(!t.reachable(0, 2));
        assert_eq!(t.path(0, 2), None);
    }

    #[test]
    fn routing_neighbors_deduplicate() {
        let t = RouteTable::centralized(&chain());
        // Station 0 reaches everyone through station 1 only.
        assert_eq!(t.routing_neighbors(0), vec![1]);
        // Station 1 uses 0 and 2.
        assert_eq!(t.routing_neighbors(1), vec![0, 2]);
        assert_eq!(t.max_routing_degree(), 2);
    }

    #[test]
    fn dependent_counts_match_routing_neighbors_scan() {
        for t in [
            RouteTable::centralized(&chain()),
            RouteTable::one_hop(&chain()),
        ] {
            let counts = t.routing_dependent_counts();
            let mut expected = vec![0usize; t.len()];
            for src in 0..t.len() {
                for h in t.routing_neighbors(src) {
                    expected[h] += 1;
                }
            }
            assert_eq!(counts, expected);
        }
    }

    #[test]
    fn consistency_catches_corruption() {
        let g = chain();
        let t = RouteTable::centralized(&g);
        // A table built for `chain()` is inconsistent against a graph
        // missing the 1→2 edge every long route relies on...
        let missing = EnergyGraph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (0, 2, 3.0),
                (2, 0, 3.0),
            ],
        );
        assert!(t.check_consistency(&missing).is_err());
        // ...and against one whose edge costs disagree with the stored
        // route energies.
        let repriced = EnergyGraph::from_edges(
            4,
            &[
                (0, 1, 9.0),
                (1, 0, 9.0),
                (1, 2, 9.0),
                (2, 1, 9.0),
                (2, 3, 9.0),
                (3, 2, 9.0),
                (0, 2, 9.0),
                (2, 0, 9.0),
            ],
        );
        assert!(t.check_consistency(&repriced).is_err());
    }

    #[test]
    fn one_hop_table_is_direct_edges_only() {
        let g = chain();
        let t = RouteTable::one_hop(&g);
        assert_eq!(t.next_hop(0, 1), Some(1));
        assert_eq!(t.next_hop(0, 2), Some(2), "direct 0-2 edge exists");
        assert_eq!(t.next_hop(0, 3), None, "multi-hop not represented");
        assert_eq!(t.next_hop(1, 1), None);
        assert_eq!(t.cost(0, 1), 1.0);
        assert_eq!(t.cost(0, 2), 3.0);
        assert_eq!(t.cost(0, 3), f64::INFINITY);
        assert_eq!(t.cost(2, 2), 0.0);
        assert_eq!(t.path(0, 2), Some(vec![0, 2]));
        assert!(t.reachable(0, 0));
        assert!(!t.reachable(0, 3));
        assert!(t.check_consistency(&g).is_ok());
    }

    /// Four stations on a line at x = 0, 10, 20, 30, edges between
    /// consecutive pairs plus a 0–2 shortcut (cost-irrelevant here —
    /// greedy steers by geometry, not energy).
    fn line() -> (EnergyGraph, Vec<Point>) {
        let g = chain();
        let positions = (0..4).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        (g, positions)
    }

    #[test]
    fn greedy_makes_strict_progress_to_multi_hop_destinations() {
        let (g, pos) = line();
        let t = RouteTable::greedy(&g, &pos);
        // From 0 toward 3: the 0–2 shortcut is geometrically closest.
        assert_eq!(t.next_hop(0, 3), Some(2));
        assert_eq!(t.path(0, 3), Some(vec![0, 2, 3]));
        assert_eq!(t.hops(0, 3), Some(2));
        // Adjacent destination routes direct even when a relay is nearer
        // the straight line.
        assert_eq!(t.next_hop(0, 2), Some(2));
        assert_eq!(t.next_hop(1, 1), None);
        // Cost is the summed edge energy of the walked path: 0-2 (3.0)
        // then 2-3 (1.0).
        assert_eq!(t.cost(0, 3), 4.0);
        assert_eq!(t.cost(2, 2), 0.0);
        assert!(t.fully_connected());
        assert!(t.check_consistency(&g).is_ok());
    }

    #[test]
    fn greedy_dead_end_is_unreachable() {
        // 0 at the origin wants to reach 2 far to the left, but its only
        // neighbour 1 sits to the *right* — no strict progress exists.
        let g = EnergyGraph::from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(-50.0, 0.0),
        ];
        let t = RouteTable::greedy(&g, &pos);
        assert_eq!(t.next_hop(0, 2), None);
        assert!(!t.reachable(0, 2));
        assert_eq!(t.cost(0, 2), f64::INFINITY);
        assert!(!t.fully_connected());
    }

    #[test]
    fn greedy_ties_break_toward_lower_id() {
        // 1 and 2 are mirror images across the 0→3 axis: equal progress.
        let g = EnergyGraph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (3, 1, 1.0),
                (3, 2, 1.0),
            ],
        );
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(10.0, -5.0),
            Point::new(20.0, 0.0),
        ];
        let t = RouteTable::greedy(&g, &pos);
        assert_eq!(t.next_hop(0, 3), Some(1));
        assert_eq!(t.path(0, 3), Some(vec![0, 1, 3]));
    }

    #[test]
    fn one_hop_routing_neighbors_match_graph_degree() {
        let g = chain();
        let t = RouteTable::one_hop(&g);
        assert_eq!(t.routing_neighbors(0), vec![1, 2]);
        assert_eq!(t.routing_neighbors(1), vec![0, 2]);
        assert_eq!(t.max_routing_degree(), 3, "station 2 reaches 0, 1, 3");
    }
}
