//! The energy-cost graph derived from the propagation matrix.
//!
//! §6.2: "stations ... will be able to observe the path gains between
//! themselves and construct entries in the propagation matrix H for the
//! hops that are usable. ... The common algorithms for computing min-cost
//! paths can be used to find the least-cost paths in the propagation
//! matrix H, where the costs are the reciprocal of the path gains" —
//! i.e. the cost of a hop is proportional to the transmit *energy* needed
//! to deliver a fixed received power over it.

use parn_phys::{Gain, GainMatrix, GainModel, StationId};

/// A directed graph whose edge weights are hop energies (`1/gain`).
#[derive(Clone, Debug)]
pub struct EnergyGraph {
    n: usize,
    adj: Vec<Vec<(StationId, f64)>>,
}

impl EnergyGraph {
    /// Build from a gain matrix, keeping only hops whose power gain is at
    /// least `usable_gain` (hops below that cannot sustain the design rate
    /// over the din and are not "usable" links).
    pub fn from_gains(gains: &GainMatrix, usable_gain: Gain) -> EnergyGraph {
        let n = gains.len();
        let mut adj = vec![Vec::new(); n];
        for (i, out) in adj.iter_mut().enumerate() {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let g = gains.gain(j, i); // receiver j, transmitter i
                if g >= usable_gain && g.value() > 0.0 {
                    out.push((j, g.energy_cost()));
                }
            }
        }
        EnergyGraph { n, adj }
    }

    /// Like [`from_gains`](EnergyGraph::from_gains), but only stations
    /// flagged `alive` participate — used when the topology changes
    /// (station failures) and routes must be recomputed over the
    /// survivors.
    pub fn from_gains_filtered(
        gains: &GainMatrix,
        usable_gain: Gain,
        alive: &[bool],
    ) -> EnergyGraph {
        let n = gains.len();
        assert_eq!(alive.len(), n, "alive mask size mismatch");
        let mut adj = vec![Vec::new(); n];
        for (i, out) in adj.iter_mut().enumerate() {
            if !alive[i] {
                continue;
            }
            for (j, &j_alive) in alive.iter().enumerate() {
                if i == j || !j_alive {
                    continue;
                }
                let g = gains.gain(j, i);
                if g >= usable_gain && g.value() > 0.0 {
                    out.push((j, g.energy_cost()));
                }
            }
        }
        EnergyGraph { n, adj }
    }

    /// Build through the [`GainModel`] trait: for spatially indexed
    /// backends the per-receiver [`GainModel::hearable_by`] query is
    /// range-bounded, so construction is O(M·deg) instead of O(M²).
    /// Produces exactly the same graph (same edges, same order, same
    /// float costs) as [`from_gains`](EnergyGraph::from_gains) on the
    /// dense backend.
    pub fn from_model(gains: &dyn GainModel, usable_gain: Gain) -> EnergyGraph {
        let n = gains.len();
        let mut adj = vec![Vec::new(); n];
        // Iterating receivers in ascending order and appending to each
        // transmitter's list reproduces from_gains' ascending-receiver
        // edge order within every adjacency list.
        for j in 0..n {
            for i in gains.hearable_by(j, usable_gain) {
                let g = gains.gain(j, i);
                if g.value() > 0.0 {
                    adj[i].push((j, g.energy_cost()));
                }
            }
        }
        EnergyGraph { n, adj }
    }

    /// Like [`from_model`](EnergyGraph::from_model), restricted to
    /// stations flagged `alive`.
    pub fn from_model_filtered(
        gains: &dyn GainModel,
        usable_gain: Gain,
        alive: &[bool],
    ) -> EnergyGraph {
        Self::from_model_masked(gains, usable_gain, alive, alive)
    }

    /// Like [`from_model`](EnergyGraph::from_model), with *independent*
    /// transmit and receive eligibility masks: the edge `i → j` exists
    /// when `tx_ok[i]`, `rx_ok[j]`, and the hop is usable. Local-heal
    /// route repair routes *around* evicted stations (`rx_ok` false — no
    /// traffic is forwarded to them) while still letting them originate
    /// and forward their own queued traffic (`tx_ok` true). With equal
    /// masks this is exactly
    /// [`from_model_filtered`](EnergyGraph::from_model_filtered).
    pub fn from_model_masked(
        gains: &dyn GainModel,
        usable_gain: Gain,
        tx_ok: &[bool],
        rx_ok: &[bool],
    ) -> EnergyGraph {
        let n = gains.len();
        assert_eq!(tx_ok.len(), n, "tx mask size mismatch");
        assert_eq!(rx_ok.len(), n, "rx mask size mismatch");
        let mut adj = vec![Vec::new(); n];
        for (j, _) in rx_ok.iter().enumerate().filter(|&(_, &ok)| ok) {
            for i in gains.hearable_by(j, usable_gain) {
                if !tx_ok[i] {
                    continue;
                }
                let g = gains.gain(j, i);
                if g.value() > 0.0 {
                    adj[i].push((j, g.energy_cost()));
                }
            }
        }
        EnergyGraph { n, adj }
    }

    /// Build from an explicit edge list `(from, to, cost)`.
    pub fn from_edges(n: usize, edges: &[(StationId, StationId, f64)]) -> EnergyGraph {
        let mut adj = vec![Vec::new(); n];
        for &(a, b, c) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert!(c >= 0.0, "negative cost");
            adj[a].push((b, c));
        }
        EnergyGraph { n, adj }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no stations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Outgoing usable hops from `s`.
    pub fn neighbors(&self, s: StationId) -> &[(StationId, f64)] {
        &self.adj[s]
    }

    /// Out-degree of `s` (number of usable hops).
    pub fn degree(&self, s: StationId) -> usize {
        self.adj[s].len()
    }

    /// Cost of the direct hop `a → b`, if usable.
    pub fn edge_cost(&self, a: StationId, b: StationId) -> Option<f64> {
        self.adj[a].iter().find(|&&(t, _)| t == b).map(|&(_, c)| c)
    }

    /// Total number of directed usable hops.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parn_phys::propagation::FreeSpace;
    use parn_phys::Point;

    fn line_gains() -> GainMatrix {
        // 0 --10m-- 1 --10m-- 2 : gains 0.01 adjacent, 0.0025 end-to-end.
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        GainMatrix::build(&pos, &FreeSpace::unit())
    }

    #[test]
    fn costs_are_reciprocal_gains() {
        let g = EnergyGraph::from_gains(&line_gains(), Gain(1e-6));
        assert!((g.edge_cost(0, 1).unwrap() - 100.0).abs() < 1e-9);
        assert!((g.edge_cost(0, 2).unwrap() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_prunes_weak_links() {
        let g = EnergyGraph::from_gains(&line_gains(), Gain(0.005));
        assert!(g.edge_cost(0, 1).is_some());
        assert!(g.edge_cost(0, 2).is_none(), "end-to-end link pruned");
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn symmetric_gains_give_symmetric_costs() {
        let g = EnergyGraph::from_gains(&line_gains(), Gain(1e-6));
        assert_eq!(g.edge_cost(0, 2), g.edge_cost(2, 0));
    }

    #[test]
    fn from_edges_explicit() {
        let g = EnergyGraph::from_edges(3, &[(0, 1, 5.0), (1, 2, 7.0)]);
        assert_eq!(g.edge_cost(0, 1), Some(5.0));
        assert_eq!(g.edge_cost(1, 0), None, "directed");
        assert_eq!(g.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        EnergyGraph::from_edges(2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn filtered_excludes_dead_stations() {
        let gm = line_gains();
        let full = EnergyGraph::from_gains(&gm, Gain(1e-6));
        let filtered = EnergyGraph::from_gains_filtered(&gm, Gain(1e-6), &[true, false, true]);
        assert!(full.edge_cost(0, 1).is_some());
        assert!(filtered.edge_cost(0, 1).is_none(), "dead target kept");
        assert!(filtered.edge_cost(1, 0).is_none(), "dead source kept");
        assert!(filtered.edge_cost(0, 2).is_some(), "live link dropped");
        assert_eq!(filtered.degree(1), 0);
    }

    #[test]
    fn filtered_all_alive_equals_unfiltered() {
        let gm = line_gains();
        let a = EnergyGraph::from_gains(&gm, Gain(0.005));
        let b = EnergyGraph::from_gains_filtered(&gm, Gain(0.005), &[true; 3]);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.edge_cost(i, j), b.edge_cost(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "alive mask")]
    fn filtered_checks_mask_len() {
        EnergyGraph::from_gains_filtered(&line_gains(), Gain(1e-6), &[true]);
    }

    #[test]
    fn from_model_matches_from_gains() {
        use parn_phys::placement::Placement;
        use parn_phys::GridGainModel;
        use parn_sim::Rng;
        let pts = Placement::UniformDisk {
            n: 80,
            radius: 400.0,
        }
        .generate(&mut Rng::new(13));
        let gm = GainMatrix::build(&pts, &FreeSpace::unit());
        let grid = GridGainModel::new(&pts, Box::new(FreeSpace::unit()));
        let usable = Gain(1.0 / (200.0 * 200.0));
        let reference = EnergyGraph::from_gains(&gm, usable);
        for model in [&gm as &dyn parn_phys::GainModel, &grid] {
            let g = EnergyGraph::from_model(model, usable);
            assert_eq!(g.len(), reference.len());
            for s in 0..g.len() {
                assert_eq!(g.neighbors(s), reference.neighbors(s), "station {s}");
            }
        }
    }

    #[test]
    fn from_model_filtered_matches_from_gains_filtered() {
        let gm = line_gains();
        let alive = [true, false, true];
        let a = EnergyGraph::from_gains_filtered(&gm, Gain(1e-6), &alive);
        let b = EnergyGraph::from_model_filtered(&gm, Gain(1e-6), &alive);
        for i in 0..3 {
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
    }

    #[test]
    fn masked_separates_tx_and_rx_eligibility() {
        let gm = line_gains();
        // Station 1 may transmit but not receive (evicted from routing
        // views while still flushing its own queue).
        let g = EnergyGraph::from_model_masked(
            &gm,
            Gain(1e-6),
            &[true, true, true],
            &[true, false, true],
        );
        assert!(g.edge_cost(0, 1).is_none(), "edge into evicted rx kept");
        assert!(g.edge_cost(1, 0).is_some(), "evicted station lost tx");
        assert!(g.edge_cost(1, 2).is_some());
        // Equal masks reduce to the filtered build.
        let alive = [true, false, true];
        let a = EnergyGraph::from_model_filtered(&gm, Gain(1e-6), &alive);
        let b = EnergyGraph::from_model_masked(&gm, Gain(1e-6), &alive, &alive);
        for i in 0..3 {
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
    }
}
