//! Neighbour discovery by path gain.
//!
//! §6: stations can communicate directly only with neighbours within
//! roughly twice the characteristic distance `1/√ρ`; in gain terms, hops
//! whose power gain clears the level needed to sustain the design rate
//! over the din. This module derives that gain threshold from physical
//! parameters and reports neighbourhood statistics.

use parn_phys::{Gain, GainMatrix};

/// Derive the usable-hop gain threshold from the physical design: a hop is
/// usable when a transmitter at `max_power` can deliver `threshold ×
/// ambient noise` to the receiver, i.e. `gain ≥ θ·N/P_max`.
pub fn usable_gain_threshold(max_power_w: f64, ambient_noise_w: f64, sinr_threshold: f64) -> Gain {
    debug_assert!(max_power_w > 0.0);
    Gain(sinr_threshold * ambient_noise_w / max_power_w)
}

/// Gain at distance `d` under unit-κ free space loss — convenience for
/// turning "reach 2/√ρ" into a gain threshold.
pub fn free_space_gain_at(d: f64) -> Gain {
    debug_assert!(d > 0.0);
    Gain(1.0 / (d * d))
}

/// Degree statistics of the physical neighbourhood graph at a threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Stations with zero neighbours (disconnected at this threshold).
    pub isolated: usize,
}

/// Compute neighbour-degree statistics over a gain matrix.
pub fn degree_stats(gains: &GainMatrix, threshold: Gain) -> DegreeStats {
    let n = gains.len();
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0usize;
    let mut isolated = 0;
    for s in 0..n {
        let d = gains.hearable_by(s, threshold).len();
        min = min.min(d);
        max = max.max(d);
        sum += d;
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        min: if n == 0 { 0 } else { min },
        max,
        mean: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parn_phys::placement::{characteristic_length, Placement};
    use parn_phys::propagation::FreeSpace;
    use parn_sim::Rng;

    #[test]
    fn threshold_scales_with_design() {
        let t = usable_gain_threshold(1.0, 1e-6, 0.01);
        assert!((t.value() - 1e-8).abs() < 1e-20);
        // Double the power budget: threshold halves.
        let t2 = usable_gain_threshold(2.0, 1e-6, 0.01);
        assert!((t2.value() - 5e-9).abs() < 1e-20);
    }

    #[test]
    fn free_space_gain_at_distance() {
        assert!((free_space_gain_at(10.0).value() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn expected_neighbors_at_characteristic_distances() {
        // §6: within 1/√ρ expect π ≈ 3 others; within 2/√ρ expect 4π ≈ 12.
        let mut rng = Rng::new(42);
        let n = 2000;
        let radius = 1000.0;
        let rho = n as f64 / (std::f64::consts::PI * radius * radius);
        let pos = Placement::UniformDisk { n, radius }.generate(&mut rng);
        let gm = parn_phys::GainMatrix::build(&pos, &FreeSpace::unit());
        let l = characteristic_length(rho);
        let near = degree_stats(&gm, free_space_gain_at(l));
        let far = degree_stats(&gm, free_space_gain_at(2.0 * l));
        // Edge stations see fewer, so means sit slightly below π and 4π.
        assert!((2.0..=3.5).contains(&near.mean), "near mean {}", near.mean);
        assert!((9.0..=13.0).contains(&far.mean), "far mean {}", far.mean);
        assert!(far.mean > 3.0 * near.mean, "quadrupling range ~4x degree");
    }

    #[test]
    fn isolated_stations_counted() {
        let pos = vec![
            parn_phys::Point::new(0.0, 0.0),
            parn_phys::Point::new(1.0, 0.0),
            parn_phys::Point::new(1000.0, 0.0),
        ];
        let gm = parn_phys::GainMatrix::build(&pos, &FreeSpace::unit());
        let stats = degree_stats(&gm, free_space_gain_at(10.0));
        assert_eq!(stats.isolated, 1);
        assert_eq!(stats.max, 1);
        assert_eq!(stats.min, 0);
    }

    #[test]
    fn empty_matrix() {
        let gm = parn_phys::GainMatrix::from_raw(0, vec![]);
        let stats = degree_stats(&gm, Gain(0.1));
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.isolated, 0);
    }
}
