//! Shared scenario setup for the baseline MACs.
//!
//! Every baseline runs under *exactly the same physical model* as the
//! Shepard scheme: the same placement, gain matrix, SINR tracker and
//! reception criterion — only the channel-access rule changes. That is
//! the point of experiment E3: at loads where ALOHA/CSMA/MACA lose
//! packets to collisions, the schedule-based scheme loses none.

use parn_core::power::PowerPolicy;
use parn_core::{Metrics, PhyBackend};
use parn_phys::placement::{density, Placement};
use parn_phys::propagation::FreeSpace;
use parn_phys::sinr::SinrTracker;
use parn_phys::{
    Gain, GainMatrix, GainModel, GridGainModel, PowerW, ReceptionCriterion, StationId,
};
use parn_sim::{Duration, Rng, Time};
use std::sync::Arc;

/// Which baseline MAC to run.
#[derive(Clone, Debug)]
pub enum MacKind {
    /// Transmit the moment a packet is ready (classic ALOHA).
    PureAloha,
    /// Transmit at the next global slot boundary (slotted ALOHA — note
    /// this baseline *assumes* the network-wide synchronization the paper
    /// argues is impractical at scale).
    SlottedAloha {
        /// Global slot length (= packet air time).
        slot: Duration,
    },
    /// Carrier sense: defer while total sensed power exceeds a threshold,
    /// then transmit.
    Csma {
        /// Sensed-power level above which the channel is "busy".
        sense_threshold: PowerW,
    },
    /// MACA-style RTS/CTS handshake with NAV deferral on overheard
    /// control packets.
    Maca {
        /// Air time of RTS/CTS control packets.
        ctrl_airtime: Duration,
    },
}

/// Scenario parameters for a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Root seed.
    pub seed: u64,
    /// Placement model.
    pub placement: Placement,
    /// Reception criterion (same as the scheme's).
    pub criterion: ReceptionCriterion,
    /// Power policy.
    pub power: PowerPolicy,
    /// Thermal + external noise floor.
    pub noise: PowerW,
    /// Self-interference gain.
    pub self_gain: f64,
    /// Despreading channels per receiver.
    pub despreaders: usize,
    /// Successive-interference-cancellation depth at receivers (0 = off;
    /// §3.4 footnote 2's multiuser-detection upgrade).
    pub sic_depth: usize,
    /// Usable-hop reach factor (× characteristic distance).
    pub reach_factor: f64,
    /// Packet air time (kept equal to the scheme's quarter-slot).
    pub airtime: Duration,
    /// Poisson arrivals per station per second; destinations are random
    /// in-range neighbours (single-hop, the regime where all MACs are
    /// comparable).
    pub arrivals_per_station_per_sec: f64,
    /// Mean random backoff after a failed attempt.
    pub mean_backoff: Duration,
    /// Retransmission limit.
    pub max_retries: u32,
    /// The MAC under test.
    pub mac: MacKind,
    /// PHY gain backend (dense reference matrix or spatial index) — the
    /// same selector the scheme uses, so baseline-vs-scheme comparisons
    /// stay apples-to-apples at any scale.
    pub phy_backend: PhyBackend,
    /// Run length.
    pub run_for: Duration,
    /// Warmup excluded from statistics.
    pub warmup: Duration,
}

impl BaselineConfig {
    /// Serialize the scenario for `BENCH_*.json` provenance manifests
    /// (schema in `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> parn_sim::Json {
        use parn_sim::json::{obj, Json};
        let placement = match &self.placement {
            Placement::UniformDisk { n, radius } => obj([
                ("kind", "uniform_disk".into()),
                ("n", (*n).into()),
                ("radius_m", (*radius).into()),
            ]),
            other => obj([("kind", format!("{other:?}").into())]),
        };
        let power = match self.power {
            PowerPolicy::Controlled { target, max } => obj([
                ("kind", "controlled".into()),
                ("target_w", target.value().into()),
                ("max_w", max.value().into()),
            ]),
            PowerPolicy::Fixed(p) => obj([("kind", "fixed".into()), ("power_w", p.value().into())]),
        };
        let mac = match &self.mac {
            MacKind::PureAloha => obj([("kind", "pure_aloha".into())]),
            MacKind::SlottedAloha { slot } => obj([
                ("kind", "slotted_aloha".into()),
                ("slot_s", slot.as_secs_f64().into()),
            ]),
            MacKind::Csma { sense_threshold } => obj([
                ("kind", "csma".into()),
                ("sense_threshold_w", sense_threshold.value().into()),
            ]),
            MacKind::Maca { ctrl_airtime } => obj([
                ("kind", "maca".into()),
                ("ctrl_airtime_s", ctrl_airtime.as_secs_f64().into()),
            ]),
        };
        let phy_backend = match &self.phy_backend {
            PhyBackend::Dense => obj([("kind", "dense".into())]),
            PhyBackend::Grid { far_field } => obj([
                ("kind", "grid".into()),
                (
                    "far_field",
                    match far_field {
                        None => Json::Null,
                        Some(ff) => obj([
                            ("near_radius_factor", ff.near_radius_factor.into()),
                            ("tolerance", ff.tolerance.into()),
                        ]),
                    },
                ),
            ]),
        };
        obj([
            ("seed", self.seed.into()),
            ("placement", placement),
            (
                "criterion",
                obj([
                    ("rate_bps", self.criterion.rate_bps.into()),
                    ("bandwidth_hz", self.criterion.bandwidth_hz.into()),
                    ("margin", self.criterion.margin.into()),
                ]),
            ),
            ("power", power),
            ("noise_w", self.noise.value().into()),
            ("self_gain", self.self_gain.into()),
            ("despreaders", self.despreaders.into()),
            ("sic_depth", self.sic_depth.into()),
            ("reach_factor", self.reach_factor.into()),
            ("airtime_s", self.airtime.as_secs_f64().into()),
            (
                "arrivals_per_station_per_sec",
                self.arrivals_per_station_per_sec.into(),
            ),
            ("mean_backoff_s", self.mean_backoff.as_secs_f64().into()),
            ("max_retries", u64::from(self.max_retries).into()),
            ("mac", mac),
            ("phy_backend", phy_backend),
            ("run_for_s", self.run_for.as_secs_f64().into()),
            ("warmup_s", self.warmup.as_secs_f64().into()),
        ])
    }

    /// A baseline scenario matched to [`parn_core::NetConfig::paper_default`]:
    /// same density, criterion, power control and packet size.
    pub fn matched(n: usize, seed: u64, mac: MacKind) -> BaselineConfig {
        let rho = 0.01;
        let radius = (n as f64 / (std::f64::consts::PI * rho)).sqrt();
        BaselineConfig {
            seed,
            placement: Placement::UniformDisk { n, radius },
            criterion: ReceptionCriterion::with_5db_margin(1e5, 1e7),
            power: PowerPolicy::Controlled {
                target: PowerW(1e-6),
                max: PowerW(1.0),
            },
            noise: PowerW(1e-13),
            self_gain: 1e12,
            despreaders: 8,
            sic_depth: 0,
            reach_factor: 2.0,
            airtime: Duration::from_micros(2500),
            arrivals_per_station_per_sec: 2.0,
            mean_backoff: Duration::from_millis(20),
            max_retries: 10,
            mac,
            phy_backend: PhyBackend::Dense,
            run_for: Duration::from_secs(20),
            warmup: Duration::from_secs(2),
        }
    }
}

/// The assembled physical scenario shared by all baseline MACs.
pub struct Scenario {
    /// Scenario config.
    pub cfg: BaselineConfig,
    /// Pairwise gains (dense matrix or spatial index, per the config).
    pub gains: Arc<dyn GainModel>,
    /// The interference bookkeeper.
    pub tracker: SinrTracker,
    /// In-range neighbours of each station.
    pub neighbors: Vec<Vec<StationId>>,
    /// Reception SINR threshold.
    pub threshold: f64,
    /// Traffic randomness.
    pub rng: Rng,
    /// Metrics under construction.
    pub metrics: Metrics,
    /// Warmup boundary.
    pub warm_at: Time,
    /// Run end.
    pub end: Time,
}

impl Scenario {
    /// Build the physical world for a config.
    pub fn new(cfg: BaselineConfig) -> Scenario {
        let root = Rng::new(cfg.seed);
        let mut rng_place = root.substream("placement");
        let rng = root.substream("traffic");
        let positions = cfg.placement.generate(&mut rng_place);
        let n = positions.len();
        assert!(n >= 2, "need at least two stations");
        let gains: Arc<dyn GainModel> = match &cfg.phy_backend {
            PhyBackend::Dense => Arc::new(GainMatrix::build(&positions, &FreeSpace::unit())),
            PhyBackend::Grid { .. } => {
                Arc::new(GridGainModel::new(&positions, Box::new(FreeSpace::unit())))
            }
        };
        let region = cfg.placement.region();
        let rho = density(&positions, &region);
        let reach = cfg.reach_factor / rho.sqrt();
        let usable = Gain(1.0 / (reach * reach));
        let neighbors: Vec<Vec<StationId>> = (0..n).map(|s| gains.hearable_by(s, usable)).collect();
        let mut tracker =
            SinrTracker::new(Arc::clone(&gains), cfg.noise, cfg.self_gain).with_sic(cfg.sic_depth);
        if let PhyBackend::Grid {
            far_field: Some(ff),
        } = &cfg.phy_backend
        {
            tracker = tracker.with_far_field(ff.near_radius_factor * reach, ff.tolerance);
        }
        let threshold = cfg.criterion.threshold();
        let warm_at = Time::ZERO + cfg.warmup;
        let end = Time::ZERO + cfg.run_for;
        let mut metrics = Metrics::new(n);
        metrics.measured_span = cfg.run_for.saturating_sub(cfg.warmup);
        Scenario {
            cfg,
            gains,
            tracker,
            neighbors,
            threshold,
            rng,
            metrics,
            warm_at,
            end,
        }
    }

    /// Whether a time falls in the measured region.
    pub fn measured(&self, t: Time) -> bool {
        t >= self.warm_at
    }

    /// Exponential interarrival for the configured rate.
    pub fn next_interarrival(&mut self) -> Duration {
        let mean = 1.0 / self.cfg.arrivals_per_station_per_sec;
        Duration::from_secs_f64(self.rng.exp(mean))
    }

    /// Exponential random backoff.
    pub fn backoff(&mut self) -> Duration {
        Duration::from_secs_f64(self.rng.exp(self.cfg.mean_backoff.as_secs_f64()))
    }

    /// Random in-range neighbour of `s`, if any.
    pub fn random_neighbor(&mut self, s: StationId) -> Option<StationId> {
        if self.neighbors[s].is_empty() {
            None
        } else {
            Some(*self.rng.choose(&self.neighbors[s]))
        }
    }

    /// Transmit power toward a neighbour under the configured policy.
    pub fn tx_power(&self, s: StationId, nh: StationId) -> PowerW {
        self.cfg.power.tx_power(self.gains.gain(nh, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_scenario_builds() {
        let cfg = BaselineConfig::matched(30, 5, MacKind::PureAloha);
        let sc = Scenario::new(cfg);
        assert_eq!(sc.neighbors.len(), 30);
        // Dense enough that most stations have neighbours.
        let with_nb = sc.neighbors.iter().filter(|v| !v.is_empty()).count();
        assert!(with_nb > 25, "only {with_nb} stations have neighbours");
        assert!(sc.threshold > 0.0 && sc.threshold < 1.0);
    }

    #[test]
    fn power_matches_policy() {
        let cfg = BaselineConfig::matched(10, 6, MacKind::PureAloha);
        let sc = Scenario::new(cfg);
        // Find a pair of neighbours and confirm delivered power is target.
        let s = (0..10).find(|&s| !sc.neighbors[s].is_empty()).unwrap();
        let nh = sc.neighbors[s][0];
        let p = sc.tx_power(s, nh);
        let delivered = sc.gains.gain(nh, s).apply(p);
        assert!((delivered.value() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn measured_gate() {
        let cfg = BaselineConfig::matched(5, 1, MacKind::PureAloha);
        let sc = Scenario::new(cfg);
        assert!(!sc.measured(Time::from_secs(1)));
        assert!(sc.measured(Time::from_secs(3)));
    }

    #[test]
    fn grid_backend_matches_dense_exactly() {
        // The spatial index without far-field aggregation must be
        // bit-identical to the dense matrix — same neighbours, same
        // sensed power, same outcomes. CSMA exercises the carrier-sense
        // path (`sensed_power`) hardest.
        let mut cfg = BaselineConfig::matched(
            30,
            9,
            MacKind::Csma {
                sense_threshold: PowerW(1e-9),
            },
        );
        cfg.run_for = Duration::from_secs(6);
        cfg.warmup = Duration::from_secs(1);
        let mut grid_cfg = cfg.clone();
        grid_cfg.phy_backend = PhyBackend::Grid { far_field: None };
        let dense = crate::csma::Csma::run(Scenario::new(cfg));
        let grid = crate::csma::Csma::run(Scenario::new(grid_cfg));
        assert_eq!(dense.generated, grid.generated);
        assert_eq!(dense.delivered, grid.delivered);
        assert_eq!(dense.total_losses(), grid.total_losses());
        assert_eq!(dense.collision_losses(), grid.collision_losses());
    }
}
